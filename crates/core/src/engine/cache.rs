//! Per-corpus memoization of search state, buffer-managed.
//!
//! The expensive, query-independent part of every dense-matrix algorithm
//! is the `O(n²)` ground-distance matrix plus the bound tables derived
//! from it. Both depend only on the trajectory (matrix) and on `(ξ,
//! tight-vs-relaxed)` (tables) — never on the query's algorithm, budget,
//! k, or the individual bound-family toggles — so a session serving
//! repeated traffic on the same corpus can build each exactly once.
//!
//! [`CorpusCache`] owns that build-or-reuse logic; *residency* — byte
//! accounting, per-entry LRU eviction, pin counts, and the optional disk
//! spill tier — is delegated to the [`super::buffer`] module's
//! [`BufferPool`]. Every lookup pins what it returns, so an entry in use
//! by the executing query can never be evicted from under it; the engine
//! releases the pins when the query completes (see
//! [`CorpusCache::finish_query`]). The full design, including how to
//! size the limit, is documented in `docs/CACHING.md`.

use fremo_trajectory::{DenseMatrix, GroundDistance, LazyDistances};

use crate::bounds::BoundTables;
use crate::config::BoundSelection;
use crate::domain::Domain;

use super::buffer::{BufferPool, EntryKey, Payload, ScopeKey};

/// Cache activity of one query (or cumulative totals on
/// [`super::EngineStats`]).
///
/// All fields except [`CacheReport::resident_bytes`] are monotonic
/// counters; `resident_bytes` is a gauge — the bytes resident at the
/// moment of the snapshot (for a per-query report, right after the
/// query's pins were released and the limit enforced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheReport {
    /// Distance matrices computed from scratch.
    pub matrices_built: u64,
    /// Distance matrices served from the resident cache.
    pub matrices_reused: u64,
    /// Bound tables computed from scratch.
    pub tables_built: u64,
    /// Bound tables served from the resident cache.
    pub tables_reused: u64,
    /// Entries evicted from the resident set (spilled ones included).
    pub evictions: u64,
    /// Matrices written to the disk spill tier on eviction.
    pub spills: u64,
    /// Matrices rehydrated from the spill tier instead of rebuilt.
    pub spill_loads: u64,
    /// Heap bytes resident at snapshot time (a gauge, not a counter).
    pub resident_bytes: u64,
}

impl CacheReport {
    /// Total structures recomputed by this query — the number a warm
    /// cache drives to zero.
    #[must_use]
    pub const fn recomputed(&self) -> u64 {
        self.matrices_built + self.tables_built
    }

    /// Total structures served from the resident cache (disk rehydrates
    /// are counted by [`CacheReport::spill_loads`], not here).
    #[must_use]
    pub const fn reused(&self) -> u64 {
        self.matrices_reused + self.tables_reused
    }

    /// Lookups that avoided a recompute: resident reuses plus disk
    /// rehydrates.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.reused() + self.spill_loads
    }

    /// Total matrix/table lookups (every lookup is exactly one of
    /// built, reused, or rehydrated, so this equals
    /// `recomputed() + hits()`).
    #[must_use]
    pub const fn lookups(&self) -> u64 {
        self.recomputed() + self.hits()
    }

    /// Fraction of lookups served without a recompute (`0.0` when there
    /// were no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.hits() as f64 / lookups as f64
    }

    /// The activity between `earlier` and `self` (two snapshots of the
    /// same monotonic totals). Counters subtract saturating — totals
    /// never decrease, so a clamp only guards against misuse — while the
    /// `resident_bytes` gauge carries the later snapshot's value.
    pub(crate) const fn delta_since(&self, earlier: &CacheReport) -> CacheReport {
        CacheReport {
            matrices_built: self.matrices_built.saturating_sub(earlier.matrices_built),
            matrices_reused: self.matrices_reused.saturating_sub(earlier.matrices_reused),
            tables_built: self.tables_built.saturating_sub(earlier.tables_built),
            tables_reused: self.tables_reused.saturating_sub(earlier.tables_reused),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            spills: self.spills.saturating_sub(earlier.spills),
            spill_loads: self.spill_loads.saturating_sub(earlier.spill_loads),
            resident_bytes: self.resident_bytes,
        }
    }
}

/// The engine's memo: distance matrices per scope, bound tables per
/// `(scope, ξ, tight?)`, resident in a [`BufferPool`].
///
/// [`BoundTables::build`] depends on the selection only through
/// `sel.tight` (the cell/cross/band/end-cross flags gate *lookups*, not
/// table construction), so keying by the flag set would rebuild and
/// store byte-identical tables for every flag combination.
pub(crate) struct CorpusCache {
    pool: BufferPool,
}

impl Default for CorpusCache {
    fn default() -> Self {
        CorpusCache {
            pool: BufferPool::new(),
        }
    }
}

impl CorpusCache {
    /// Lifetime counters plus the resident-bytes gauge.
    pub(crate) fn report(&self) -> CacheReport {
        self.pool.counters
    }

    /// Caps resident bytes (per-entry LRU eviction; `None` = unbounded).
    /// Applies immediately: entries are evicted down to the new limit.
    pub(crate) fn set_limit(&mut self, bytes: Option<usize>) {
        self.pool.set_limit(bytes);
    }

    /// Enables (or disables) the disk spill tier under `root`.
    pub(crate) fn set_spill(&mut self, root: Option<&std::path::Path>, engine_id: u64) {
        self.pool.set_spill(root, engine_id);
    }

    /// Releases every pin taken by the completed query and enforces the
    /// byte limit now that nothing is in use.
    pub(crate) fn finish_query(&mut self) {
        self.pool.finish_query();
    }

    /// Ensures the matrix for `key` is resident and pinned, counting the
    /// lookup as exactly one of: resident reuse, spill rehydrate, or
    /// fresh build.
    fn ensure_matrix<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        threads: usize,
    ) {
        if self.pool.pin_if_resident(EntryKey::Matrix(key)) {
            self.pool.counters.matrices_reused += 1;
            return;
        }
        if self.pool.unspill_matrix(key) {
            // `unspill_matrix` counted the rehydrate and pinned the entry.
            return;
        }
        let matrix = match b {
            None => DenseMatrix::within_parallel(a, threads),
            Some(b) => DenseMatrix::between_parallel(a, b, threads),
        };
        self.pool.counters.matrices_built += 1;
        self.pool
            .insert(EntryKey::Matrix(key), Payload::Matrix(matrix));
    }

    /// Ensures the `(key, ξ, sel.tight)` bound tables are resident and
    /// pinned, building them from the (already pinned) resident matrix
    /// on a miss.
    fn ensure_table(&mut self, key: ScopeKey, domain: Domain, xi: usize, sel: BoundSelection) {
        if self
            .pool
            .pin_if_resident(EntryKey::Tables(key, xi, sel.tight))
        {
            self.pool.counters.tables_reused += 1;
            return;
        }
        let tables = BoundTables::build(self.pool.matrix(key), domain, xi, sel);
        self.pool.counters.tables_built += 1;
        self.pool.insert(
            EntryKey::Tables(key, xi, sel.tight),
            Payload::Tables(tables),
        );
    }

    /// The cached (or freshly built) distance matrix for `key`, pinned
    /// for the running query.
    ///
    /// `threads >= 1` builds a cold matrix through the row-chunked
    /// parallel constructors — bit-for-bit identical to the serial build,
    /// so one cached matrix serves serial and parallel queries alike
    /// (and one spill file serves both after an eviction).
    pub(crate) fn matrix<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        threads: usize,
    ) -> &DenseMatrix {
        self.ensure_matrix(key, a, b, threads);
        self.pool.matrix(key)
    }

    /// GTM*'s working set: the cached dense matrix *if one is resident*
    /// (never built or rehydrated — GTM* must not create the `O(n²)`
    /// allocation it exists to avoid) plus the relaxed bound tables,
    /// cached and built from the best available distance source.
    pub(crate) fn gtm_star_prepared<P: GroundDistance>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
    ) -> (Option<&DenseMatrix>, &BoundTables) {
        let have_matrix = self.pool.pin_if_resident(EntryKey::Matrix(key));
        if have_matrix {
            self.pool.counters.matrices_reused += 1;
        }
        if self.pool.pin_if_resident(EntryKey::Tables(key, xi, false)) {
            self.pool.counters.tables_reused += 1;
        } else {
            let sel = BoundSelection::all_relaxed();
            let tables = if have_matrix {
                BoundTables::build(self.pool.matrix(key), domain, xi, sel)
            } else {
                match b {
                    None => BoundTables::build(&LazyDistances::within(a), domain, xi, sel),
                    Some(b) => BoundTables::build(&LazyDistances::between(a, b), domain, xi, sel),
                }
            };
            self.pool.counters.tables_built += 1;
            self.pool
                .insert(EntryKey::Tables(key, xi, false), Payload::Tables(tables));
        }
        let matrix = have_matrix.then(|| self.pool.matrix(key));
        (matrix, self.pool.tables(key, xi, false))
    }

    /// The cached matrix *and* bound tables for `(key, ξ, sel)`, pinned.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        threads: usize,
    ) -> (&DenseMatrix, &BoundTables) {
        let (matrix, tables, _) =
            self.prepared_with_relaxed(key, a, b, domain, xi, sel, false, threads);
        (matrix, tables)
    }

    /// [`CorpusCache::prepared`], optionally also ensuring the *relaxed*
    /// tables GTM's grouping machinery needs when `sel` selects tight
    /// bounds (the third return value; `None` when `sel` is already
    /// relaxed or `want_relaxed` is `false`).
    ///
    /// The matrix is pinned before any table build, so a table insert
    /// that pushes the pool over its limit can evict cold entries but
    /// never the matrix this call is about to return.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared_with_relaxed<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        want_relaxed: bool,
        threads: usize,
    ) -> (&DenseMatrix, &BoundTables, Option<&BoundTables>) {
        self.ensure_matrix(key, a, b, threads);
        self.ensure_table(key, domain, xi, sel);
        let want_relaxed = want_relaxed && sel.tight;
        if want_relaxed {
            self.ensure_table(key, domain, xi, sel.with_tight(false));
        }
        let relaxed = if want_relaxed {
            Some(self.pool.tables(key, xi, false))
        } else {
            None
        };
        (
            self.pool.matrix(key),
            self.pool.tables(key, xi, sel.tight),
            relaxed,
        )
    }

    /// Heap bytes held by every resident structure (spilled entries are
    /// on disk and excluded).
    pub(crate) fn bytes(&self) -> usize {
        self.pool.bytes()
    }

    /// Drops every cached structure and spill file (counters are kept —
    /// they are lifetime totals).
    pub(crate) fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::gen::planar;

    #[test]
    fn matrix_and_tables_are_built_once() {
        let t = planar::random_walk(40, 0.4, 1);
        let mut cache = CorpusCache::default();
        let key = ScopeKey::Within(0);
        let domain = Domain::Within { n: t.len() };
        let sel = BoundSelection::all_relaxed();

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0);
        cache.finish_query();
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 1);
        assert_eq!(cache.report().reused(), 0);

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0);
        cache.finish_query();
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 1);
        assert_eq!(cache.report().matrices_reused, 1);
        assert_eq!(cache.report().tables_reused, 1);

        // A different ξ reuses the matrix but needs new tables.
        let _ = cache.prepared(key, t.points(), None, domain, 5, sel, 0);
        cache.finish_query();
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 2);

        // Flag-only variants (same `tight`) are warm hits: table
        // construction depends on the selection only through `tight`.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::cell_only(),
            0,
        );
        cache.finish_query();
        assert_eq!(cache.report().tables_built, 2);
        assert_eq!(cache.report().tables_reused, 2);
        // The tight variant is a genuinely different table.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::all_tight(),
            0,
        );
        cache.finish_query();
        assert_eq!(cache.report().tables_built, 3);

        assert!(cache.bytes() > 0);
        assert_eq!(cache.report().resident_bytes, cache.bytes() as u64);
        // No limit was set: nothing was ever evicted.
        assert_eq!(cache.report().evictions, 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn per_entry_eviction_keeps_recent_entries_resident() {
        // Three same-size trajectories, room for two of everything.
        let trajectories: Vec<_> = (0..3).map(|s| planar::random_walk(40, 0.4, s)).collect();
        let mut cache = CorpusCache::default();
        let domain = Domain::Within { n: 40 };
        let sel = BoundSelection::all_relaxed();

        let query = |cache: &mut CorpusCache, i: usize| {
            let _ = cache.prepared(
                ScopeKey::Within(i),
                trajectories[i].points(),
                None,
                domain,
                3,
                sel,
                0,
            );
            cache.finish_query();
        };
        query(&mut cache, 0);
        let per_traj = cache.bytes();
        cache.set_limit(Some(2 * per_traj));

        query(&mut cache, 1);
        assert_eq!(cache.report().evictions, 0, "two trajectories fit");

        // Trajectory 2 displaces exactly trajectory 0's entries (LRU),
        // not the whole cache.
        query(&mut cache, 2);
        assert_eq!(cache.report().evictions, 2);
        let before = cache.report();
        query(&mut cache, 1);
        let delta = cache.report().delta_since(&before);
        assert_eq!(delta.recomputed(), 0, "trajectory 1 stayed resident");
        assert_eq!(delta.reused(), 2);

        // Trajectory 0 was evicted without a spill tier: full rebuild.
        let before = cache.report();
        query(&mut cache, 0);
        let delta = cache.report().delta_since(&before);
        assert_eq!(delta.recomputed(), 2);
        assert_eq!(delta.spill_loads, 0);
    }

    #[test]
    fn delta_isolates_one_query() {
        let before = CacheReport {
            matrices_built: 2,
            matrices_reused: 1,
            tables_built: 3,
            tables_reused: 4,
            evictions: 1,
            spills: 1,
            spill_loads: 0,
            resident_bytes: 1000,
        };
        let after = CacheReport {
            matrices_built: 2,
            matrices_reused: 2,
            tables_built: 4,
            tables_reused: 4,
            evictions: 3,
            spills: 2,
            spill_loads: 1,
            resident_bytes: 800,
        };
        let d = after.delta_since(&before);
        assert_eq!(d.matrices_built, 0);
        assert_eq!(d.matrices_reused, 1);
        assert_eq!(d.tables_built, 1);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.spills, 1);
        assert_eq!(d.spill_loads, 1);
        // The gauge carries the later snapshot, not a (possibly
        // negative) difference.
        assert_eq!(d.resident_bytes, 800);
        assert_eq!(d.recomputed(), 1);
        assert_eq!(d.reused(), 1);
        assert_eq!(d.hits(), 2);
        assert_eq!(d.lookups(), 3);
        assert!((d.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
    }
}
