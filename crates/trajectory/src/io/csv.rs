//! Simple delimited trajectory reader/writer.
//!
//! Covers the common `lat,lon[,t]` exports used by the Truck
//! (chorochronos.org) and Wild-Baboon (Movebank) datasets after minimal
//! preprocessing, plus planar `x,y[,t]` files. Lines starting with `#` and
//! blank lines are ignored; an optional non-numeric first line is treated as
//! a header.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::point::{EuclideanPoint, GeoPoint};
use crate::trajectory::Trajectory;

/// Reads a `lat,lon[,t]` CSV file into a geographic trajectory.
///
/// # Errors
///
/// I/O errors, malformed numeric fields, out-of-range coordinates, and
/// non-ascending timestamps.
pub fn read_csv(path: &Path) -> Result<Trajectory<GeoPoint>> {
    let file = std::fs::File::open(path)?;
    read_csv_from(std::io::BufReader::new(file))
}

/// Reads `lat,lon[,t]` records from any buffered reader.
///
/// # Errors
///
/// See [`read_csv`].
pub fn read_csv_from<R: BufRead>(reader: R) -> Result<Trajectory<GeoPoint>> {
    let rows = parse_rows(reader)?;
    let mut points = Vec::with_capacity(rows.len());
    let mut timestamps = Vec::with_capacity(rows.len());
    let mut any_time = false;
    for (line, (a, b, t)) in rows {
        let point = GeoPoint::new(a, b).map_err(|e| Error::Parse {
            line,
            message: e.to_string(),
        })?;
        points.push(point);
        if let Some(t) = t {
            any_time = true;
            timestamps.push(t);
        }
    }
    finish(points, timestamps, any_time)
}

/// Reads a planar `x,y[,t]` CSV file into a Euclidean trajectory.
///
/// # Errors
///
/// See [`read_csv`].
pub fn read_csv_euclidean(path: &Path) -> Result<Trajectory<EuclideanPoint>> {
    let file = std::fs::File::open(path)?;
    read_csv_euclidean_from(std::io::BufReader::new(file))
}

/// Reads planar `x,y[,t]` records from any buffered reader.
///
/// # Errors
///
/// See [`read_csv`].
pub fn read_csv_euclidean_from<R: BufRead>(reader: R) -> Result<Trajectory<EuclideanPoint>> {
    let rows = parse_rows(reader)?;
    let mut points = Vec::with_capacity(rows.len());
    let mut timestamps = Vec::with_capacity(rows.len());
    let mut any_time = false;
    for (_, (x, y, t)) in rows {
        points.push(EuclideanPoint::new(x, y));
        if let Some(t) = t {
            any_time = true;
            timestamps.push(t);
        }
    }
    finish(points, timestamps, any_time)
}

/// Writes a geographic trajectory as `lat,lon[,t]` CSV.
///
/// # Errors
///
/// I/O errors only.
pub fn write_csv<W: Write>(out: &mut W, trajectory: &Trajectory<GeoPoint>) -> Result<()> {
    writeln!(
        out,
        "# lat,lon{}",
        if trajectory.timestamps().is_some() {
            ",t"
        } else {
            ""
        }
    )?;
    match trajectory.timestamps() {
        Some(ts) => {
            for (p, t) in trajectory.points().iter().zip(ts) {
                writeln!(out, "{:.8},{:.8},{:.3}", p.lat, p.lon, t)?;
            }
        }
        None => {
            for p in trajectory.points() {
                writeln!(out, "{:.8},{:.8}", p.lat, p.lon)?;
            }
        }
    }
    Ok(())
}

type Row = (usize, (f64, f64, Option<f64>));

fn parse_rows<R: BufRead>(reader: R) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(&[',', ';', '\t'][..]).collect();
        if fields.len() < 2 {
            return Err(Error::Parse {
                line: idx + 1,
                message: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64> {
            s.trim().parse::<f64>().map_err(|e| Error::Parse {
                line: idx + 1,
                message: format!("bad {what} ({s:?}): {e}"),
            })
        };
        let a = match parse(fields[0], "first coordinate") {
            Ok(v) => v,
            // A non-numeric row before any data row is a header; skip it.
            Err(_) if rows.is_empty() => continue,
            Err(e) => return Err(e),
        };
        let b = parse(fields[1], "second coordinate")?;
        let t = if fields.len() >= 3 && !fields[2].trim().is_empty() {
            Some(parse(fields[2], "timestamp")?)
        } else {
            None
        };
        rows.push((idx + 1, (a, b, t)));
    }
    Ok(rows)
}

fn finish<P>(points: Vec<P>, timestamps: Vec<f64>, any_time: bool) -> Result<Trajectory<P>> {
    if any_time {
        Trajectory::with_timestamps(points, timestamps)
    } else {
        Ok(Trajectory::new(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_geo_with_timestamps() {
        let data = "# comment\nlat,lon,t\n39.9,116.4,0\n39.91,116.41,30\n39.92,116.42,65\n";
        let t = read_csv_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.timestamps().unwrap(), &[0.0, 30.0, 65.0]);
        assert!((t[0].lat - 39.9).abs() < 1e-12);
    }

    #[test]
    fn reads_geo_without_timestamps() {
        let data = "39.9,116.4\n39.91,116.41\n";
        let t = read_csv_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.timestamps().is_none());
    }

    #[test]
    fn supports_semicolons_and_tabs() {
        let data = "1.0;2.0;3.0\n4.0\t5.0\t6.0\n";
        let t = read_csv_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.timestamps().unwrap(), &[3.0, 6.0]);
    }

    #[test]
    fn rejects_out_of_range_latitude() {
        let data = "95.0,10.0\n";
        assert!(matches!(
            read_csv_from(data.as_bytes()),
            Err(Error::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_too_few_fields() {
        let data = "1.0\n";
        assert!(read_csv_from(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_ascending_timestamps() {
        let data = "1.0,1.0,5\n2.0,2.0,4\n";
        assert!(matches!(
            read_csv_from(data.as_bytes()),
            Err(Error::NonAscendingTimestamps { .. })
        ));
    }

    #[test]
    fn euclidean_reader_accepts_any_coordinates() {
        let data = "1000.0,-2000.0,1\n1001.0,-2001.0,2\n";
        let t = read_csv_euclidean_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].x, 1000.0);
    }

    #[test]
    fn round_trip_through_writer() {
        let original = Trajectory::with_timestamps(
            vec![
                GeoPoint::new(39.9, 116.4).unwrap(),
                GeoPoint::new(39.95, 116.45).unwrap(),
            ],
            vec![0.0, 10.0],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).unwrap();
        let parsed = read_csv_from(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed[1].lat - 39.95).abs() < 1e-6);
        assert_eq!(parsed.timestamps().unwrap(), &[0.0, 10.0]);
    }

    #[test]
    fn round_trip_without_timestamps() {
        let original = Trajectory::new(vec![GeoPoint::new(1.0, 2.0).unwrap()]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).unwrap();
        let parsed = read_csv_from(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed.timestamps().is_none());
    }
}
