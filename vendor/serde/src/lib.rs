//! Minimal, API-compatible subset of `serde`, vendored so the workspace
//! builds offline. It provides the [`Serialize`] / [`Deserialize`] marker
//! traits and re-exports the matching derive macros (which currently emit
//! marker impls only — no actual serialization machinery is generated).
//!
//! The workspace uses serde derives as forward-looking annotations on the
//! data model; the only concrete JSON produced today goes through the
//! `serde_json` shim's `json!`-built values, which do not consult these
//! traits. Swap the path dependency for crates.io `serde = { version = "1",
//! features = ["derive"] }` once network access is available.

#![warn(missing_docs)]

/// Marker for types that can be serialized (shim: no methods).
pub trait Serialize {}

/// Marker for types that can be deserialized (shim: no methods).
pub trait Deserialize<'de> {}

/// Owned-deserialization alias mirror of serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
