//! Differential suite: [`Engine::execute_batch`] ≡ one-at-a-time
//! [`Engine::execute`], **bit-for-bit**.
//!
//! Batching is pure mechanism — dedup, shared builds, fused scans,
//! pool scheduling — so every per-query outcome must match the solo
//! path exactly: results by bit pattern (`f64::to_bits`), the
//! `truncated` flag, and for serially-resolved queries the full
//! deterministic slice of [`SearchStats`] (expansion, pruning, and
//! budget counters; cache/byte/timing fields legitimately differ under
//! sharing). The workload sweeps all four algorithms × Within/Between
//! scopes × serial and pinned-parallel execution × subset budgets, and
//! the batch is replayed in shuffled orders. A proptest layer draws
//! random batch compositions (duplicates likely) and diffs each
//! against solo execution.
//!
//! [`TrajId`]s are engine-scoped, so workloads are described by
//! engine-independent specs and materialized per engine — the baseline
//! engine and the batch engine register the same corpus and their
//! handles line up by registration order.
//!
//! Run under `FREMO_THREADS=1` and `4` (CI's `concurrency` job does
//! both): the global budget drives both the batch group scheduler and
//! every `ExecutionMode::Auto` query, so the two runs exercise
//! different schedules against the same solo baseline.

use fremo::prelude::*;
use fremo::trajectory::gen::planar;

use proptest::prelude::*;

fn corpus() -> Vec<Trajectory<EuclideanPoint>> {
    (0..5).map(|s| planar::random_walk(60, 0.45, s)).collect()
}

/// Bit-exact fingerprint of a query result (every float by bit
/// pattern), plus the truncation flag.
fn fingerprint(outcome: &QueryOutcome) -> String {
    let motif_bits = |m: &Motif| {
        format!(
            "({:?},{:?},{:016x})",
            m.first,
            m.second,
            m.distance.to_bits()
        )
    };
    let results = match &outcome.results {
        QueryResults::Motif(m) => format!("motif:{:?}", m.as_ref().map(motif_bits)),
        QueryResults::TopK(ms) => {
            let items: Vec<String> = ms.iter().map(motif_bits).collect();
            format!("topk:[{}]", items.join(","))
        }
        QueryResults::Measures(p) => format!(
            "measures:{:016x}/{:016x}/{:016x}/{}/{:016x}/{:016x}",
            p.euclidean.to_bits(),
            p.dtw.to_bits(),
            p.lcss.to_bits(),
            p.edr,
            p.dfd.to_bits(),
            p.hausdorff.to_bits()
        ),
        other => format!("other:{other:?}"),
    };
    format!(
        "{}/{}/truncated={}",
        outcome.algorithm, results, outcome.truncated
    )
}

/// The deterministic slice of [`SearchStats`]: everything the scan's
/// decision sequence fixes, nothing that depends on cache residency,
/// buffer reuse, or the clock.
fn scan_counters(s: &SearchStats) -> String {
    format!(
        "{}/{}/{}/{}/{}/{}/{} {}/{}/{}/{}/{}/{}/{}/{} {}/{}/{}/{}",
        s.subsets_total,
        s.subsets_pruned_cell,
        s.subsets_pruned_cross,
        s.subsets_pruned_band,
        s.subsets_skipped_sorted,
        s.subsets_skipped_budget,
        s.subsets_expanded,
        s.pairs_total,
        s.pairs_pruned_cell,
        s.pairs_pruned_cross,
        s.pairs_pruned_band,
        s.pairs_pruned_group_pattern,
        s.pairs_pruned_group_dfd,
        s.pairs_skipped_budget,
        s.pairs_exact,
        s.dp_cells,
        s.cells_skipped_end_cross,
        s.rows_abandoned,
        s.bsf_updates,
    )
}

/// Engine-independent description of one workload query; materialized
/// against a specific engine's [`TrajId`]s with [`QuerySpec::build`].
#[derive(Debug, Clone, Copy)]
enum QuerySpec {
    Motif {
        traj: usize,
        xi: usize,
        algorithm: AlgorithmChoice,
        execution: ExecutionMode,
        budget: Option<u64>,
    },
    Between {
        a: usize,
        b: usize,
        xi: usize,
        algorithm: AlgorithmChoice,
        execution: ExecutionMode,
    },
    TopK {
        traj: usize,
        k: usize,
        xi: usize,
        execution: ExecutionMode,
        budget: Option<u64>,
    },
    Measures {
        a: usize,
        b: usize,
    },
}

impl QuerySpec {
    fn motif(traj: usize, xi: usize) -> Self {
        QuerySpec::Motif {
            traj,
            xi,
            algorithm: AlgorithmChoice::Auto,
            execution: ExecutionMode::Auto,
            budget: None,
        }
    }

    fn build(&self, ids: &[TrajId]) -> Query {
        match *self {
            QuerySpec::Motif {
                traj,
                xi,
                algorithm,
                execution,
                budget,
            } => {
                let builder = Query::motif(ids[traj])
                    .xi(xi)
                    .algorithm(algorithm)
                    .execution(execution);
                match budget {
                    Some(subsets) => builder.candidate_budget(subsets).build(),
                    None => builder.build(),
                }
            }
            QuerySpec::Between {
                a,
                b,
                xi,
                algorithm,
                execution,
            } => Query::motif_between(ids[a], ids[b])
                .xi(xi)
                .algorithm(algorithm)
                .execution(execution)
                .build(),
            QuerySpec::TopK {
                traj,
                k,
                xi,
                execution,
                budget,
            } => {
                let builder = Query::top_k(ids[traj], k).xi(xi).execution(execution);
                match budget {
                    Some(subsets) => builder.candidate_budget(subsets).build(),
                    None => builder.build(),
                }
            }
            QuerySpec::Measures { a, b } => Query::measures(ids[a], ids[b], 2.5).build(),
        }
    }

    /// `true` when the query's scan runs serially on every engine —
    /// only then is the full counter slice deterministic (parallel
    /// scans are bit-identical in *results*, not in counters).
    fn serial_resolved(&self) -> bool {
        let execution = match *self {
            QuerySpec::Motif { execution, .. }
            | QuerySpec::Between { execution, .. }
            | QuerySpec::TopK { execution, .. } => execution,
            QuerySpec::Measures { .. } => return true,
        };
        matches!(execution, ExecutionMode::Serial)
            || (matches!(execution, ExecutionMode::Auto)
                && fremo::motif::pool::resolve_threads(0) == 0)
    }
}

/// The mixed workload: all four algorithms, both scopes, serial and
/// pinned-parallel execution, budgeted variants, top-k at several k,
/// measures, and deliberate bit-identical duplicates.
fn workload() -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for traj in 0..3 {
        specs.push(QuerySpec::motif(traj, 6 + traj));
        for algorithm in [
            AlgorithmChoice::BruteDp,
            AlgorithmChoice::Btm,
            AlgorithmChoice::Gtm,
            AlgorithmChoice::GtmStar,
            AlgorithmChoice::Approx { epsilon: 0.25 },
        ] {
            specs.push(QuerySpec::Motif {
                traj,
                xi: 6,
                algorithm,
                execution: ExecutionMode::Auto,
                budget: None,
            });
        }
    }
    for algorithm in [AlgorithmChoice::Auto, AlgorithmChoice::Gtm] {
        specs.push(QuerySpec::Between {
            a: 0,
            b: 1,
            xi: 6,
            algorithm,
            execution: ExecutionMode::Auto,
        });
    }
    specs.push(QuerySpec::Between {
        a: 2,
        b: 3,
        xi: 6,
        algorithm: AlgorithmChoice::Auto,
        execution: ExecutionMode::Parallel { threads: 3 },
    });
    specs.push(QuerySpec::Motif {
        traj: 1,
        xi: 6,
        algorithm: AlgorithmChoice::Auto,
        execution: ExecutionMode::Parallel { threads: 2 },
        budget: None,
    });
    // Budgeted queries: the per-query subset budget must bind inside a
    // fused scan exactly as it does solo.
    specs.push(QuerySpec::Motif {
        traj: 0,
        xi: 6,
        algorithm: AlgorithmChoice::Auto,
        execution: ExecutionMode::Serial,
        budget: Some(7),
    });
    specs.push(QuerySpec::TopK {
        traj: 0,
        k: 3,
        xi: 6,
        execution: ExecutionMode::Serial,
        budget: Some(9),
    });
    for k in [1, 2, 4] {
        specs.push(QuerySpec::TopK {
            traj: 0,
            k,
            xi: 6,
            execution: ExecutionMode::Auto,
            budget: None,
        });
    }
    specs.push(QuerySpec::TopK {
        traj: 2,
        k: 2,
        xi: 7,
        execution: ExecutionMode::Auto,
        budget: None,
    });
    specs.push(QuerySpec::Measures { a: 0, b: 1 });
    specs.push(QuerySpec::Measures { a: 2, b: 3 });
    // Bit-identical duplicates of earlier entries.
    specs.push(QuerySpec::motif(0, 6));
    specs.push(QuerySpec::TopK {
        traj: 0,
        k: 3,
        xi: 6,
        execution: ExecutionMode::Serial,
        budget: Some(9),
    });
    specs
}

/// Solo baseline on a private engine: one `execute` per spec, recording
/// the result fingerprint and (for serial specs) the counter slice.
fn solo_baseline(specs: &[QuerySpec]) -> Vec<(String, Option<String>)> {
    let engine = Engine::new();
    let ids = engine.register_all(corpus());
    specs
        .iter()
        .map(|spec| {
            let outcome = engine
                .execute(&spec.build(&ids))
                .expect("workload queries are valid");
            let counters = spec
                .serial_resolved()
                .then(|| scan_counters(&outcome.stats));
            (fingerprint(&outcome), counters)
        })
        .collect()
}

fn assert_batch_matches(
    specs: &[QuerySpec],
    queries: &[Query],
    expected: &[(String, Option<String>)],
    batch: &BatchOutcome,
    context: &str,
) {
    assert_eq!(batch.outcomes.len(), queries.len(), "{context}: arity");
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().expect("workload queries are valid");
        assert_eq!(
            fingerprint(outcome),
            expected[i].0,
            "{context}: query {i} ({:?}) result diverged from solo execution",
            specs[i]
        );
        if let Some(counters) = &expected[i].1 {
            assert_eq!(
                &scan_counters(&outcome.stats),
                counters,
                "{context}: query {i} ({:?}) scan counters diverged from solo execution",
                specs[i]
            );
        }
        if let Some(max) = queries[i].budget.max_subsets {
            assert!(
                outcome.stats.subsets_expanded <= max,
                "{context}: query {i} expanded {} subsets over its budget of {max}",
                outcome.stats.subsets_expanded
            );
        }
    }
}

/// Materialize the specs, run them as one batch, and diff against the
/// solo expectations.
fn run_batch_and_check(
    specs: &[QuerySpec],
    expected: &[(String, Option<String>)],
    context: &str,
) -> BatchStats {
    let engine = Engine::new();
    let ids = engine.register_all(corpus());
    let queries: Vec<Query> = specs.iter().map(|s| s.build(&ids)).collect();
    let batch = engine.execute_batch(&queries);
    assert_batch_matches(specs, &queries, expected, &batch, context);
    batch.stats
}

#[test]
fn batch_matches_solo_bit_for_bit() {
    let specs = workload();
    let expected = solo_baseline(&specs);
    let stats = run_batch_and_check(&specs, &expected, "in-order batch");

    // The final two workload entries duplicate earlier ones.
    assert!(
        stats.queries_deduped >= 2,
        "expected the workload duplicates to dedup, got {stats:?}"
    );
    assert!(
        stats.groups > 0 && stats.builds_shared > 0,
        "expected shared builds on the shared-scope workload, got {stats:?}"
    );
}

#[test]
fn shuffled_batch_orders_match_solo() {
    let specs = workload();
    let expected = solo_baseline(&specs);

    // Deterministic shuffles (LCG) of the same workload: outcomes must
    // still line up with the permuted solo expectations.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for round in 0..3 {
        let mut order: Vec<usize> = (0..specs.len()).collect();
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let shuffled: Vec<QuerySpec> = order.iter().map(|&i| specs[i]).collect();
        let shuffled_expected: Vec<(String, Option<String>)> =
            order.iter().map(|&i| expected[i].clone()).collect();
        run_batch_and_check(&shuffled, &shuffled_expected, &format!("shuffle {round}"));
    }
}

#[test]
fn batch_dedup_and_group_accounting() {
    let engine = Engine::new();
    let ids = engine.register_all(corpus());

    // Four bit-identical queries + two distinct ones on the same scope
    // + one on another trajectory: 2 groups, 3 dedups, the shared
    // scope's build paid once for three unique consumers, and all three
    // unique serial BTM-family scans fused into one walk. (Explicit
    // `Btm`: at n = 60, `Auto` resolves to BruteDp, which shares the
    // matrix build but never fuses.)
    let q = Query::motif(ids[0])
        .xi(6)
        .algorithm(AlgorithmChoice::Btm)
        .execution(ExecutionMode::Serial)
        .build();
    let batch = engine.execute_batch(&[
        q.clone(),
        q.clone(),
        Query::motif(ids[0])
            .xi(6)
            .algorithm(AlgorithmChoice::Btm)
            .execution(ExecutionMode::Serial)
            .candidate_budget(1000)
            .build(),
        q.clone(),
        Query::top_k(ids[0], 2)
            .xi(6)
            .execution(ExecutionMode::Serial)
            .build(),
        q.clone(),
        Query::motif(ids[1]).xi(6).build(),
    ]);
    assert_eq!(batch.stats.queries_deduped, 3, "{:?}", batch.stats);
    assert_eq!(batch.stats.groups, 2, "{:?}", batch.stats);
    assert_eq!(batch.stats.builds_shared, 2, "{:?}", batch.stats);
    assert_eq!(batch.stats.scans_fused, 3, "{:?}", batch.stats);

    // All four copies of `q` returned the same bits.
    let f0 = fingerprint(batch.outcomes[0].as_ref().unwrap());
    for i in [1, 3, 5] {
        assert_eq!(fingerprint(batch.outcomes[i].as_ref().unwrap()), f0);
    }
}

#[test]
fn batch_preserves_per_query_errors() {
    let engine = Engine::new();
    let ids = engine.register_all(corpus());
    let foreign = {
        let other = Engine::<EuclideanPoint>::new();
        other.register(planar::random_walk(30, 0.45, 99))
    };

    let queries = vec![
        Query::motif(ids[0]).xi(6).build(),
        Query::motif(foreign).xi(6).build(),
        Query::motif(ids[1]).xi(0).build(),
        Query::top_k(ids[0], 0).xi(6).build(),
        Query::motif(ids[0]).xi(6).build(),
    ];
    let batch = engine.execute_batch(&queries);
    for (i, query) in queries.iter().enumerate() {
        let solo = engine.execute(query);
        match (&batch.outcomes[i], &solo) {
            (Ok(b), Ok(s)) => assert_eq!(fingerprint(b), fingerprint(s), "query {i}"),
            (Err(b), Err(s)) => assert_eq!(b, s, "query {i}"),
            (b, s) => panic!("query {i}: batch {b:?} vs solo {s:?}"),
        }
    }
}

#[test]
fn empty_batch_is_empty() {
    let engine = Engine::<EuclideanPoint>::new();
    engine.register_all(corpus());
    let batch = engine.execute_batch(&[]);
    assert!(batch.outcomes.is_empty());
    assert_eq!(batch.stats, BatchStats::default());
}

/// One spec from a small deterministic menu, parameterized enough to
/// hit every grouping/fusion/dedup path (duplicates are likely at
/// batch sizes near 12). Decoded from one integer draw because the
/// vendored proptest shim only implements ranges and small tuples:
/// 6 kinds × 3 trajectories × 3 ξ steps × parallel × budgeted = 216.
fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    (0..216usize).prop_map(|raw| {
        let (kind, traj, xi_step, parallel, budgeted) = (
            raw % 6,
            (raw / 6) % 3,
            (raw / 18) % 3,
            (raw / 54) % 2 == 1,
            (raw / 108) % 2 == 1,
        );
        {
            let xi = 5 + xi_step;
            let execution = if parallel {
                ExecutionMode::Parallel { threads: 2 }
            } else {
                ExecutionMode::Serial
            };
            let budget = budgeted.then_some(8);
            match kind {
                0 => QuerySpec::Motif {
                    traj,
                    xi,
                    algorithm: AlgorithmChoice::Auto,
                    execution,
                    budget,
                },
                1 => QuerySpec::Motif {
                    traj,
                    xi,
                    algorithm: AlgorithmChoice::Btm,
                    execution,
                    budget,
                },
                2 => QuerySpec::Motif {
                    traj,
                    xi,
                    algorithm: AlgorithmChoice::GtmStar,
                    execution,
                    budget: None,
                },
                3 => QuerySpec::Between {
                    a: traj,
                    b: traj + 1,
                    xi,
                    algorithm: AlgorithmChoice::Auto,
                    execution,
                },
                4 => QuerySpec::TopK {
                    traj,
                    k: 1 + xi_step,
                    xi,
                    execution,
                    budget,
                },
                _ => QuerySpec::Measures {
                    a: traj,
                    b: traj + 1,
                },
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random batch compositions match solo execution query-for-query.
    #[test]
    fn random_batch_compositions_match_solo(
        specs in proptest::collection::vec(arb_spec(), 1..12)
    ) {
        let expected = solo_baseline(&specs);
        run_batch_and_check(&specs, &expected, "proptest batch");
    }
}
