//! `GTM` (Algorithm 3): grouping-based trajectory motif discovery.
//!
//! The multi-level framework of Figure 9: partition the trajectory into
//! groups of τ samples, prune unpromising *pairs of groups* with `O(1)`
//! pattern bounds and then with the group-level DFD bounds, halve τ and
//! repeat on the survivors, and finally run the BTM machinery on the
//! surviving candidate subsets.
//!
//! One deliberate refinement over the pseudocode: Algorithm 3's
//! `S_survive` keeps surviving *groups* and re-pairs them at the next
//! level; we keep surviving group *pairs* and split each into its four
//! children, which is strictly more precise (a pair prunes independently of
//! what other pairs its groups participate in) and equally safe — every
//! candidate lives in exactly one pair per level.

use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};

use crate::algorithm::MotifDiscovery;
use crate::bounds::{BoundTables, RelaxedTables};
use crate::config::{BoundKind, BoundSelection, MotifConfig};
use crate::domain::Domain;
use crate::dp::{Bsf, DpBuffers};
use crate::group::{group_dfd_bounds, GroupGrid, GroupMatrices};
use crate::result::Motif;
use crate::search::{build_entries, list_bytes, process_sorted_subsets, ListEntry, SearchBudget};
use crate::stats::SearchStats;

/// The grouping-based solution of Algorithm 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gtm;

/// Per-level pattern-bound arrays for groups, derived from the point-level
/// relaxed arrays (see `group` module docs for why this stays safe at every
/// refinement level).
pub(crate) struct GroupPatternBounds {
    cross_a: Vec<f64>,
    cross_b: Vec<f64>,
    band_a: Vec<f64>,
    band_b: Vec<f64>,
}

impl GroupPatternBounds {
    pub(crate) fn build(relaxed: &RelaxedTables, grid: &GroupGrid) -> Self {
        let mut cross_a = vec![f64::INFINITY; grid.ga];
        let mut band_a = vec![f64::INFINITY; grid.ga];
        for (u, (ca, ba)) in cross_a.iter_mut().zip(band_a.iter_mut()).enumerate() {
            if let Some((lo, hi)) = grid.range_a(u) {
                let mut c = f64::INFINITY;
                let mut b = f64::INFINITY;
                for i in lo..=hi {
                    c = c.min(relaxed.mins().col_min(i + 1));
                    b = b.min(relaxed.band_col(i));
                }
                *ca = c;
                *ba = b;
            }
        }
        let mut cross_b = vec![f64::INFINITY; grid.gb];
        let mut band_b = vec![f64::INFINITY; grid.gb];
        for (v, (cb, bb)) in cross_b.iter_mut().zip(band_b.iter_mut()).enumerate() {
            if let Some((lo, hi)) = grid.range_b(v) {
                let mut c = f64::INFINITY;
                let mut b = f64::INFINITY;
                for j in lo..=hi {
                    c = c.min(relaxed.mins().row_min(j + 1));
                    b = b.min(relaxed.band_row(j));
                }
                *cb = c;
                *bb = b;
            }
        }
        GroupPatternBounds {
            cross_a,
            cross_b,
            band_a,
            band_b,
        }
    }

    /// Combined pattern bound for block pair `(u, v)` under the selection.
    pub(crate) fn bound(&self, sel: BoundSelection, gcell: f64, u: usize, v: usize) -> f64 {
        let mut lb = f64::NEG_INFINITY;
        if sel.cell && gcell.is_finite() {
            lb = lb.max(gcell);
        }
        if sel.cross {
            let c = self.cross_a[u].max(self.cross_b[v]);
            if c.is_finite() {
                lb = lb.max(c);
            }
        }
        if sel.band {
            let b = self.band_a[u].max(self.band_b[v]);
            if b.is_finite() {
                lb = lb.max(b);
            }
        }
        lb
    }
}

/// Sum of candidate pairs over all subsets starting inside block `(u, v)`.
pub(crate) fn pairs_in_block(
    domain: Domain,
    grid: &GroupGrid,
    xi: usize,
    u: usize,
    v: usize,
) -> u128 {
    let (Some((alo, ahi)), Some((blo, bhi))) = (grid.range_a(u), grid.range_b(v)) else {
        return 0;
    };
    let mut total = 0u128;
    for i in alo..=ahi {
        for j in blo..=bhi {
            total += domain.pairs_in_subset(i, j, xi);
        }
    }
    total
}

/// Whether block `(u, v)` contains at least one non-empty candidate subset.
pub(crate) fn block_nonempty(
    domain: Domain,
    grid: &GroupGrid,
    xi: usize,
    u: usize,
    v: usize,
) -> bool {
    let (Some((alo, _ahi)), Some((blo, bhi))) = (grid.range_a(u), grid.range_b(v)) else {
        return false;
    };
    match domain {
        Domain::Within { n } => {
            // Most permissive i is alo; j must leave room for ie below it
            // and je above it.
            let j_lo_feasible = alo + xi + 2;
            let j_hi_feasible = n.saturating_sub(xi + 2);
            blo.max(j_lo_feasible) <= bhi.min(j_hi_feasible)
        }
        Domain::Between { n, m } => alo + xi + 1 < n && blo + xi + 1 < m,
    }
}

/// One grouping level: prune the given block pairs, tighten `bsf` with
/// group upper bounds, and return the survivors. Shared by GTM (per level)
/// and GTM* (single level).
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_group_level(
    gm: &GroupMatrices,
    pattern: &GroupPatternBounds,
    domain: Domain,
    xi: usize,
    sel: BoundSelection,
    pairs: &[(u32, u32)],
    bsf: &mut Bsf,
    stats: &mut SearchStats,
) -> Vec<(u32, u32)> {
    let mut entries: Vec<(f64, u32, u32)> = pairs
        .iter()
        .map(|&(u, v)| {
            let gcell = gm.dmin(u as usize, v as usize);
            (pattern.bound(sel, gcell, u as usize, v as usize), u, v)
        })
        .collect();
    entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    stats.bytes_lists = stats
        .bytes_lists
        .max(entries.len() * std::mem::size_of::<(f64, u32, u32)>());

    let mut survivors = Vec::new();
    let mut stop = entries.len();
    for (idx, &(lb, u, v)) in entries.iter().enumerate() {
        stats.group_pairs_total += 1;
        if bsf.prunable(lb) {
            stop = idx;
            break;
        }
        let (u_us, v_us) = (u as usize, v as usize);
        let bounds = group_dfd_bounds(gm, domain, xi, u_us, v_us, bsf.value);
        if bsf.prunable(bounds.lower) {
            stats.group_pairs_pruned_dfd += 1;
            stats.record_subset_pruned(
                BoundKind::GroupDfd,
                pairs_in_block(domain, &gm.grid, xi, u_us, v_us),
            );
            continue;
        }
        survivors.push((u, v));
        stats.group_pairs_survived += 1;
        if bounds.upper < bsf.value && bsf.tighten(bounds.upper) {
            stats.bsf_tightened_by_group_ub += 1;
        }
    }
    for &(_, u, v) in &entries[stop..] {
        stats.group_pairs_total += 1;
        stats.group_pairs_pruned_pattern += 1;
        stats.record_subset_pruned(
            BoundKind::GroupPattern,
            pairs_in_block(domain, &gm.grid, xi, u as usize, v as usize),
        );
    }
    survivors
}

/// Splits surviving block pairs at group size τ into their children at
/// τ/2, keeping only children that can contain candidates.
pub(crate) fn split_pairs(
    domain: Domain,
    xi: usize,
    survivors: &[(u32, u32)],
    child_grid: &GroupGrid,
) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(survivors.len() * 4);
    for &(u, v) in survivors {
        for cu in [2 * u, 2 * u + 1] {
            for cv in [2 * v, 2 * v + 1] {
                let (cu_us, cv_us) = (cu as usize, cv as usize);
                if cu_us >= child_grid.ga || cv_us >= child_grid.gb {
                    continue;
                }
                if matches!(domain, Domain::Within { .. }) && cu > cv {
                    continue;
                }
                if block_nonempty(domain, child_grid, xi, cu_us, cv_us) {
                    out.push((cu, cv));
                }
            }
        }
    }
    out
}

/// O(1) bail-out when a budget expires during the grouping levels: no
/// concrete motif exists yet (group levels produce bounds, not pairs),
/// and everything unaccounted is budget-skipped, not pruned. Shared by
/// GTM and GTM*.
pub(crate) fn truncated_mid_grouping(
    mut stats: SearchStats,
    started: Instant,
) -> (Option<Motif>, SearchStats, bool) {
    stats.subsets_skipped_budget = stats.subsets_total - stats.subsets_expanded;
    stats.pairs_skipped_budget += stats.pairs_total.saturating_sub(stats.pairs_accounted());
    stats.total_seconds = started.elapsed().as_secs_f64();
    (None, stats, false)
}

/// Initial block-pair enumeration at the coarsest level.
pub(crate) fn initial_pairs(domain: Domain, xi: usize, grid: &GroupGrid) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for u in 0..grid.ga {
        let v_lo = match domain {
            Domain::Within { .. } => u,
            Domain::Between { .. } => 0,
        };
        for v in v_lo..grid.gb {
            if block_nonempty(domain, grid, xi, u, v) {
                out.push((u as u32, v as u32));
            }
        }
    }
    out
}

impl Gtm {
    pub(crate) fn run<D: DistanceSource + Sync>(
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        epsilon: f64,
        started: Instant,
    ) -> (Option<Motif>, SearchStats) {
        let tables = BoundTables::build(src, domain, config.min_length, config.bounds);
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = Self::run_prepared(
            src, &tables, None, domain, config, epsilon, started, &mut buf, None, 0,
        );
        (motif, stats)
    }

    /// Algorithm 3 over prebuilt bound tables and an external DP buffer —
    /// the entry point used by [`crate::engine::Engine`] so repeated
    /// queries on the same trajectory skip the `O(n²)` precomputation.
    /// When `tables` is the tight variant, `relaxed` may supply prebuilt
    /// relaxed arrays for the grouping machinery (built locally when
    /// absent).
    ///
    /// The third return value is `false` when `budget` truncated the
    /// search — a wall-clock deadline is checked between grouping levels
    /// (bailing out with no motif) and before every subset expansion of
    /// the final best-first stage.
    ///
    /// The grouping levels always run serially (their bsf tightening is
    /// order-dependent, and keeping them serial guarantees the surviving
    /// candidate list — and therefore the result — is identical across
    /// execution modes); `threads >= 1` runs the final best-first stage
    /// through the parallel execution layer ([`crate::parallel`]).
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_prepared<D: DistanceSource + Sync>(
        src: &D,
        tables: &BoundTables,
        relaxed: Option<&RelaxedTables>,
        domain: Domain,
        config: &MotifConfig,
        epsilon: f64,
        started: Instant,
        buf: &mut DpBuffers,
        budget: Option<&SearchBudget>,
        threads: usize,
    ) -> (Option<Motif>, SearchStats, bool) {
        let xi = config.min_length;
        let sel = config.bounds;

        // Group pattern bounds always use relaxed arrays; take the
        // caller's (the engine caches them across queries), else build
        // them when the final stage runs tight bounds.
        let relaxed_extra;
        let relaxed: &RelaxedTables = match tables.as_relaxed().or(relaxed) {
            Some(r) => r,
            None => {
                relaxed_extra = RelaxedTables::build(src, domain, xi);
                &relaxed_extra
            }
        };

        let mut stats = SearchStats {
            bytes_distance_matrix: src.bytes(),
            bytes_bounds: tables.bytes(),
            subsets_total: domain.subsets_count(xi),
            pairs_total: domain.pairs_count(xi),
            precompute_seconds: started.elapsed().as_secs_f64(),
            ..SearchStats::default()
        };

        // τ rounded up to a power of two so repeated halving reaches 1.
        let mut tau = config.group_size.next_power_of_two().max(1);
        let max_len = domain.len_a().max(domain.len_b()).max(1);
        while tau > max_len {
            tau /= 2;
        }
        let tau0 = tau.max(1);

        let mut bsf = Bsf::approximate(epsilon);
        let mut survivors = initial_pairs(domain, xi, &GroupGrid::new(domain, tau0));

        let mut level_tau = tau0;
        while level_tau > 1 && !survivors.is_empty() {
            // Honor a wall-clock budget between levels too: on large
            // inputs the grouping DPs are a real share of the runtime,
            // and the final stage would otherwise be the first place the
            // deadline is consulted.
            if budget.is_some_and(|b| b.exceeded(stats.subsets_expanded)) {
                return truncated_mid_grouping(stats, started);
            }
            let gm = GroupMatrices::build(src, domain, level_tau);
            stats.bytes_groups = stats.bytes_groups.max(gm.bytes());
            let pattern = GroupPatternBounds::build(relaxed, &gm.grid);
            let level_survivors = process_group_level(
                &gm, &pattern, domain, xi, sel, &survivors, &mut bsf, &mut stats,
            );
            let child_grid = GroupGrid::new(domain, level_tau / 2);
            survivors = split_pairs(domain, xi, &level_survivors, &child_grid);
            level_tau /= 2;
        }

        // Final stage: survivors are candidate subsets (τ = 1).
        let starts = survivors
            .iter()
            .map(|&(i, j)| (i as usize, j as usize))
            .filter(|&(i, j)| domain.subset_nonempty(i, j, xi));
        let mut entries: Vec<ListEntry> = build_entries(src, tables, sel, starts);
        stats.bytes_lists = stats.bytes_lists.max(list_bytes(&entries));

        let completed = if threads > 0 {
            crate::parallel::process_sorted_subsets_parallel(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                None,
                &mut bsf,
                &mut stats,
                budget,
                threads,
                true,
            )
        } else {
            stats.threads_used = 1;
            process_sorted_subsets(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                &mut bsf,
                &mut stats,
                buf,
                budget,
            )
        };

        // Recorded after the scan: a shared engine buffer grows lazily;
        // a parallel scan already recorded its workers' buffers instead.
        stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
        stats.total_seconds = started.elapsed().as_secs_f64();
        (bsf.motif, stats, completed)
    }
}

impl<P: GroundDistance> MotifDiscovery<P> for Gtm {
    fn name(&self) -> &'static str {
        "GTM"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        Self::run(&src, domain, config, 0.0, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        Self::run(&src, domain, config, 0.0, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteDp;
    use crate::btm::Btm;
    use fremo_trajectory::gen::planar;

    #[test]
    fn agrees_with_brutedp_on_random_walks() {
        for seed in 0..6 {
            let t = planar::random_walk(48, 0.35, seed);
            let cfg = MotifConfig::new(3).with_group_size(8);
            let brute = BruteDp.discover(&t, &cfg).expect("brute");
            let gtm = Gtm.discover(&t, &cfg).expect("gtm");
            assert!(
                (brute.distance - gtm.distance).abs() < 1e-12,
                "seed {seed}: brute={} gtm={}",
                brute.distance,
                gtm.distance
            );
        }
    }

    #[test]
    fn agrees_across_group_sizes() {
        let t = planar::random_walk(64, 0.4, 17);
        let reference = Btm.discover(&t, &MotifConfig::new(4)).unwrap();
        for tau in [1, 2, 4, 8, 16, 32, 64, 128] {
            let cfg = MotifConfig::new(4).with_group_size(tau);
            let m = Gtm.discover(&t, &cfg).expect("motif");
            assert!(
                (m.distance - reference.distance).abs() < 1e-12,
                "tau={tau}: {} vs {}",
                m.distance,
                reference.distance
            );
        }
    }

    #[test]
    fn agrees_between_trajectories() {
        for seed in 0..4 {
            let a = planar::random_walk(40, 0.4, seed);
            let b = planar::random_walk(34, 0.4, seed + 50);
            let cfg = MotifConfig::new(3).with_group_size(8);
            let brute = BruteDp.discover_between(&a, &b, &cfg).expect("brute");
            let gtm = Gtm.discover_between(&a, &b, &cfg).expect("gtm");
            assert!(
                (brute.distance - gtm.distance).abs() < 1e-12,
                "seed {seed}: {} vs {}",
                brute.distance,
                gtm.distance
            );
        }
    }

    #[test]
    fn pairs_accounting_is_complete() {
        let t = planar::random_walk(60, 0.4, 23);
        let cfg = MotifConfig::new(4).with_group_size(8);
        let (motif, stats) = Gtm.discover_with_stats(&t, &cfg);
        assert!(motif.is_some());
        let accounted = stats.pairs_pruned_cell
            + stats.pairs_pruned_cross
            + stats.pairs_pruned_band
            + stats.pairs_pruned_group_pattern
            + stats.pairs_pruned_group_dfd
            + stats.pairs_exact;
        assert_eq!(accounted, stats.pairs_total);
    }

    #[test]
    fn block_helpers() {
        let domain = Domain::Within { n: 40 };
        let grid = GroupGrid::new(domain, 8);
        let xi = 3;
        // Block (0, 0): j ≤ 7 but j must be ≥ i+ξ+2 ≥ 5 and ≤ 35 → j ∈ [5,7].
        assert!(block_nonempty(domain, &grid, xi, 0, 0));
        // Block (4, 0) is below the diagonal in practice (i ≥ 32, j ≤ 7).
        assert!(!block_nonempty(domain, &grid, xi, 4, 0));
        // pairs_in_block sums subsets exactly.
        let total: u128 = (0..grid.ga)
            .flat_map(|u| (0..grid.gb).map(move |v| (u, v)))
            .map(|(u, v)| pairs_in_block(domain, &grid, xi, u, v))
            .sum();
        assert_eq!(total, domain.pairs_count(xi));
    }

    #[test]
    fn initial_pairs_cover_all_subsets() {
        let domain = Domain::Within { n: 50 };
        let xi = 2;
        let grid = GroupGrid::new(domain, 8);
        let pairs = initial_pairs(domain, xi, &grid);
        // Every non-empty subset's block must be listed.
        for (i, j) in domain.subsets(xi) {
            let (u, v) = (grid.group_of(i) as u32, grid.group_of(j) as u32);
            assert!(
                pairs.contains(&(u, v)),
                "subset ({i},{j}) block ({u},{v}) missing"
            );
        }
    }

    #[test]
    fn split_preserves_coverage() {
        let domain = Domain::Within { n: 50 };
        let xi = 2;
        let parent = GroupGrid::new(domain, 8);
        let child = GroupGrid::new(domain, 4);
        let parents = initial_pairs(domain, xi, &parent);
        let children = split_pairs(domain, xi, &parents, &child);
        for (i, j) in domain.subsets(xi) {
            let (u, v) = (child.group_of(i) as u32, child.group_of(j) as u32);
            assert!(children.contains(&(u, v)), "subset ({i},{j}) lost in split");
        }
    }
}
