//! Regenerates Figure 18 (response time vs n, all methods).
use fremo_bench::experiments::{fig18_time_vs_n, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig18_time_vs_n::run(scale);
    print_all("Figure 18 (response time vs n, all methods)", &tables);
}
