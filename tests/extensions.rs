//! Integration tests for the extensions beyond the paper: approximate
//! search, top-k motifs, similarity join, and parallel BTM — exercised
//! end-to-end on the realistic synthetic datasets.

use fremo::motif::{
    similarity_join, similarity_self_join, top_k_motifs, ApproxBtm, ApproxGtm, ParallelBtm,
};
use fremo::prelude::*;
use fremo::trajectory::gen::Dataset;

#[test]
fn approximate_search_guarantee_on_gps_data() {
    let t = Dataset::GeoLife.generate(200, 55);
    let cfg = MotifConfig::new(10);
    let exact = Btm.discover(&t, &cfg).unwrap().distance;
    for eps in [0.05, 0.25, 1.0] {
        for (name, d) in [
            (
                "approx-btm",
                ApproxBtm::new(eps).discover(&t, &cfg).unwrap().distance,
            ),
            (
                "approx-gtm",
                ApproxGtm::new(eps).discover(&t, &cfg).unwrap().distance,
            ),
        ] {
            assert!(d >= exact - 1e-9, "{name} beat the optimum");
            assert!(
                d <= (1.0 + eps) * exact + 1e-9,
                "{name} eps={eps}: {d} > (1+eps)*{exact}"
            );
        }
    }
}

#[test]
fn approximate_search_prunes_more_as_epsilon_grows() {
    let t = Dataset::GeoLife.generate(260, 56);
    let cfg = MotifConfig::new(12);
    let mut last_expanded = u64::MAX;
    for eps in [0.0, 0.5, 2.0] {
        let (_, stats) = ApproxBtm::new(eps).discover_with_stats(&t, &cfg);
        assert!(
            stats.subsets_expanded <= last_expanded,
            "eps={eps} expanded {} > previous {last_expanded}",
            stats.subsets_expanded
        );
        last_expanded = stats.subsets_expanded;
    }
}

#[test]
fn top_k_on_truck_routes() {
    // Trucks repeat routes, so several disjoint motifs should exist.
    let t = Dataset::Truck.generate(400, 21);
    let cfg = MotifConfig::new(15);
    let motifs = top_k_motifs(&t, &cfg, 3);
    assert!(!motifs.is_empty());
    // #1 equals the single-motif search.
    let single = Gtm.discover(&t, &cfg).unwrap();
    assert!((motifs[0].distance - single.distance).abs() < 1e-9);
    // Disjointness across all reported intervals.
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    for m in &motifs {
        intervals.push(m.first);
        intervals.push(m.second);
    }
    intervals.sort_unstable();
    for w in intervals.windows(2) {
        assert!(w[0].1 < w[1].0, "{:?} overlaps {:?}", w[0], w[1]);
    }
}

#[test]
fn similarity_join_on_baboon_troop() {
    // Individuals of the same troop stay close ⇒ joins fire; a different
    // troop far away never joins.
    let troop: Vec<_> = (0..4)
        .map(|k| Dataset::Baboon.generate(120, 400 + k))
        .collect();
    let r = similarity_self_join(&troop, 2_000.0);
    assert!(!r.pairs.is_empty(), "troop members should join at 2 km");

    let other: Vec<_> = (0..3).map(|k| Dataset::GeoLife.generate(120, k)).collect();
    let cross = similarity_join(&troop, &other, 2_000.0);
    assert!(cross.pairs.is_empty(), "Kenya and Beijing should not join");
    assert!(cross.pruned_fraction() > 0.99);
}

#[test]
fn parallel_btm_agrees_on_every_dataset() {
    for dataset in Dataset::ALL {
        let t = dataset.generate(180, 77);
        let cfg = MotifConfig::new(10);
        let serial = Btm.discover(&t, &cfg).unwrap();
        let parallel = ParallelBtm::new(4).discover(&t, &cfg).unwrap();
        assert!(
            (serial.distance - parallel.distance).abs() < 1e-9,
            "{dataset}: {} vs {}",
            serial.distance,
            parallel.distance
        );
    }
}

#[test]
fn preprocessing_pipeline_composes_with_discovery() {
    use fremo::trajectory::{resample_uniform, simplify_geo};
    let raw = Dataset::GeoLife.generate(500, 91);

    // Simplify to 10 m, then resample to a uniform 30 s grid, then mine.
    let simplified = simplify_geo(&raw, 10.0);
    assert!(simplified.len() <= raw.len());
    let uniform = resample_uniform(&simplified, 30.0).expect("timestamped");
    assert!(uniform.len() >= 20);

    let xi = 8;
    if uniform.len() >= 2 * xi + 4 {
        let cfg = MotifConfig::new(xi);
        let m = Gtm
            .discover(&uniform, &cfg)
            .expect("motif on preprocessed trace");
        assert!(m.is_valid_within(uniform.len(), xi));
    }
}
