//! Extension experiment: top-k diverse motif discovery — cost growth and
//! value spread as k increases.

use std::time::Instant;

use fremo_core::{top_k_motifs, MotifConfig};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};

/// Regenerates the top-k table.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let xi = scale.default_xi();
    let t = Dataset::Truck.generate(n, 3300);
    let cfg = MotifConfig::new(xi);

    let mut table = Table::new(vec!["k", "found", "dfd #1", "dfd #k", "time (s)"]);
    for k in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let motifs = top_k_motifs(&t, &cfg, k);
        let secs = t0.elapsed().as_secs_f64();
        let first = motifs.first().map_or(f64::NAN, |m| m.distance);
        let last = motifs.last().map_or(f64::NAN, |m| m.distance);
        table.row(vec![
            k.to_string(),
            motifs.len().to_string(),
            format!("{first:.1}"),
            format!("{last:.1}"),
            fmt_secs(secs),
        ]);
    }

    vec![(
        format!("Extension: top-k diverse motifs (Truck-like, n={n}, xi={xi})"),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert!(out[0].1.render().contains('8'));
    }
}
