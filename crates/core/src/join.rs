//! DFD similarity join — another of the paper's future-work applications:
//! *"apply similar optimizations in order to accelerate other trajectory
//! analysis operations that rely on DFD, such as similarity join"*.
//!
//! Given two collections of (whole) trajectories and a threshold `ε`,
//! [`similarity_join`] returns every cross pair with `DFD ≤ ε`. Two
//! cheap, safe filters run before the quadratic DFD kernel:
//!
//! 1. **Endpoints** — every coupling matches first-with-first and
//!    last-with-last, so `max(d(a₀,b₀), d(aₙ,bₘ)) ≤ DFD`.
//! 2. **Directed Hausdorff** — `max_p min_q d(p,q) ≤ DFD` (orderless
//!    matching can only do better); evaluated with early exit, so a
//!    far-apart pair costs roughly one scan of the first trajectory.
//!
//! Surviving pairs run the `O(ℓ²)` *decision* kernel
//! ([`fremo_similarity::dfd_decision`]), which abandons as soon as no
//! coupling can stay under `ε`.

use std::borrow::Borrow;

use fremo_similarity::dfd_decision;
use fremo_trajectory::{GroundDistance, Trajectory};
use parking_lot::Mutex;

use crate::pool::{self, WorkCursor};

/// Result of a similarity join.
#[derive(Debug, Clone, Default)]
pub struct JoinResult {
    /// Index pairs `(a_idx, b_idx)` with `DFD ≤ ε`.
    pub pairs: Vec<(usize, usize)>,
    /// Candidate pairs eliminated by the endpoint filter.
    pub pruned_endpoints: u64,
    /// Candidate pairs eliminated by the directed-Hausdorff filter.
    pub pruned_hausdorff: u64,
    /// Candidate pairs that ran the full decision kernel.
    pub verified: u64,
}

/// Directed "max-min" lower bound with early exit at `eps`: returns `true`
/// when some point of `a` is farther than `eps` from every point of `b`
/// (⇒ `DFD > eps`, prune).
fn hausdorff_exceeds<P: GroundDistance>(a: &[P], b: &[P], eps: f64) -> bool {
    'outer: for p in a {
        for q in b {
            if p.distance(q) <= eps {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Runs the filter chain and (if needed) the decision kernel on one pair,
/// recording counters into `out` and pushing `(i, j)` on a match. Each
/// pair's verdict is independent of every other pair — the property that
/// makes the parallel joins below bit-for-bit equal to the serial loops.
fn join_one_pair<P: GroundDistance>(
    pa: &[P],
    pb: &[P],
    i: usize,
    j: usize,
    eps: f64,
    out: &mut JoinResult,
) {
    if pa.is_empty() || pb.is_empty() {
        return;
    }
    // Filter 1: endpoints.
    let ends = pa[0]
        .distance(&pb[0])
        .max(pa[pa.len() - 1].distance(&pb[pb.len() - 1]));
    if ends > eps {
        out.pruned_endpoints += 1;
        return;
    }
    // Filter 2: directed Hausdorff both ways with early exit.
    if hausdorff_exceeds(pa, pb, eps) || hausdorff_exceeds(pb, pa, eps) {
        out.pruned_hausdorff += 1;
        return;
    }
    // Exact decision.
    out.verified += 1;
    if dfd_decision(pa, pb, eps) {
        out.pairs.push((i, j));
    }
}

/// Merges per-worker join results: counters sum, matched pairs re-sort
/// into the serial `(i, j)` iteration order.
fn merge_join_results(locals: Vec<Mutex<JoinResult>>) -> JoinResult {
    let mut out = JoinResult::default();
    for local in locals {
        let l = local.into_inner();
        out.pruned_endpoints += l.pruned_endpoints;
        out.pruned_hausdorff += l.pruned_hausdorff;
        out.verified += l.verified;
        out.pairs.extend(l.pairs);
    }
    out.pairs.sort_unstable();
    out
}

/// All pairs `(i, j)` with `DFD(a[i], b[j]) ≤ eps`.
///
/// Accepts owned (`&[Trajectory<P>]`) or borrowed (`&[&Trajectory<P>]`)
/// collections — the engine joins corpus entries without cloning them.
///
/// # Panics
///
/// Panics when `eps` is negative or NaN.
#[must_use]
pub fn similarity_join<P: GroundDistance, T: Borrow<Trajectory<P>>>(
    a: &[T],
    b: &[T],
    eps: f64,
) -> JoinResult {
    assert!(eps >= 0.0, "threshold must be non-negative");
    let mut out = JoinResult::default();
    for (i, ta) in a.iter().enumerate() {
        for (j, tb) in b.iter().enumerate() {
            join_one_pair(
                ta.borrow().points(),
                tb.borrow().points(),
                i,
                j,
                eps,
                &mut out,
            );
        }
    }
    out
}

/// [`similarity_join`] with the pair loop fanned out over worker threads
/// (workers claim rows of the cross product through an atomic cursor).
/// Pair verdicts are independent, so the result — matched pairs *and*
/// filter counters — is bit-for-bit identical to the serial join.
/// `threads == 0` resolves through the global budget
/// ([`crate::pool::global_threads`]).
///
/// # Panics
///
/// Panics when `eps` is negative or NaN.
#[must_use]
pub fn similarity_join_parallel<P, T>(a: &[T], b: &[T], eps: f64, threads: usize) -> JoinResult
where
    P: GroundDistance + Sync,
    T: Borrow<Trajectory<P>> + Sync,
{
    assert!(eps >= 0.0, "threshold must be non-negative");
    let threads = pool::resolve_threads(threads);
    if threads <= 1 {
        return similarity_join(a, b, eps);
    }
    let cursor = WorkCursor::new(a.len());
    let locals: Vec<Mutex<JoinResult>> = (0..threads)
        .map(|_| Mutex::new(JoinResult::default()))
        .collect();
    pool::run_workers(threads, |w| {
        let mut local = JoinResult::default();
        while let Some(i) = cursor.claim() {
            for (j, tb) in b.iter().enumerate() {
                join_one_pair(
                    a[i].borrow().points(),
                    tb.borrow().points(),
                    i,
                    j,
                    eps,
                    &mut local,
                );
            }
        }
        *locals[w].lock() = local;
    });
    merge_join_results(locals)
}

/// Self-join: all unordered pairs `(i, j)`, `i < j`, within one collection
/// with `DFD ≤ eps`.
///
/// Accepts owned or borrowed collections like [`similarity_join`].
///
/// # Panics
///
/// Panics when `eps` is negative or NaN.
#[must_use]
pub fn similarity_self_join<P: GroundDistance, T: Borrow<Trajectory<P>>>(
    set: &[T],
    eps: f64,
) -> JoinResult {
    assert!(eps >= 0.0, "threshold must be non-negative");
    let mut out = JoinResult::default();
    for i in 0..set.len() {
        for j in (i + 1)..set.len() {
            join_one_pair(
                set[i].borrow().points(),
                set[j].borrow().points(),
                i,
                j,
                eps,
                &mut out,
            );
        }
    }
    out
}

/// [`similarity_self_join`] with the unordered-pair loop fanned out over
/// worker threads; bit-for-bit identical to the serial self-join (see
/// [`similarity_join_parallel`]). `threads == 0` resolves through the
/// global budget.
///
/// # Panics
///
/// Panics when `eps` is negative or NaN.
#[must_use]
pub fn similarity_self_join_parallel<P, T>(set: &[T], eps: f64, threads: usize) -> JoinResult
where
    P: GroundDistance + Sync,
    T: Borrow<Trajectory<P>> + Sync,
{
    assert!(eps >= 0.0, "threshold must be non-negative");
    let threads = pool::resolve_threads(threads);
    if threads <= 1 {
        return similarity_self_join(set, eps);
    }
    let cursor = WorkCursor::new(set.len());
    let locals: Vec<Mutex<JoinResult>> = (0..threads)
        .map(|_| Mutex::new(JoinResult::default()))
        .collect();
    pool::run_workers(threads, |w| {
        let mut local = JoinResult::default();
        while let Some(i) = cursor.claim() {
            for j in (i + 1)..set.len() {
                join_one_pair(
                    set[i].borrow().points(),
                    set[j].borrow().points(),
                    i,
                    j,
                    eps,
                    &mut local,
                );
            }
        }
        *locals[w].lock() = local;
    });
    merge_join_results(locals)
}

impl JoinResult {
    /// Summary line for reports (shares the vocabulary of
    /// [`crate::stats::SearchStats`]).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} matches; pruned {} by endpoints, {} by hausdorff; {} verified",
            self.pairs.len(),
            self.pruned_endpoints,
            self.pruned_hausdorff,
            self.verified
        )
    }

    /// Converts the filter counters into a [`crate::stats::SearchStats`]-style pruned
    /// fraction (of all candidate pairs considered).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.pruned_endpoints + self.pruned_hausdorff + self.verified;
        if total == 0 {
            return 0.0;
        }
        (self.pruned_endpoints + self.pruned_hausdorff) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_similarity::dfd;
    use fremo_trajectory::gen::planar;
    use fremo_trajectory::EuclideanPoint;

    fn walks(n: usize, count: usize, seed: u64) -> Vec<Trajectory<EuclideanPoint>> {
        (0..count)
            .map(|k| planar::random_walk(n, 0.4, seed + k as u64))
            .collect()
    }

    /// Exhaustive reference join.
    fn naive_join(
        a: &[Trajectory<EuclideanPoint>],
        b: &[Trajectory<EuclideanPoint>],
        eps: f64,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, ta) in a.iter().enumerate() {
            for (j, tb) in b.iter().enumerate() {
                if dfd(ta.points(), tb.points()) <= eps {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn join_matches_naive_reference() {
        let a = walks(25, 6, 1);
        let b = walks(25, 6, 100);
        for eps in [0.5, 2.0, 8.0, 30.0] {
            let fast = similarity_join(&a, &b, eps);
            let slow = naive_join(&a, &b, eps);
            assert_eq!(fast.pairs, slow, "eps={eps}");
        }
    }

    #[test]
    fn filters_fire_on_distant_pairs() {
        // Shift the second set far away: everything should be endpoint- or
        // hausdorff-pruned, nothing verified.
        let a = walks(20, 4, 1);
        let b: Vec<Trajectory<EuclideanPoint>> = walks(20, 4, 2)
            .into_iter()
            .map(|t| {
                t.points()
                    .iter()
                    .map(|p| EuclideanPoint::new(p.x + 1e6, p.y))
                    .collect()
            })
            .collect();
        let r = similarity_join(&a, &b, 10.0);
        assert!(r.pairs.is_empty());
        assert_eq!(r.verified, 0);
        assert_eq!(r.pruned_endpoints + r.pruned_hausdorff, 16);
        assert!((r.pruned_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_join_excludes_diagonal_and_matches_naive() {
        let set = walks(22, 7, 42);
        let eps = 6.0;
        let fast = similarity_self_join(&set, eps);
        let mut slow = Vec::new();
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                if dfd(set[i].points(), set[j].points()) <= eps {
                    slow.push((i, j));
                }
            }
        }
        assert_eq!(fast.pairs, slow);
        for &(i, j) in &fast.pairs {
            assert!(i < j);
        }
        assert!(!fast.summary().is_empty());
    }

    #[test]
    fn identical_trajectories_always_join() {
        let t = planar::random_walk(30, 0.4, 9);
        let r = similarity_join(std::slice::from_ref(&t), std::slice::from_ref(&t), 0.0);
        assert_eq!(r.pairs, vec![(0, 0)]);
    }
}
