//! Longest Common Subsequence similarity (LCSS) \[26\].
//!
//! Vlachos et al.'s measure: two points "match" when their ground distance
//! is at most `ε`; LCSS is the length of the longest common subsequence of
//! matches. As a count it is a similarity; [`lcss_distance`] is the usual
//! normalization `1 − LCSS / min(n, m)` into a `[0, 1]` dissimilarity.
//! Like DTW it tolerates local time shifting but, being a count over
//! samples, it is sensitive to the sampling rate (Table 1).

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// Length of the longest ε-matched common subsequence.
#[must_use]
pub fn lcss_length<P: GroundDistance>(a: &[P], b: &[P], epsilon: f64) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    let mut prev = vec![0_usize; m + 1];
    let mut curr = vec![0_usize; m + 1];
    for p in outer {
        for (j, q) in inner.iter().enumerate() {
            curr[j + 1] = if p.distance(q) <= epsilon {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Normalized LCSS dissimilarity `1 − LCSS/min(n, m)` in `[0, 1]`.
///
/// Conventions: both empty → `0`, exactly one empty → `+∞`.
#[must_use]
pub fn lcss_distance<P: GroundDistance>(a: &[P], b: &[P], epsilon: f64) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let lcs = lcss_length(a, b, epsilon) as f64;
    1.0 - lcs / a.len().min(b.len()) as f64
}

/// [`SimilarityMeasure`] wrapper for normalized LCSS with a fixed matching
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lcss {
    /// Matching threshold `ε` in ground-distance units.
    pub epsilon: f64,
}

impl Lcss {
    /// Creates the measure with matching threshold `epsilon`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Lcss { epsilon }
    }
}

impl<P: GroundDistance> SimilarityMeasure<P> for Lcss {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        lcss_distance(a, b, self.epsilon)
    }

    fn name(&self) -> &'static str {
        "LCSS"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        false
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn identical_matches_fully() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(lcss_length(&a, &a, 0.1), 3);
        assert_eq!(lcss_distance(&a, &a, 0.1), 0.0);
    }

    #[test]
    fn disjoint_matches_nothing() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 100.0), (101.0, 100.0)]);
        assert_eq!(lcss_length(&a, &b, 0.5), 0);
        assert_eq!(lcss_distance(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn partial_subsequence() {
        // b shares a's first and third points but detours in between.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (50.0, 50.0), (2.0, 0.0)]);
        assert_eq!(lcss_length(&a, &b, 0.25), 2);
        assert!((lcss_distance(&a, &b, 0.25) - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn epsilon_widens_matching() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.4), (1.0, 0.4)]);
        assert_eq!(lcss_length(&a, &b, 0.1), 0);
        assert_eq!(lcss_length(&a, &b, 0.5), 2);
    }

    #[test]
    fn subsequence_respects_order() {
        // Reversed sequence: only one element can match in order.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(2.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        assert_eq!(lcss_length(&a, &b, 0.01), 1);
    }

    #[test]
    fn length_is_bounded_by_shorter_input() {
        let a = pts(&[(0.0, 0.0); 10]);
        let b = pts(&[(0.0, 0.0); 3]);
        assert_eq!(lcss_length(&a, &b, 0.1), 3);
        assert_eq!(lcss_distance(&a, &b, 0.1), 0.0);
    }
}
