//! Experiment scaling.
//!
//! The paper runs on an i7-4770 with trajectory lengths up to 10,000 and a
//! 2-hour cut-off for the baseline. [`Scale`] maps that methodology onto
//! three presets so every figure regenerates in seconds (`smoke`), minutes
//! (`default`), or at the paper's own sizes (`full`).

/// Sweep-size preset, selected by the `FREMO_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI smoke runs (seconds).
    Smoke,
    /// Laptop-friendly sizes preserving every trend (minutes).
    Default,
    /// The paper's sizes (n up to 10,000; hours, several GB RAM).
    Full,
}

impl Scale {
    /// Reads `FREMO_SCALE` (`smoke`/`default`/`full`), defaulting to
    /// [`Scale::Default`]; unknown values fall back to the default with a
    /// warning on stderr.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FREMO_SCALE").ok().as_deref() {
            Some("smoke") => Scale::Smoke,
            Some("full") => Scale::Full,
            None | Some("default") => Scale::Default,
            Some(other) => {
                eprintln!("warning: unknown FREMO_SCALE={other:?}, using default");
                Scale::Default
            }
        }
    }

    /// Trajectory lengths for the `n` sweeps (paper: 0.5K, 1K, 5K, 10K).
    #[must_use]
    pub fn lengths(&self) -> &'static [usize] {
        match self {
            Scale::Smoke => &[120, 240],
            Scale::Default => &[500, 1000, 2000],
            Scale::Full => &[500, 1000, 5000, 10_000],
        }
    }

    /// Minimum motif lengths for the `ξ` sweeps (paper: 100–400).
    #[must_use]
    pub fn motif_lengths(&self) -> &'static [usize] {
        match self {
            Scale::Smoke => &[10, 20],
            Scale::Default => &[50, 100, 150, 200],
            Scale::Full => &[100, 200, 300, 400],
        }
    }

    /// The default `ξ` used when it is held fixed (paper: 100).
    #[must_use]
    pub fn default_xi(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Default | Scale::Full => 100,
        }
    }

    /// The trajectory length used when `n` is held fixed (paper: 5,000).
    #[must_use]
    pub fn default_n(&self) -> usize {
        match self {
            Scale::Smoke => 240,
            Scale::Default => 2000,
            Scale::Full => 5000,
        }
    }

    /// Group sizes for the `τ` sweep (paper: 8–128).
    #[must_use]
    pub fn group_sizes(&self) -> &'static [usize] {
        match self {
            Scale::Smoke => &[4, 8, 16],
            Scale::Default | Scale::Full => &[8, 16, 32, 64, 128],
        }
    }

    /// Largest `n` at which BruteDP is attempted (the paper cut it off at 2
    /// hours around n = 1,000; we pre-empt instead of burning the time).
    #[must_use]
    pub fn brute_cap(&self) -> usize {
        match self {
            Scale::Smoke => 240,
            Scale::Default => 600,
            Scale::Full => 1000,
        }
    }

    /// How many distinct trajectories each measurement is averaged over
    /// (paper: 10).
    #[must_use]
    pub fn repetitions(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 3,
            Scale::Full => 10,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Scale::Smoke.lengths().last() < Scale::Default.lengths().last());
        assert!(Scale::Default.lengths().last() < Scale::Full.lengths().last());
        assert!(Scale::Smoke.default_xi() < Scale::Full.default_xi());
        assert!(Scale::Smoke.brute_cap() <= Scale::Full.brute_cap());
    }

    #[test]
    fn xi_fits_lengths() {
        // Every preset must admit valid candidates: n ≥ 2ξ + 4.
        for s in [Scale::Smoke, Scale::Default, Scale::Full] {
            for &n in s.lengths() {
                assert!(n >= 2 * s.default_xi() + 4, "{s}: n={n} too small");
            }
            assert!(
                s.default_n() >= 2 * s.motif_lengths().last().unwrap() + 4,
                "{s}"
            );
        }
    }
}
