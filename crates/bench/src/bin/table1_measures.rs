//! Regenerates Table 1 (similarity measure characteristics).
use fremo_bench::experiments::{print_all, table1_measures};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = table1_measures::run(scale);
    print_all("Table 1 (similarity measure characteristics)", &tables);
}
