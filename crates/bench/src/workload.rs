//! Workload construction for the experiments.
//!
//! The paper reports "average measurements over 10 different trajectories
//! of the same length", concatenating raw trajectories to reach each
//! target length (Section 6.1). We mirror that: each repetition uses a
//! different seed, and trajectories come from the synthetic stand-ins for
//! GeoLife / Truck / Wild-Baboon (`DESIGN.md` §5). Generation of the
//! per-repetition trajectories fans out over crossbeam scoped threads —
//! generation only; timed searches always run sequentially.

use fremo_trajectory::gen::Dataset;
use fremo_trajectory::{GeoPoint, Trajectory};

/// Builds `reps` trajectories of exactly `n` points from `dataset`,
/// deterministically seeded (`base_seed + rep`).
#[must_use]
pub fn trajectories(
    dataset: Dataset,
    n: usize,
    reps: usize,
    base_seed: u64,
) -> Vec<Trajectory<GeoPoint>> {
    let mut out: Vec<Option<Trajectory<GeoPoint>>> = (0..reps).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (rep, slot) in out.iter_mut().enumerate() {
            scope.spawn(move |_| {
                *slot = Some(dataset.generate(n, base_seed + rep as u64));
            });
        }
    })
    .expect("generator threads do not panic");
    out.into_iter().map(|t| t.expect("filled")).collect()
}

/// Builds `reps` *pairs* of trajectories for the two-trajectory variant
/// (Figure 21: "randomly select 10 pairs of input trajectories").
#[must_use]
pub fn trajectory_pairs(
    dataset: Dataset,
    n: usize,
    reps: usize,
    base_seed: u64,
) -> Vec<(Trajectory<GeoPoint>, Trajectory<GeoPoint>)> {
    let firsts = trajectories(dataset, n, reps, base_seed);
    let seconds = trajectories(dataset, n, reps, base_seed + 10_000);
    firsts.into_iter().zip(seconds).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_generation_matches_sequential() {
        let par = trajectories(Dataset::Truck, 200, 3, 7);
        for (rep, t) in par.iter().enumerate() {
            let seq = Dataset::Truck.generate(200, 7 + rep as u64);
            assert_eq!(t.points(), seq.points());
        }
    }

    #[test]
    fn pairs_are_independent() {
        let pairs = trajectory_pairs(Dataset::GeoLife, 150, 2, 3);
        assert_eq!(pairs.len(), 2);
        for (a, b) in &pairs {
            assert_eq!(a.len(), 150);
            assert_eq!(b.len(), 150);
            assert_ne!(a.points(), b.points());
        }
    }
}
