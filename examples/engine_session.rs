//! One engine session serving a mixed query stream.
//!
//! A production deployment doesn't run one algorithm on one trajectory —
//! it holds a corpus and answers heterogeneous queries against it. This
//! example registers a small fleet of trajectories with one [`Engine`]
//! and runs motif, repeated-motif (cache hit), top-k, cross-trajectory,
//! join, cluster, and measure queries through the same facade.
//!
//! ```bash
//! cargo run --release --example engine_session
//! ```

use fremo::prelude::*;

fn main() {
    let engine = Engine::new();

    // A corpus: six commuters' days, 400 samples each.
    let ids: Vec<TrajId> = engine
        .register_all((0..6).map(|seed| fremo::trajectory::gen::geolife_like(400, 40 + seed)));
    println!("corpus: {} trajectories registered", engine.len());

    // 1. Motif discovery; Auto picks the algorithm from n and ξ.
    let motif_query = Query::motif(ids[0]).xi(30).build();
    let outcome = engine.execute(&motif_query).expect("valid query");
    let motif = outcome.motif().expect("long enough for ξ = 30");
    println!(
        "\n[1] motif on #0 via {}: {motif}\n    {:.1} ms, built {} cached structures",
        outcome.algorithm,
        outcome.wall_seconds * 1e3,
        outcome.cache.recomputed(),
    );

    // 2. The same query again: the distance matrix and bound tables come
    //    from the session cache.
    let outcome = engine.execute(&motif_query).expect("valid query");
    println!(
        "[2] same query again: {:.1} ms, recomputed {} structures, reused {}",
        outcome.wall_seconds * 1e3,
        outcome.cache.recomputed(),
        outcome.cache.reused(),
    );

    // 3. Top-3 diverse motifs on the same trajectory — still warm.
    let outcome = engine
        .execute(&Query::top_k(ids[0], 3).xi(30).build())
        .expect("valid query");
    println!(
        "[3] top-3 disjoint motifs on #0 (cache hits: {}):",
        outcome.cache.reused()
    );
    for (rank, m) in outcome.motifs().iter().enumerate() {
        println!("    #{} {m}", rank + 1);
    }

    // 4. Cross-trajectory motif between two commuters.
    let outcome = engine
        .execute(&Query::motif_between(ids[0], ids[1]).xi(20).build())
        .expect("valid query");
    println!(
        "[4] motif between #0 and #1 via {}: {}",
        outcome.algorithm,
        outcome
            .motif()
            .map_or("none".to_string(), |m| m.to_string()),
    );

    // 5. Similarity self-join across the whole corpus.
    let outcome = engine
        .execute(&Query::join(ids.clone(), 500.0).build())
        .expect("valid query");
    let join = outcome.join().expect("join result");
    println!("[5] self-join (ε = 500 m): {}", join.summary());

    // 6. Subtrajectory clustering of one commuter's day.
    let outcome = engine
        .execute(&Query::cluster(ids[2], 40, 20, 250.0).build())
        .expect("valid query");
    let clusters = outcome.clusters().expect("clusters");
    println!(
        "[6] clustering #2: {} clusters, largest has {} windows",
        clusters.len(),
        clusters.first().map_or(0, |c| c.len()),
    );

    // 7. Whole-trajectory measure profile between two commuters.
    let outcome = engine
        .execute(&Query::measures(ids[0], ids[1], 25.0).build())
        .expect("valid query");
    let p = outcome.measures().expect("profile");
    println!(
        "[7] measures #0 vs #1: DFD = {:.1} m, DTW = {:.1}, Hausdorff = {:.1} m",
        p.dfd, p.dtw, p.hausdorff
    );

    // Session accounting.
    let stats = engine.stats();
    println!(
        "\nsession: {} queries; cache built {} / reused {} structures; {:.1} MB cached",
        stats.queries,
        stats.cache.recomputed(),
        stats.cache.reused(),
        engine.cache_bytes() as f64 / (1024.0 * 1024.0),
    );
}
