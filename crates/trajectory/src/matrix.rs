//! All-pair ground-distance storage.
//!
//! `BruteDP`, `BTM` and `GTM` "precompute all pairs of ground distances, and
//! store them in matrix `dG[·][·]` for quick access" (Section 3); `GTM*`
//! instead "computes ground distances on-the-fly" (Section 5.5, Idea i).
//! [`DenseMatrix`] and [`LazyDistances`] implement these two strategies
//! behind the common [`DistanceSource`] trait, and [`RowColMins`] holds the
//! full-range row/column minima (`Rmin`, `Cmin` of Section 4.3) that make
//! the relaxed lower bounds `O(1)`.
//!
//! ## Index convention
//!
//! `get(a, b)` returns `dG(S[a], T[b])`. For the within-trajectory problem
//! `S == T` and the matrix is symmetric; every cell a motif path can visit
//! satisfies `a < b` (the first subtrajectory precedes the second), which is
//! the [`ValidRegion::UpperTriangle`] region. For motif discovery between two
//! different trajectories every cell is valid ([`ValidRegion::Full`]).

use crate::point::GroundDistance;

/// Which cells of the distance matrix a motif path may visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidRegion {
    /// Every cell `(a, b)` is reachable (two-trajectory variant).
    Full,
    /// Only cells with `a < b` are reachable (single-trajectory variant,
    /// where the first subtrajectory ends before the second starts).
    UpperTriangle,
}

/// Abstract source of ground distances `dG(a, b)`.
///
/// Implemented by the precomputed [`DenseMatrix`] (fast `get`, `O(n·m)`
/// space) and by [`LazyDistances`] (recomputes per call, `O(1)` space),
/// letting every algorithm in `fremo-core` run in either space regime.
pub trait DistanceSource {
    /// Number of valid first indices (length of the first trajectory).
    fn len_a(&self) -> usize;

    /// Number of valid second indices (length of the second trajectory).
    fn len_b(&self) -> usize;

    /// Ground distance between point `a` of the first trajectory and point
    /// `b` of the second.
    fn get(&self, a: usize, b: usize) -> f64;

    /// Approximate heap footprint in bytes, for the paper's Figure 19 space
    /// accounting.
    fn bytes(&self) -> usize;
}

/// Precomputed dense `len_a × len_b` ground-distance matrix (row-major,
/// indexed `a * len_b + b`).
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    len_a: usize,
    len_b: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Precomputes all pair distances within a single point sequence.
    ///
    /// The matrix is symmetric; both halves are stored so that `get` stays a
    /// single multiply-add (the paper's methods index `dG` heavily in inner
    /// loops).
    #[must_use]
    pub fn within<P: GroundDistance>(points: &[P]) -> Self {
        let n = points.len();
        let mut data = vec![0.0; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = points[a].distance(&points[b]);
                data[a * n + b] = d;
                data[b * n + a] = d;
            }
        }
        DenseMatrix {
            len_a: n,
            len_b: n,
            data,
        }
    }

    /// Precomputes all pair distances between two point sequences.
    #[must_use]
    pub fn between<P: GroundDistance>(a_pts: &[P], b_pts: &[P]) -> Self {
        let (na, nb) = (a_pts.len(), b_pts.len());
        let mut data = Vec::with_capacity(na * nb);
        for a in a_pts {
            for b in b_pts {
                data.push(a.distance(b));
            }
        }
        DenseMatrix {
            len_a: na,
            len_b: nb,
            data,
        }
    }

    /// [`DenseMatrix::within`] with row-chunked parallel construction.
    ///
    /// Workers fill the upper triangle (rows are dealt round-robin so the
    /// shrinking triangle rows balance), then a serial mirror pass copies
    /// each cell to its transpose. Every cell is therefore produced by the
    /// same `distance` call as in the serial builder — the result is
    /// **bit-for-bit identical** to [`DenseMatrix::within`] regardless of
    /// scheduling, which is what lets the engine cache one matrix per
    /// trajectory across serial and parallel queries. `threads <= 1` runs
    /// the serial builder directly.
    #[must_use]
    pub fn within_parallel<P: GroundDistance + Sync>(points: &[P], threads: usize) -> Self {
        let n = points.len();
        if threads <= 1 || n < 4 {
            return DenseMatrix::within(points);
        }
        let mut data = vec![0.0; n * n];
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
            (0..threads.min(n)).map(|_| Vec::new()).collect();
        let workers = buckets.len();
        for (a, row) in data.chunks_mut(n).enumerate() {
            buckets[a % workers].push((a, row));
        }
        crossbeam::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move |_| {
                    for (a, row) in bucket {
                        for (b, slot) in row.iter_mut().enumerate().skip(a + 1) {
                            *slot = points[a].distance(&points[b]);
                        }
                    }
                });
            }
        })
        .expect("matrix workers do not panic");
        // Mirror pass: pure copies, no arithmetic — cheap next to the
        // ground-distance evaluations above.
        for a in 0..n {
            for b in (a + 1)..n {
                data[b * n + a] = data[a * n + b];
            }
        }
        DenseMatrix {
            len_a: n,
            len_b: n,
            data,
        }
    }

    /// [`DenseMatrix::between`] with row-chunked parallel construction;
    /// bit-for-bit identical to the serial builder (see
    /// [`DenseMatrix::within_parallel`]).
    #[must_use]
    pub fn between_parallel<P: GroundDistance + Sync>(
        a_pts: &[P],
        b_pts: &[P],
        threads: usize,
    ) -> Self {
        let (na, nb) = (a_pts.len(), b_pts.len());
        if threads <= 1 || na < 2 || nb == 0 {
            return DenseMatrix::between(a_pts, b_pts);
        }
        let mut data = vec![0.0; na * nb];
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
            (0..threads.min(na)).map(|_| Vec::new()).collect();
        let workers = buckets.len();
        for (a, row) in data.chunks_mut(nb).enumerate() {
            buckets[a % workers].push((a, row));
        }
        crossbeam::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move |_| {
                    for (a, row) in bucket {
                        for (b, slot) in row.iter_mut().enumerate() {
                            *slot = a_pts[a].distance(&b_pts[b]);
                        }
                    }
                });
            }
        })
        .expect("matrix workers do not panic");
        DenseMatrix {
            len_a: na,
            len_b: nb,
            data,
        }
    }

    /// Builds a matrix directly from raw row-major values (used by unit
    /// tests to reproduce the paper's Figure 5 worked example).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != len_a * len_b`.
    #[must_use]
    pub fn from_raw(len_a: usize, len_b: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), len_a * len_b, "raw data size mismatch");
        DenseMatrix { len_a, len_b, data }
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

impl DistanceSource for DenseMatrix {
    #[inline]
    fn len_a(&self) -> usize {
        self.len_a
    }

    #[inline]
    fn len_b(&self) -> usize {
        self.len_b
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.len_a && b < self.len_b);
        self.data[a * self.len_b + b]
    }

    fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

/// On-the-fly ground distances (GTM*'s Idea i): stores only borrowed point
/// slices and recomputes `dG` per call.
#[derive(Debug, Clone, Copy)]
pub struct LazyDistances<'a, P> {
    a_pts: &'a [P],
    b_pts: &'a [P],
}

impl<'a, P: GroundDistance> LazyDistances<'a, P> {
    /// Lazy distances within a single point sequence.
    #[must_use]
    pub fn within(points: &'a [P]) -> Self {
        LazyDistances {
            a_pts: points,
            b_pts: points,
        }
    }

    /// Lazy distances between two point sequences.
    #[must_use]
    pub fn between(a_pts: &'a [P], b_pts: &'a [P]) -> Self {
        LazyDistances { a_pts, b_pts }
    }
}

impl<P: GroundDistance> DistanceSource for LazyDistances<'_, P> {
    #[inline]
    fn len_a(&self) -> usize {
        self.a_pts.len()
    }

    #[inline]
    fn len_b(&self) -> usize {
        self.b_pts.len()
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        self.a_pts[a].distance(&self.b_pts[b])
    }

    fn bytes(&self) -> usize {
        0
    }
}

/// Full-range row and column minima of a distance source, restricted to a
/// [`ValidRegion`].
///
/// These are the `Cmin`/`Rmin` arrays of Section 4.3: `col_min[a]` is the
/// minimum of matrix column `a` (first index fixed to `a`) over all valid
/// second indices, and `row_min[b]` the minimum of row `b` over all valid
/// first indices. Both are `O(n·m)` to build once and power the `O(1)`
/// relaxed cross/band bounds.
///
/// Entries whose row/column contain no valid cell (e.g. `row_min[0]` in the
/// upper-triangle region) are `f64::INFINITY`, which makes the derived
/// bounds degenerate to "prune nothing is impossible / prune everything is
/// allowed only if bsf is also infinite" — i.e. they stay safe.
#[derive(Debug, Clone)]
pub struct RowColMins {
    col_min: Vec<f64>,
    row_min: Vec<f64>,
}

impl RowColMins {
    /// Scans the source once and records per-column and per-row minima.
    #[must_use]
    pub fn compute<D: DistanceSource>(src: &D, region: ValidRegion) -> Self {
        let (na, nb) = (src.len_a(), src.len_b());
        let mut col_min = vec![f64::INFINITY; na];
        let mut row_min = vec![f64::INFINITY; nb];
        for (a, cmin) in col_min.iter_mut().enumerate() {
            let b_start = match region {
                ValidRegion::Full => 0,
                ValidRegion::UpperTriangle => a + 1,
            };
            for (b, rmin) in row_min.iter_mut().enumerate().skip(b_start) {
                let d = src.get(a, b);
                if d < *cmin {
                    *cmin = d;
                }
                if d < *rmin {
                    *rmin = d;
                }
            }
        }
        RowColMins { col_min, row_min }
    }

    /// Minimum of matrix column `a` (`Cmin`), or `+∞` when out of range /
    /// empty.
    #[inline]
    #[must_use]
    pub fn col_min(&self, a: usize) -> f64 {
        self.col_min.get(a).copied().unwrap_or(f64::INFINITY)
    }

    /// Minimum of matrix row `b` (`Rmin`), or `+∞` when out of range /
    /// empty.
    #[inline]
    #[must_use]
    pub fn row_min(&self, b: usize) -> f64 {
        self.row_min.get(b).copied().unwrap_or(f64::INFINITY)
    }

    /// The column-minimum array.
    #[must_use]
    pub fn col_mins(&self) -> &[f64] {
        &self.col_min
    }

    /// The row-minimum array.
    #[must_use]
    pub fn row_mins(&self) -> &[f64] {
        &self.row_min
    }

    /// Heap footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.col_min.capacity() + self.row_min.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Sliding-window maximum over `values` with window length `win`:
/// `out[i] = max(values[i..i+win])`, with the window truncated at the end of
/// the array (`out[i] = max(values[i..])` for the tail).
///
/// Used to turn `Rmin`/`Cmin` into the relaxed band bounds
/// `rLB_band^row(j) = max_{j'∈[j, j+ξ−1]} Rmin[j']` (Eq. 14–15) in `O(n)`
/// total instead of the paper's `O(ξ·n)`, via a monotone deque.
///
/// # Panics
///
/// Panics when `win == 0`.
#[must_use]
pub fn sliding_window_max(values: &[f64], win: usize) -> Vec<f64> {
    assert!(win > 0, "window must be positive");
    let n = values.len();
    let mut out = vec![f64::NEG_INFINITY; n];
    // Indices of candidate maxima, values decreasing front-to-back.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    // Process windows right-to-left so window [i, i+win) is complete when we
    // emit out[i].
    for i in (0..n).rev() {
        while let Some(&back) = deque.back() {
            if values[back] <= values[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        while let Some(&front) = deque.front() {
            if front >= i + win {
                deque.pop_front();
            } else {
                break;
            }
        }
        out[i] = values[*deque.front().expect("deque holds current index")];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn dense_within_matches_pointwise() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (5.0, 5.0)]);
        let m = DenseMatrix::within(&p);
        assert_eq!(m.len_a(), 4);
        assert_eq!(m.len_b(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(m.get(a, b), p[a].distance(&p[b]));
                assert_eq!(m.get(a, b), m.get(b, a));
            }
            assert_eq!(m.get(a, a), 0.0);
        }
        assert!(m.bytes() >= 16 * 8);
    }

    #[test]
    fn dense_between_matches_pointwise() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (2.0, 0.0), (3.0, 4.0)]);
        let m = DenseMatrix::between(&a, &b);
        assert_eq!(m.len_a(), 2);
        assert_eq!(m.len_b(), 3);
        for (i, pa) in a.iter().enumerate() {
            for (j, pb) in b.iter().enumerate() {
                assert_eq!(m.get(i, j), pa.distance(pb));
            }
        }
    }

    #[test]
    fn lazy_agrees_with_dense() {
        let p = pts(&[(0.0, 0.0), (2.0, 1.0), (4.0, 4.0), (1.0, 7.0), (0.5, 0.5)]);
        let dense = DenseMatrix::within(&p);
        let lazy = LazyDistances::within(&p);
        for a in 0..p.len() {
            for b in 0..p.len() {
                assert_eq!(dense.get(a, b), lazy.get(a, b));
            }
        }
        assert_eq!(lazy.bytes(), 0);
        assert!(dense.bytes() > 0);
    }

    #[test]
    fn parallel_builders_are_bitwise_identical_to_serial() {
        // Deterministic pseudo-random points (xorshift).
        let mut x: u64 = 0xC0FFEE;
        let mut pts = Vec::with_capacity(60);
        for _ in 0..60 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pts.push(EuclideanPoint::new(
                (x % 1000) as f64 / 7.0,
                ((x >> 10) % 1000) as f64 / 11.0,
            ));
        }
        let serial = DenseMatrix::within(&pts);
        for threads in [1, 2, 3, 4, 8, 100] {
            let par = DenseMatrix::within_parallel(&pts, threads);
            assert_eq!(par.len_a(), serial.len_a());
            for (s, p) in serial.raw().iter().zip(par.raw()) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
        let (a, b) = pts.split_at(25);
        let serial = DenseMatrix::between(a, b);
        for threads in [1, 2, 4, 8] {
            let par = DenseMatrix::between_parallel(a, b, threads);
            for (s, p) in serial.raw().iter().zip(par.raw()) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_builders_handle_degenerate_inputs() {
        let pts = pts(&[(0.0, 0.0), (1.0, 1.0)]);
        let m = DenseMatrix::within_parallel(&pts, 8);
        assert_eq!(m.get(0, 1), pts[0].distance(&pts[1]));
        let empty: Vec<EuclideanPoint> = Vec::new();
        assert_eq!(DenseMatrix::within_parallel(&empty, 4).raw().len(), 0);
        assert_eq!(
            DenseMatrix::between_parallel(&pts, &empty, 4).raw().len(),
            0
        );
    }

    #[test]
    fn from_raw_round_trips() {
        let m = DenseMatrix::from_raw(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.raw().len(), 6);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_rejects_bad_size() {
        let _ = DenseMatrix::from_raw(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn row_col_mins_full_region() {
        let m = DenseMatrix::from_raw(2, 3, vec![5.0, 2.0, 9.0, 1.0, 8.0, 3.0]);
        let mins = RowColMins::compute(&m, ValidRegion::Full);
        assert_eq!(mins.col_min(0), 2.0);
        assert_eq!(mins.col_min(1), 1.0);
        assert_eq!(mins.row_min(0), 1.0);
        assert_eq!(mins.row_min(1), 2.0);
        assert_eq!(mins.row_min(2), 3.0);
        assert_eq!(mins.col_min(99), f64::INFINITY);
        assert_eq!(mins.row_min(99), f64::INFINITY);
    }

    #[test]
    fn row_col_mins_upper_triangle_excludes_diagonal_and_below() {
        // 3x3 with small values on/below the diagonal that must be ignored.
        let m = DenseMatrix::from_raw(
            3,
            3,
            vec![
                0.0, 7.0, 5.0, //
                0.1, 0.0, 6.0, //
                0.1, 0.2, 0.0,
            ],
        );
        let mins = RowColMins::compute(&m, ValidRegion::UpperTriangle);
        assert_eq!(mins.col_min(0), 5.0); // min over b in {1,2}
        assert_eq!(mins.col_min(1), 6.0); // min over b in {2}
        assert_eq!(mins.col_min(2), f64::INFINITY); // no valid cell
        assert_eq!(mins.row_min(0), f64::INFINITY); // no valid cell
        assert_eq!(mins.row_min(1), 7.0);
        assert_eq!(mins.row_min(2), 5.0);
    }

    #[test]
    fn sliding_window_max_basic() {
        let v = [2.0, 1.0, 6.0, 1.0, 1.0, 5.0];
        assert_eq!(sliding_window_max(&v, 1), v.to_vec());
        assert_eq!(
            sliding_window_max(&v, 2),
            vec![2.0, 6.0, 6.0, 1.0, 5.0, 5.0]
        );
        assert_eq!(
            sliding_window_max(&v, 3),
            vec![6.0, 6.0, 6.0, 5.0, 5.0, 5.0]
        );
        assert_eq!(
            sliding_window_max(&v, 100),
            vec![6.0, 6.0, 6.0, 5.0, 5.0, 5.0]
        );
        assert!(sliding_window_max(&[], 3).is_empty());
    }

    #[test]
    fn sliding_window_max_matches_naive_on_random_data() {
        // Deterministic pseudo-random values (xorshift), no rand dependency
        // needed in this crate's tests.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut vals = Vec::with_capacity(200);
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            vals.push((x % 1000) as f64);
        }
        for win in [1usize, 2, 3, 7, 50, 200, 500] {
            let fast = sliding_window_max(&vals, win);
            for i in 0..vals.len() {
                let end = (i + win).min(vals.len());
                let naive = vals[i..end]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(fast[i], naive, "win={win} i={i}");
            }
        }
    }
}
