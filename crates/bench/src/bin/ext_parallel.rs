//! Regenerates the ext_parallel extension experiment.
use fremo_bench::experiments::{ext_parallel, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = ext_parallel::run(scale);
    print_all("ext_parallel", &tables);
}
