//! L7 — doc symbol drift.
//!
//! Absorbs the old `ci/check_doc_symbols.sh` gate: backtick-quoted
//! `Type::member` / `module::Item` references in `docs/*.md` must
//! resolve to identifiers that still exist somewhere under `crates/` or
//! `src/`, so prose cannot silently rot as code moves. The rule is the
//! same as the shell version's: every `::`-separated segment of the
//! token must appear as a whole word in at least one `.rs` file.
//! Plain-word tokens (`Engine`) and spans containing `()`/spaces are
//! deliberately not checked — too many false positives, no signal.

use crate::{Finding, LintId};
use std::collections::BTreeSet;

/// Extracts checkable symbol tokens from one line of markdown: backtick
/// spans that consist solely of identifier characters and `::`.
fn symbol_spans(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else {
            break;
        };
        let span = &after[..close];
        rest = &after[close + 1..];
        if is_symbol_path(span) {
            out.push(span.to_string());
        }
    }
    out
}

/// Mirrors the shell pattern
/// `[A-Za-z_][A-Za-z0-9_:]*::[A-Za-z_][A-Za-z0-9_]*`: identifier
/// segments joined by `::`, at least two of them.
fn is_symbol_path(span: &str) -> bool {
    if !span.contains("::") {
        return false;
    }
    let segments: Vec<&str> = span.split("::").collect();
    segments.len() >= 2
        && segments.iter().all(|seg| {
            let mut chars = seg.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
                }
                _ => false,
            }
        })
}

/// Splits Rust source into grep `-w`-style words and feeds them into
/// `words`.
pub fn collect_words(src: &str, words: &mut BTreeSet<String>) {
    for word in src.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if !word.is_empty() {
            words.insert(word.to_string());
        }
    }
}

/// Checks one markdown document against the known-word set.
pub fn lint_doc(path: &str, text: &str, words: &BTreeSet<String>) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for span in symbol_spans(line) {
            if let Some(missing) = span.split("::").find(|seg| !words.contains(*seg)) {
                out.push(Finding {
                    file: path.to_string(),
                    line: (idx + 1) as u32,
                    lint: LintId::L7,
                    message: format!(
                        "unknown symbol `{span}` (segment `{missing}` not found in any .rs file); update the doc or the code reference"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_only_path_like_spans() {
        let spans = symbol_spans(
            "see `Engine::execute` and `plain` and `with spaces::x` and `foo::bar()` too",
        );
        assert_eq!(spans, vec!["Engine::execute".to_string()]);
    }

    #[test]
    fn missing_segment_is_reported() {
        let mut words = BTreeSet::new();
        collect_words("impl Engine { fn execute() {} }", &mut words);
        let ok = lint_doc("docs/x.md", "`Engine::execute`", &words);
        assert!(ok.is_empty());
        let bad = lint_doc("docs/x.md", "`Engine::no_such_method`", &words);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("no_such_method"));
    }
}
