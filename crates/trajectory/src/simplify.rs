//! Trajectory simplification (Douglas–Peucker).
//!
//! GPS traces oversample straight stretches; Douglas–Peucker keeps only
//! the points needed to stay within `tolerance` of the original polyline.
//! Because DFD compares *shapes*, motifs on a simplified trace approximate
//! motifs on the raw trace while the `O(n⁴)`-ish search runs on a much
//! smaller `n` — a practical preprocessing step the paper's related work
//! (trajectory indexing \[4, 9\]) relies on heavily.

use crate::point::{EuclideanPoint, GeoPoint};
use crate::trajectory::Trajectory;

/// Perpendicular distance from `p` to the segment `a..b` for planar points.
fn seg_dist_euclidean(p: &EuclideanPoint, a: &EuclideanPoint, b: &EuclideanPoint) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return p.distance_sq(a).sqrt();
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    let proj = EuclideanPoint::new(a.x + t * dx, a.y + t * dy);
    proj.distance_sq(p).sqrt()
}

/// Perpendicular distance in metres from `p` to the segment `a..b`, via a
/// local equirectangular projection around `a` (accurate at GPS-segment
/// scales).
fn seg_dist_geo(p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> f64 {
    let scale_lon =
        crate::distance::EARTH_RADIUS_M * a.lat_rad().cos() * std::f64::consts::PI / 180.0;
    let scale_lat = crate::distance::EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
    let to_xy = |g: &GeoPoint| {
        EuclideanPoint::new((g.lon - a.lon) * scale_lon, (g.lat - a.lat) * scale_lat)
    };
    seg_dist_euclidean(&to_xy(p), &to_xy(a), &to_xy(b))
}

/// Indices kept by Douglas–Peucker with the given point-to-segment
/// distance; always includes the first and last index.
pub fn simplify_indices<P>(
    points: &[P],
    tolerance: f64,
    seg_dist: impl Fn(&P, &P, &P) -> f64 + Copy,
) -> Vec<usize> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    // Explicit stack instead of recursion (traces can be long).
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let mut worst = 0.0_f64;
        let mut worst_idx = lo + 1;
        for (idx, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = seg_dist(p, &points[lo], &points[hi]);
            if d > worst {
                worst = d;
                worst_idx = idx;
            }
        }
        if worst > tolerance {
            keep[worst_idx] = true;
            stack.push((lo, worst_idx));
            stack.push((worst_idx, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// Simplifies a planar trajectory to within `tolerance` (coordinate
/// units). Timestamps of kept points are preserved.
#[must_use]
pub fn simplify_euclidean(
    t: &Trajectory<EuclideanPoint>,
    tolerance: f64,
) -> Trajectory<EuclideanPoint> {
    let kept = simplify_indices(t.points(), tolerance, seg_dist_euclidean);
    take_indices(t, &kept)
}

/// Simplifies a geographic trajectory to within `tolerance` metres.
/// Timestamps of kept points are preserved.
#[must_use]
pub fn simplify_geo(t: &Trajectory<GeoPoint>, tolerance_m: f64) -> Trajectory<GeoPoint> {
    let kept = simplify_indices(t.points(), tolerance_m, seg_dist_geo);
    take_indices(t, &kept)
}

fn take_indices<P: Clone>(t: &Trajectory<P>, kept: &[usize]) -> Trajectory<P> {
    let points: Vec<P> = kept.iter().map(|&i| t[i].clone()).collect();
    match t.timestamps() {
        Some(ts) => {
            let stamps: Vec<f64> = kept.iter().map(|&i| ts[i]).collect();
            Trajectory::with_timestamps(points, stamps)
                .expect("subsequence of ascending timestamps is ascending")
        }
        None => Trajectory::new(points),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::ops::Index;

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t = gen::planar::line((0.0, 0.0), (100.0, 0.0), 50);
        let s = simplify_euclidean(&t, 0.01);
        assert_eq!(s.len(), 2);
        assert_eq!(*s.index(0), EuclideanPoint::new(0.0, 0.0));
        assert_eq!(*s.index(1), EuclideanPoint::new(100.0, 0.0));
    }

    #[test]
    fn corner_is_preserved() {
        let t: Trajectory<EuclideanPoint> = vec![
            EuclideanPoint::new(0.0, 0.0),
            EuclideanPoint::new(5.0, 0.1),
            EuclideanPoint::new(10.0, 0.0),
            EuclideanPoint::new(10.1, 5.0),
            EuclideanPoint::new(10.0, 10.0),
        ]
        .into_iter()
        .collect();
        let s = simplify_euclidean(&t, 0.5);
        // The corner at (10, 0) must survive.
        assert!(s
            .points()
            .iter()
            .any(|p| p.distance_sq(&EuclideanPoint::new(10.0, 0.0)) < 1e-9));
        assert!(s.len() >= 3);
    }

    #[test]
    fn simplified_trace_stays_within_tolerance() {
        let t = gen::planar::random_walk(300, 0.3, 8);
        let tol = 2.0;
        let s = simplify_euclidean(&t, tol);
        assert!(s.len() < t.len());
        // Every original point is within tol of the simplified polyline.
        for p in t.points() {
            let mut best = f64::INFINITY;
            for w in s.points().windows(2) {
                best = best.min(seg_dist_euclidean(p, &w[0], &w[1]));
            }
            assert!(best <= tol + 1e-9, "point strayed {best}");
        }
    }

    #[test]
    fn geo_simplification_shrinks_gps_noise() {
        let t = gen::geolife_like(500, 4);
        let s = simplify_geo(&t, 15.0);
        assert!(s.len() < t.len(), "{} -> {}", t.len(), s.len());
        assert!(s.len() >= 2);
        // Timestamps carried over and still ascending.
        let ts = s.timestamps().unwrap();
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Trajectory<EuclideanPoint> = Trajectory::new(vec![]);
        assert_eq!(simplify_euclidean(&empty, 1.0).len(), 0);
        let single: Trajectory<EuclideanPoint> =
            vec![EuclideanPoint::new(0.0, 0.0)].into_iter().collect();
        assert_eq!(simplify_euclidean(&single, 1.0).len(), 1);
        // Zero-length segment (duplicate endpoints).
        let dup: Trajectory<EuclideanPoint> = vec![
            EuclideanPoint::new(0.0, 0.0),
            EuclideanPoint::new(1.0, 1.0),
            EuclideanPoint::new(0.0, 0.0),
        ]
        .into_iter()
        .collect();
        let s = simplify_euclidean(&dup, 0.1);
        assert!(s.len() >= 2);
    }
}
