//! End-to-end CLI flows through the `fremo_cli` library: generate →
//! inspect → discover → compare, against real temp files.

use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fremo-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_then_discover() {
    let file = temp_path("walk.csv");
    let file_str = file.to_str().unwrap();

    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "geolife",
        "--n",
        "150",
        "--seed",
        "7",
        "--out",
        file_str,
    ]))
    .expect("generate");
    assert!(file.exists());

    fremo_cli::run(&argv(&["inspect", "--input", file_str])).expect("inspect");
    fremo_cli::run(&argv(&["discover", "--input", file_str, "--xi", "10"])).expect("discover");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        file_str,
        "--xi",
        "10",
        "--threads",
        "2",
    ]))
    .expect("parallel discover");
    assert!(
        fremo_cli::run(&argv(&[
            "discover",
            "--input",
            file_str,
            "--xi",
            "10",
            "--threads",
            "two",
        ]))
        .unwrap_err()
        .contains("--threads"),
        "bad --threads value must be reported"
    );
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        file_str,
        "--xi",
        "10",
        "--algorithm",
        "btm",
        "--json",
    ]))
    .expect("discover json");
    fremo_cli::run(&argv(&[
        "discover", "--input", file_str, "--xi", "10", "--k", "2",
    ]))
    .expect("top-k");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        file_str,
        "--xi",
        "10",
        "--epsilon",
        "0.5",
    ]))
    .expect("approximate");

    std::fs::remove_file(&file).ok();
}

#[test]
fn discover_pair_and_compare() {
    let fa = temp_path("a.csv");
    let fb = temp_path("b.csv");
    let (sa, sb) = (fa.to_str().unwrap(), fb.to_str().unwrap());
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "truck",
        "--n",
        "120",
        "--seed",
        "1",
        "--out",
        sa,
    ]))
    .unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "truck",
        "--n",
        "100",
        "--seed",
        "2",
        "--out",
        sb,
    ]))
    .unwrap();

    fremo_cli::run(&argv(&["discover-pair", "--a", sa, "--b", sb, "--xi", "8"])).expect("pair");
    fremo_cli::run(&argv(&["compare", "--a", sa, "--b", sb, "--epsilon", "50"])).expect("compare");

    std::fs::remove_file(&fa).ok();
    std::fs::remove_file(&fb).ok();
}

#[test]
fn error_paths_are_reported() {
    assert!(fremo_cli::run(&argv(&[])).is_err());
    assert!(fremo_cli::run(&argv(&["frobnicate"]))
        .unwrap_err()
        .contains("unknown subcommand"));
    assert!(fremo_cli::run(&argv(&["generate", "--dataset", "mars", "--n", "10"])).is_err());
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        "/nonexistent.csv",
        "--xi",
        "5"
    ]))
    .unwrap_err()
    .contains("cannot read"));
    let file = temp_path("short.csv");
    let s = file.to_str().unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "baboon",
        "--n",
        "20",
        "--seed",
        "1",
        "--out",
        s,
    ]))
    .unwrap();
    // ξ = 0 is rejected before any search.
    assert!(fremo_cli::run(&argv(&["discover", "--input", s, "--xi", "0"])).is_err());
    assert!(fremo_cli::run(&argv(&["experiment", "nope"])).is_err());
    assert!(fremo_cli::run(&argv(&["experiment"])).is_err());
    std::fs::remove_file(&file).ok();
}

#[test]
fn help_succeeds() {
    assert!(fremo_cli::run(&argv(&["help"])).is_ok());
    assert!(fremo_cli::run(&argv(&["--help"])).is_ok());
}

#[test]
fn unknown_algorithm_error_lists_valid_names() {
    let file = temp_path("alg.csv");
    let s = file.to_str().unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "geolife",
        "--n",
        "80",
        "--seed",
        "3",
        "--out",
        s,
    ]))
    .unwrap();
    let err = fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--algorithm",
        "quantum",
    ]))
    .unwrap_err();
    for name in ["auto", "brute", "btm", "gtm", "gtm-star", "approx:<eps>"] {
        assert!(err.contains(name), "error {err:?} does not list {name}");
    }
    // Negative / non-finite --epsilon is rejected, not silently ignored.
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--epsilon",
        "-0.5",
    ]))
    .unwrap_err()
    .contains("--epsilon"));
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--epsilon",
        "nan",
    ]))
    .is_err());
    // --epsilon conflicts with an explicit --algorithm (even a valid one),
    // and a bogus name still gets the valid-names error.
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--algorithm",
        "btm",
        "--epsilon",
        "0.5",
    ]))
    .unwrap_err()
    .contains("approx:"));
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--algorithm",
        "quantum",
        "--epsilon",
        "0.5",
    ]))
    .unwrap_err()
    .contains("valid: auto"));
    // `auto` and the explicit approx syntax are accepted.
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--algorithm",
        "auto",
    ]))
    .expect("auto algorithm");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--algorithm",
        "approx:0.5",
    ]))
    .expect("approx algorithm");
    std::fs::remove_file(&file).ok();
}

#[test]
fn budget_flags_are_accepted() {
    let file = temp_path("budget.csv");
    let s = file.to_str().unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "truck",
        "--n",
        "90",
        "--seed",
        "4",
        "--out",
        s,
    ]))
    .unwrap();
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--budget-subsets",
        "3",
        "--json",
    ]))
    .expect("budgeted discover");
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--budget-seconds",
        "-1",
    ]))
    .is_err());
    // A cap beyond any representable deadline must not panic — it simply
    // never fires.
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "5",
        "--budget-seconds",
        "1e20",
    ]))
    .expect("oversized budget is harmless");
    std::fs::remove_file(&file).ok();
}

#[test]
fn cache_flags_are_applied_and_validated() {
    let file = temp_path("cache.csv");
    let s = file.to_str().unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "geolife",
        "--n",
        "120",
        "--seed",
        "9",
        "--out",
        s,
    ]))
    .unwrap();

    // A tiny limit forces eviction mid-session but must not change results.
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "8",
        "--cache-limit",
        "16k",
    ]))
    .expect("discover under a cache limit");

    // Suffix-free and spill-dir forms.
    let spill = temp_path("spill-root");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "8",
        "--cache-limit",
        "16384",
        "--spill-dir",
        spill.to_str().unwrap(),
    ]))
    .expect("discover with spill dir");

    // Bad sizes and a spill dir without a limit are rejected up front.
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "8",
        "--cache-limit",
        "12q",
    ]))
    .unwrap_err()
    .contains("byte size"));
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        s,
        "--xi",
        "8",
        "--spill-dir",
        spill.to_str().unwrap(),
    ]))
    .unwrap_err()
    .contains("--cache-limit"));

    std::fs::remove_file(&file).ok();
    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn json_schema_is_stable_across_commands() {
    use fremo_cli::commands::outcome_to_json;
    use fremo_core::engine::{Engine, Query};
    use fremo_trajectory::gen::Dataset;

    let engine = Engine::new();
    let a = engine.register(Dataset::GeoLife.generate(120, 1));
    let b = engine.register(Dataset::GeoLife.generate(100, 2));

    let outcomes = [
        (
            "motif",
            engine.execute(&Query::motif(a).xi(8).build()).unwrap(),
        ),
        (
            "topk",
            engine.execute(&Query::top_k(a, 2).xi(8).build()).unwrap(),
        ),
        (
            "motif-pair",
            engine
                .execute(&Query::motif_between(a, b).xi(8).build())
                .unwrap(),
        ),
        (
            "compare",
            engine
                .execute(&Query::measures(a, b, 25.0).build())
                .unwrap(),
        ),
    ];
    for (label, outcome) in &outcomes {
        let json = outcome_to_json(label, outcome);
        // One schema: every command carries the same top-level keys.
        assert_eq!(json["query"], *label);
        assert!(json["algorithm"].is_string(), "{label}: algorithm missing");
        assert!(json["motifs"].is_array(), "{label}: motifs missing");
        assert!(
            json["stats"]["seconds"].is_number(),
            "{label}: stats.seconds missing"
        );
        assert!(
            json["stats"]["subsets_total"].is_number(),
            "{label}: stats.subsets_total missing"
        );
        assert!(
            json["wall_seconds"].is_number(),
            "{label}: wall_seconds missing"
        );
        assert!(json["truncated"].is_boolean(), "{label}: truncated missing");
    }
    // Motif-bearing commands fill motifs; compare fills measures.
    assert_eq!(
        outcome_to_json("motif", &outcomes[0].1)["motifs"]
            .as_array()
            .unwrap()
            .len(),
        1
    );
    assert!(outcome_to_json("compare", &outcomes[3].1)["measures"]["dfd"].is_number());
}
