//! Degradation models for robustness testing.
//!
//! Real GPS data suffers exactly the defects the paper motivates DFD with:
//! missing samples and measurement error (Section 2). These utilities
//! apply controlled doses of both to any trajectory so the test suites can
//! assert that (a) the algorithms stay exact on degraded data and (b) the
//! discovered motif degrades gracefully with the noise level.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{randn, step_m};
use crate::point::GeoPoint;
use crate::trajectory::Trajectory;

/// Adds isotropic Gaussian position noise of `sigma_m` metres to every
/// point (altitude untouched).
#[must_use]
pub fn with_gps_noise(t: &Trajectory<GeoPoint>, sigma_m: f64, seed: u64) -> Trajectory<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E4F49); // "NOI"
    let points: Vec<GeoPoint> = t
        .points()
        .iter()
        .map(|p| {
            let (lat, lon) = step_m(
                p.lat,
                p.lon,
                randn(&mut rng) * sigma_m,
                randn(&mut rng) * sigma_m,
            );
            GeoPoint::new_unchecked(lat, lon).with_alt(p.alt)
        })
        .collect();
    match t.timestamps() {
        Some(ts) => Trajectory::with_timestamps(points, ts.to_vec())
            .expect("timestamps unchanged, still ascending"),
        None => Trajectory::new(points),
    }
}

/// Replaces a fraction `rate` of points with gross outliers displaced by
/// `offset_m` metres in a random direction (cheap receivers produce such
/// glitches; they stress the `max`-based DFD far more than sum-based
/// measures).
#[must_use]
pub fn with_outliers(
    t: &Trajectory<GeoPoint>,
    rate: f64,
    offset_m: f64,
    seed: u64,
) -> Trajectory<GeoPoint> {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4F5554); // "OUT"
    let points: Vec<GeoPoint> = t
        .points()
        .iter()
        .map(|p| {
            if rng.gen_bool(rate) {
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let (lat, lon) =
                    step_m(p.lat, p.lon, offset_m * angle.cos(), offset_m * angle.sin());
                GeoPoint::new_unchecked(lat, lon).with_alt(p.alt)
            } else {
                *p
            }
        })
        .collect();
    match t.timestamps() {
        Some(ts) => Trajectory::with_timestamps(points, ts.to_vec())
            .expect("timestamps unchanged, still ascending"),
        None => Trajectory::new(points),
    }
}

/// Drops each point independently with probability `rate` (keeping the
/// first and last so the trace still spans its extent) — the "missing
/// samples at some time points" defect of Section 1.
#[must_use]
pub fn with_dropped_samples(
    t: &Trajectory<GeoPoint>,
    rate: f64,
    seed: u64,
) -> Trajectory<GeoPoint> {
    assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x44524F); // "DRO"
    let n = t.len();
    let keep: Vec<usize> = (0..n)
        .filter(|&i| i == 0 || i == n.saturating_sub(1) || !rng.gen_bool(rate))
        .collect();
    let points: Vec<GeoPoint> = keep.iter().map(|&i| t[i]).collect();
    match t.timestamps() {
        Some(ts) => {
            let stamps: Vec<f64> = keep.iter().map(|&i| ts[i]).collect();
            Trajectory::with_timestamps(points, stamps)
                .expect("subsequence of ascending timestamps")
        }
        None => Trajectory::new(points),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::geolife_like;
    use crate::point::GroundDistance;

    #[test]
    fn gps_noise_displaces_by_roughly_sigma() {
        let t = geolife_like(500, 1);
        let noisy = with_gps_noise(&t, 10.0, 2);
        assert_eq!(noisy.len(), t.len());
        let mean: f64 = t
            .points()
            .iter()
            .zip(noisy.points())
            .map(|(a, b)| a.distance(b))
            .sum::<f64>()
            / t.len() as f64;
        // Rayleigh mean for sigma=10 is ~12.5 m.
        assert!((8.0..20.0).contains(&mean), "mean displacement {mean}");
        assert_eq!(noisy.timestamps().unwrap(), t.timestamps().unwrap());
    }

    #[test]
    fn outliers_affect_only_the_requested_fraction() {
        let t = geolife_like(1000, 3);
        let noisy = with_outliers(&t, 0.05, 500.0, 4);
        let displaced = t
            .points()
            .iter()
            .zip(noisy.points())
            .filter(|(a, b)| a.distance(b) > 100.0)
            .count();
        let frac = displaced as f64 / t.len() as f64;
        assert!((0.02..0.10).contains(&frac), "outlier fraction {frac}");
    }

    #[test]
    fn dropping_keeps_endpoints_and_order() {
        let t = geolife_like(800, 5);
        let dropped = with_dropped_samples(&t, 0.3, 6);
        assert!(dropped.len() < t.len());
        assert!(dropped.len() > t.len() / 2);
        assert_eq!(dropped[0], t[0]);
        assert_eq!(dropped[dropped.len() - 1], t[t.len() - 1]);
        let ts = dropped.timestamps().unwrap();
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn zero_rates_are_identity() {
        let t = geolife_like(200, 7);
        assert_eq!(with_outliers(&t, 0.0, 500.0, 1).points(), t.points());
        assert_eq!(with_dropped_samples(&t, 0.0, 1).points(), t.points());
    }
}
