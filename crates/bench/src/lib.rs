//! # fremo-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6). Each `src/bin/figNN_*` binary regenerates one
//! figure: it builds the workload, sweeps the paper's parameter, and prints
//! the same rows/series the paper plots. `EXPERIMENTS.md` at the workspace
//! root records paper-vs-measured values.
//!
//! Scaling: set `FREMO_SCALE=smoke|default|full` (default `default`) to
//! pick sweep sizes. `full` uses the paper's sizes (n up to 10,000), which
//! needs several GB of RAM and hours for the baselines — exactly as in the
//! paper, where BruteDP was cut off at 2 hours.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod runner;
pub mod scale;
pub mod table;
pub mod workload;

pub use runner::{run_algorithm, Algorithm, LatencyPercentiles, Measurement};
pub use scale::Scale;
pub use table::Table;
