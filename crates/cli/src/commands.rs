//! Subcommand implementations.
//!
//! Every analysis subcommand (`discover`, `discover-pair`, `compare`)
//! routes through one [`Engine`] session, so the CLI exercises exactly
//! the facade that library users and future server frontends see, and
//! `--json` emits one stable schema across commands (see
//! [`outcome_to_json`]).

use std::io::Write as _;
use std::path::Path;

use fremo_bench::experiments::{self, print_all};
use fremo_bench::Scale;
use fremo_core::engine::{
    AlgorithmChoice, Engine, ExecutionMode, Query, QueryBudget, QueryBuilder, QueryOutcome,
};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::io::{read_csv, read_plt, write_csv};
use fremo_trajectory::{GeoPoint, Trajectory, TrajectoryStats};

use crate::args::Parsed;

pub(crate) fn load(path_str: &str) -> Result<Trajectory<GeoPoint>, String> {
    let path = Path::new(path_str);
    let result = if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("plt"))
    {
        read_plt(path)
    } else {
        read_csv(path)
    };
    result.map_err(|e| format!("cannot read {path_str}: {e}"))
}

/// Parses a byte size: a plain integer, optionally suffixed `k`, `m`,
/// or `g` (case-insensitive, powers of 1024). `"64m"` → 67 108 864.
pub(crate) fn parse_bytes(raw: &str) -> Result<usize, String> {
    let raw = raw.trim();
    let (digits, shift) = match raw.chars().last() {
        Some('k' | 'K') => (&raw[..raw.len() - 1], 10u32),
        Some('m' | 'M') => (&raw[..raw.len() - 1], 20),
        Some('g' | 'G') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let base: usize = digits
        .parse()
        .map_err(|_| format!("invalid byte size {raw:?} (use e.g. 262144, 256k, 64m, 1g)"))?;
    base.checked_shl(shift)
        .filter(|scaled| base == 0 || *scaled >> shift == base)
        .ok_or_else(|| format!("byte size {raw:?} overflows"))
}

/// Builds the session [`Engine`] shared by the analysis subcommands,
/// applying the cache knobs:
///
/// * `--cache-limit <bytes>` caps resident cache memory with per-entry
///   LRU eviction (suffixes `k`/`m`/`g` accepted, e.g. `--cache-limit 64m`);
/// * `--spill-dir <dir>` writes evicted distance matrices to disk and
///   rehydrates them bit-identically instead of rebuilding
///   (see `docs/CACHING.md`).
pub(crate) fn session_engine(args: &Parsed) -> Result<Engine<GeoPoint>, String> {
    let engine = Engine::new();
    if let Some(raw) = args.optional("cache-limit") {
        engine.set_cache_limit(Some(parse_bytes(raw)?));
    }
    if let Some(dir) = args.optional("spill-dir") {
        if args.optional("cache-limit").is_none() {
            return Err(
                "--spill-dir has no effect without --cache-limit (nothing is ever evicted)".into(),
            );
        }
        engine
            .set_spill_dir(Some(Path::new(dir)))
            .map_err(|e| format!("--spill-dir {dir:?}: {e}"))?;
    }
    Ok(engine)
}

/// Parses `--algorithm`; the error lists every valid name.
fn algorithm(args: &Parsed) -> Result<AlgorithmChoice, String> {
    match args.optional("algorithm") {
        None => Ok(AlgorithmChoice::Auto),
        Some(name) => name.parse::<AlgorithmChoice>().map_err(|e| e.to_string()),
    }
}

/// Applies the shared tuning flags (`--tau`, `--threads`,
/// `--budget-seconds`, `--budget-subsets`) to a query builder.
///
/// `--threads <n>` selects parallel execution with `n` workers (`0` =
/// all cores, or `FREMO_THREADS` when set); without the flag the engine's
/// `Auto` mode decides from the input size.
fn tuned(mut builder: QueryBuilder, args: &Parsed) -> Result<QueryBuilder, String> {
    let tau: usize = args.parsed_or("tau", 32)?;
    builder = builder.group_size(tau.max(1));
    if let Some(raw) = args.optional("threads") {
        let threads: usize = raw
            .parse()
            .map_err(|e| format!("invalid value for --threads: {e}"))?;
        builder = builder.execution(ExecutionMode::Parallel { threads });
    }
    let mut budget = QueryBudget::default();
    if let Some(secs) = args.optional("budget-seconds") {
        let secs: f64 = secs
            .parse()
            .map_err(|e| format!("invalid value for --budget-seconds: {e}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err("--budget-seconds must be finite and ≥ 0".into());
        }
        budget = budget.with_max_seconds(secs);
    }
    if let Some(subsets) = args.optional("budget-subsets") {
        let subsets: u64 = subsets
            .parse()
            .map_err(|e| format!("invalid value for --budget-subsets: {e}"))?;
        budget = budget.with_max_subsets(subsets);
    }
    if !budget.is_unlimited() {
        builder = builder.budget(budget);
    }
    Ok(builder)
}

/// `fremo generate --dataset <d> --n <len> [--seed <u64>] [--out <file>]`
pub fn generate(args: &Parsed) -> Result<(), String> {
    let dataset: Dataset = args.required("dataset")?.parse()?;
    let n: usize = args.required_parsed("n")?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let t = dataset.generate(n, seed);

    match args.optional("out") {
        Some(path) => {
            let mut file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            let mut buf = std::io::BufWriter::new(&mut file);
            write_csv(&mut buf, &t).map_err(|e| e.to_string())?;
            buf.flush().map_err(|e| e.to_string())?;
            eprintln!("wrote {n} points ({dataset}) to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            write_csv(&mut stdout, &t).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `fremo inspect --input <csv>`
pub fn inspect(args: &Parsed) -> Result<(), String> {
    let t = load(args.required("input")?)?;
    let stats = TrajectoryStats::compute(&t);
    println!("{stats}");
    Ok(())
}

/// The one stable JSON schema every engine-backed subcommand (and the
/// `serve` protocol) emits:
///
/// ```json
/// {
///   "query": "<motif|topk|motif-pair|compare|join|cluster>",
///   "algorithm": "<resolved algorithm name>",
///   "motifs": [ { "first": {"start", "end"}, "second": {...}, "dfd" } ],
///   "measures": { ... } | null,
///   "join": { "pairs": [[a,b], ...], "pruned_endpoints",
///             "pruned_hausdorff", "verified" } | null,
///   "clusters": [ { "representative": {"start", "end"},
///                   "members": [ {"start", "end"}, ... ] } ] | null,
///   "stats": { "seconds", "peak_bytes", "pruned_fraction",
///              "subsets_total", "subsets_expanded", "kernel" },
///   "wall_seconds": <engine wall time>,
///   "truncated": <budget hit>
/// }
/// ```
///
/// Top-k caveat: `subsets_expanded` aggregates work across the `k`
/// masked rounds while `subsets_total` counts one round's search space,
/// so for `"query": "topk"` the ratio of the two can exceed 1.
#[must_use]
pub fn outcome_to_json(label: &str, outcome: &QueryOutcome) -> serde_json::Value {
    let motifs: Vec<serde_json::Value> = outcome
        .motifs()
        .iter()
        .map(|m| {
            serde_json::json!({
                "first": { "start": m.first.0, "end": m.first.1 },
                "second": { "start": m.second.0, "end": m.second.1 },
                "dfd": m.distance,
            })
        })
        .collect();
    let measures = outcome.measures().map(|p| {
        serde_json::json!({
            "euclidean": p.euclidean,
            "dtw": p.dtw,
            "lcss": p.lcss,
            "edr": p.edr,
            "dfd": p.dfd,
            "hausdorff": p.hausdorff,
            "epsilon": p.epsilon,
        })
    });
    let span = |(start, end): (usize, usize)| serde_json::json!({ "start": start, "end": end });
    let join = outcome.join().map(|j| {
        serde_json::json!({
            "pairs": j.pairs
                .iter()
                .map(|&(a, b)| serde_json::json!([a, b]))
                .collect::<Vec<_>>(),
            "pruned_endpoints": j.pruned_endpoints,
            "pruned_hausdorff": j.pruned_hausdorff,
            "verified": j.verified,
        })
    });
    let clusters = outcome.clusters().map(|cs| {
        cs.iter()
            .map(|c| {
                serde_json::json!({
                    "representative": span(c.representative),
                    "members": c.members.iter().map(|&m| span(m)).collect::<Vec<_>>(),
                })
            })
            .collect::<Vec<_>>()
    });
    serde_json::json!({
        "query": label,
        "algorithm": outcome.algorithm,
        "motifs": motifs,
        "measures": measures,
        "join": join,
        "clusters": clusters,
        "stats": {
            "seconds": outcome.stats.total_seconds,
            "peak_bytes": outcome.stats.peak_bytes(),
            "pruned_fraction": outcome.stats.pruned_fraction(),
            "subsets_total": outcome.stats.subsets_total,
            "subsets_expanded": outcome.stats.subsets_expanded,
            "kernel": outcome.stats.kernel,
        },
        "wall_seconds": outcome.wall_seconds,
        "truncated": outcome.truncated,
    })
}

fn print_outcome(label: &str, outcome: &QueryOutcome, json: bool) -> Result<(), String> {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome_to_json(label, outcome))
                .map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let motifs = outcome.motifs();
    if motifs.is_empty() {
        if outcome.truncated {
            println!("no motif found within the budget (search truncated; raise --budget-seconds/--budget-subsets)");
        } else {
            println!("no valid motif (trajectory too short for the requested ξ)");
        }
        return Ok(());
    }
    if motifs.len() == 1 {
        println!("motif: {}", motifs[0]);
    } else {
        for (rank, m) in motifs.iter().enumerate() {
            println!("#{:<2} {m}", rank + 1);
        }
    }
    let stats = &outcome.stats;
    // Top-k runs k masked rounds over the same search space, so its
    // expansion counter is work done, not a fraction of subsets_total.
    let expansions = if matches!(outcome.results, fremo_core::engine::QueryResults::TopK(_)) {
        format!("{} subset expansions across rounds", stats.subsets_expanded)
    } else {
        format!(
            "{} of {} subsets expanded",
            stats.subsets_expanded, stats.subsets_total
        )
    };
    println!(
        "stats: [{}] {:.3}s, {:.1} MB peak, {:.1}% of candidate pairs pruned ({expansions}){}",
        outcome.algorithm,
        stats.total_seconds,
        stats.peak_bytes() as f64 / (1024.0 * 1024.0),
        stats.pruned_fraction() * 100.0,
        if outcome.truncated {
            " — budget hit, result is best-effort"
        } else {
            ""
        },
    );
    Ok(())
}

/// `fremo discover --input <csv> --xi <len> [--algorithm <a>] [--tau <t>]
/// [--threads <n>] [--k <count>] [--epsilon <eps>] [--budget-seconds <s>]
/// [--budget-subsets <n>] [--cache-limit <bytes>] [--spill-dir <dir>] [--json]`
///
/// `--k > 1` switches to diverse top-k discovery (BTM machinery only:
/// combining it with `--epsilon` or a non-BTM `--algorithm` is an error);
/// `--epsilon > 0` runs the (1+ε)-approximate search and conflicts with
/// an explicit `--algorithm` (spell it `--algorithm approx:<eps>` instead).
pub fn discover(args: &Parsed) -> Result<(), String> {
    let t = load(args.required("input")?)?;
    let xi: usize = args.required_parsed("xi")?;
    if xi == 0 {
        return Err("--xi must be at least 1".into());
    }

    let engine = session_engine(args)?;
    let id = engine.register(t);

    let k: usize = args.parsed_or("k", 1)?;
    let epsilon: f64 = args.parsed_or("epsilon", 0.0)?;
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err("--epsilon must be finite and ≥ 0".into());
    }
    if k > 1 && epsilon > 0.0 {
        return Err(
            "--k cannot be combined with --epsilon: diverse top-k runs the exact BTM \
             machinery (drop one flag)"
                .into(),
        );
    }
    // Always validate --algorithm (a bogus name must error even when
    // --epsilon would override it).
    let choice = algorithm(args)?;
    let choice = if epsilon > 0.0 {
        if args.optional("algorithm").is_some() {
            return Err(format!(
                "--epsilon {epsilon} selects the (1+ε)-approximate search and cannot be \
                 combined with an explicit --algorithm (use --algorithm approx:{epsilon} \
                 or drop one flag)"
            ));
        }
        AlgorithmChoice::Approx { epsilon }
    } else {
        choice
    };

    let (label, builder) = if k > 1 {
        ("topk", Query::top_k(id, k))
    } else {
        ("motif", Query::motif(id))
    };
    let query = tuned(builder, args)?.xi(xi).algorithm(choice).build();
    let outcome = engine.execute(&query).map_err(|e| e.to_string())?;
    print_outcome(label, &outcome, args.switch("json"))
}

/// `fremo discover-pair --a <csv> --b <csv> --xi <len> [...]`
pub fn discover_pair(args: &Parsed) -> Result<(), String> {
    let a = load(args.required("a")?)?;
    let b = load(args.required("b")?)?;
    let xi: usize = args.required_parsed("xi")?;
    if xi == 0 {
        return Err("--xi must be at least 1".into());
    }

    let engine = session_engine(args)?;
    let ida = engine.register(a);
    let idb = engine.register(b);
    let query = tuned(Query::motif_between(ida, idb), args)?
        .xi(xi)
        .algorithm(algorithm(args)?)
        .build();
    let outcome = engine.execute(&query).map_err(|e| e.to_string())?;
    print_outcome("motif-pair", &outcome, args.switch("json"))
}

/// `fremo compare --a <csv> --b <csv> [--epsilon <m>] [--json]`
pub fn compare(args: &Parsed) -> Result<(), String> {
    let a = load(args.required("a")?)?;
    let b = load(args.required("b")?)?;
    let eps: f64 = args.parsed_or("epsilon", 25.0)?;

    let engine = session_engine(args)?;
    let ida = engine.register(a);
    let idb = engine.register(b);
    let outcome = engine
        .execute(&Query::measures(ida, idb, eps).build())
        .map_err(|e| e.to_string())?;
    if args.switch("json") {
        return print_outcome("compare", &outcome, true);
    }
    let p = outcome.measures().expect("measures query yields a profile");
    println!("ED        = {:.3}", p.euclidean);
    println!("DTW       = {:.3}", p.dtw);
    println!("LCSS(eps) = {:.3}", p.lcss);
    println!("EDR(eps)  = {}", p.edr);
    println!("DFD       = {:.3}", p.dfd);
    println!("Hausdorff = {:.3}", p.hausdorff);
    Ok(())
}

/// `fremo experiment <name>`
pub fn experiment(argv: &[String]) -> Result<(), String> {
    let Some(name) = argv.first() else {
        return Err("missing experiment name (table1, fig02, fig03, fig13..fig21, ext-approx, ext-topk, ext-join, ext-parallel)".into());
    };
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = match name.as_str() {
        "table1" => experiments::table1_measures::run(scale),
        "fig02" => experiments::fig02_ed_vs_dfd::run(scale),
        "fig03" => experiments::fig03_dtw_vs_dfd::run(scale),
        "fig13" => experiments::fig13_tight_vs_relaxed::run(scale),
        "fig14" => experiments::fig14_tight_vs_relaxed_xi::run(scale),
        "fig15" => experiments::fig15_pruning_breakdown::run(scale),
        "fig16" => experiments::fig16_bound_combos::run(scale),
        "fig17" => experiments::fig17_group_size::run(scale),
        "fig18" => experiments::fig18_time_vs_n::run(scale),
        "fig19" => experiments::fig19_space::run(scale),
        "fig20" => experiments::fig20_time_vs_xi::run(scale),
        "fig21" => experiments::fig21_cross_trajectory::run(scale),
        "ext-approx" => experiments::ext_approx::run(scale),
        "ext-topk" => experiments::ext_topk::run(scale),
        "ext-join" => experiments::ext_join::run(scale),
        "ext-parallel" => experiments::ext_parallel::run(scale),
        other => return Err(format!("unknown experiment {other:?}")),
    };
    print_all(name, &tables);
    Ok(())
}

/// `fremo batch (--corpus <csv[,csv...]> | --dataset <name> --n <len>
/// [--count <k>] [--seed <u64>]) [--input <jsonl|->]
/// [--cache-limit <bytes>] [--spill-dir <dir>]`
///
/// Reads line-delimited query JSON (the `fremo serve` request schema,
/// one object per line; see `docs/SERVING.md`) from `--input` (default
/// `-`, stdin) and executes the whole set through
/// [`Engine::execute_batch`], so queries that share a trajectory, scope,
/// and ξ build their cached state once and compatible serial scans fuse
/// into one pass — with answers bit-identical to running each query
/// alone (see `docs/BATCHING.md`).
///
/// Output: one response line per input line, in input order, in the
/// [`outcome_to_json`] schema with `"ok"` and any echoed `"seq"`
/// prepended — exactly what `serve` would answer — followed by one
/// trailing `{"batch":{...}}` line with the [`BatchStats`] counters
/// (`groups`, `builds_shared`, `scans_fused`, `queries_deduped`).
///
/// [`Engine::execute_batch`]: fremo_core::engine::Engine::execute_batch
/// [`BatchStats`]: fremo_core::engine::BatchStats
pub fn batch(args: &Parsed) -> Result<(), String> {
    use crate::serve::{build_corpus, error_line, finish_line, QueryLimits};

    let engine = session_engine(args)?;
    let ids = build_corpus(args, &engine)?;
    let input = args.optional("input").unwrap_or("-");
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?
    };

    // Translate every line up front so the whole set goes through one
    // `execute_batch` call; lines that fail to parse keep their slot and
    // answer with an error line, exactly as `serve` would.
    enum Slot {
        Failed(String),
        Query {
            seq: Option<u64>,
            label: &'static str,
        },
    }
    let limits = QueryLimits::none();
    let mut slots = Vec::new();
    let mut queries = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let request: serde_json::Value = match serde_json::from_str(line.trim()) {
            Ok(v) => v,
            Err(e) => {
                slots.push(Slot::Failed(error_line(None, &format!("bad JSON: {e}"))));
                continue;
            }
        };
        let seq = request.get("seq").and_then(serde_json::Value::as_u64);
        let op = request.get("op").and_then(serde_json::Value::as_str);
        let built = match op {
            None => Err("missing string field \"op\"".to_string()),
            Some(op @ ("stats" | "shutdown")) => Err(format!(
                "op {op:?} is a server request; not valid in a batch file"
            )),
            Some(op) => crate::serve::build_query(op, &request, &ids, &limits),
        };
        match built {
            Ok((label, query)) => {
                slots.push(Slot::Query { seq, label });
                queries.push(query);
            }
            Err(e) => slots.push(Slot::Failed(error_line(seq, &e))),
        }
    }

    let outcome = engine.execute_batch(&queries);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut results = outcome.outcomes.iter();
    for slot in &slots {
        let line = match slot {
            Slot::Failed(line) => line.clone(),
            Slot::Query { seq, label } => match results.next().expect("one outcome per query") {
                Ok(result) => {
                    let mut body = outcome_to_json(label, result);
                    finish_line(&mut body, *seq, true);
                    body.to_string()
                }
                Err(e) => error_line(*seq, &e.to_string()),
            },
        };
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    let stats = outcome.stats;
    let mut summary = serde_json::json!({
        "batch": {
            "queries": queries.len(),
            "groups": stats.groups,
            "builds_shared": stats.builds_shared,
            "scans_fused": stats.scans_fused,
            "queries_deduped": stats.queries_deduped,
        }
    });
    finish_line(&mut summary, None, true);
    writeln!(out, "{summary}").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::parse_bytes;

    #[test]
    fn byte_sizes_parse_with_and_without_suffix() {
        assert_eq!(parse_bytes("262144").unwrap(), 262_144);
        assert_eq!(parse_bytes("256k").unwrap(), 256 * 1024);
        assert_eq!(parse_bytes("64M").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_bytes("1g").unwrap(), 1024 * 1024 * 1024);
        assert_eq!(parse_bytes(" 8k ").unwrap(), 8192);
        assert_eq!(parse_bytes("0").unwrap(), 0);
    }

    #[test]
    fn bad_byte_sizes_are_rejected() {
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("k").is_err());
        assert!(parse_bytes("12q").is_err());
        assert!(parse_bytes("-5k").is_err());
        assert!(parse_bytes(&format!("{}g", usize::MAX)).is_err());
    }
}
