//! Figure 15: pruning-ratio breakdown per lower bound.
//!
//! Each bar decomposes the candidate pairs into the fraction pruned by
//! `LB_cell`, by `rLB_cross`, by `rLB_band`, and the fraction requiring
//! exact DFD computation. Attribution follows the paper's convention:
//! a pruned subset is credited to the first bound (cell → cross → band)
//! that disqualifies it.

use fremo_core::{BoundKind, MotifConfig, SearchStats};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{run_algorithm, Algorithm};
use crate::scale::Scale;
use crate::table::{fmt_pct, Table};
use crate::workload::trajectories;

fn breakdown(n: usize, xi: usize, reps: usize) -> [f64; 4] {
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(Dataset::GeoLife, n, reps, 1500);
    let mut acc = [0.0_f64; 4];
    for t in &ts {
        let (_, stats): (_, SearchStats) = run_algorithm(Algorithm::Btm, t, &cfg);
        acc[0] += stats.pruned_fraction_by(BoundKind::Cell);
        acc[1] += stats.pruned_fraction_by(BoundKind::Cross);
        acc[2] += stats.pruned_fraction_by(BoundKind::Band);
        acc[3] += stats.pruned_fraction_by(BoundKind::Exact);
    }
    acc.map(|v| v / reps as f64)
}

/// Regenerates Figure 15's two bar charts.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let reps = scale.repetitions();

    let mut by_n = Table::new(vec!["n", "LBcell", "rLBcross", "rLBband", "DFD"]);
    for &n in scale.lengths() {
        let b = breakdown(n, scale.default_xi(), reps);
        by_n.row(vec![
            n.to_string(),
            fmt_pct(b[0]),
            fmt_pct(b[1]),
            fmt_pct(b[2]),
            fmt_pct(b[3]),
        ]);
    }

    let mut by_xi = Table::new(vec!["xi", "LBcell", "rLBcross", "rLBband", "DFD"]);
    for &xi in scale.motif_lengths() {
        let b = breakdown(scale.default_n(), xi, reps);
        by_xi.row(vec![
            xi.to_string(),
            fmt_pct(b[0]),
            fmt_pct(b[1]),
            fmt_pct(b[2]),
            fmt_pct(b[3]),
        ]);
    }

    vec![
        (
            "Figure 15(a): pruning breakdown vs trajectory length n".to_string(),
            by_n,
        ),
        (
            "Figure 15(b): pruning breakdown vs minimum motif length xi".to_string(),
            by_xi,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let b = breakdown(150, 10, 2);
        let sum: f64 = b.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "breakdown sums to {sum}");
    }
}
