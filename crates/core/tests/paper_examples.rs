//! Fidelity tests against the paper's worked examples (Figures 5–8, 10–12).
//!
//! The paper walks through a concrete 12-point trajectory whose pairwise
//! ground distances are given in Figure 5. Every numeric claim the paper
//! makes about that example is asserted here against our implementation.

use fremo_core::bounds::{RelaxedTables, TightTables};
use fremo_core::domain::Domain;
use fremo_core::dp::{expand_subset, Bsf, DpBuffers};
use fremo_core::group::{group_dfd_bounds, GroupMatrices};
use fremo_core::stats::SearchStats;
use fremo_trajectory::{DenseMatrix, DistanceSource};

/// The Figure 5 matrix: `figure5().get(a, b)` = dG(S[a], S[b]).
fn figure5() -> DenseMatrix {
    let rows: [(usize, &[f64]); 11] = [
        (11, &[8.0, 7.0, 6.0, 5.0, 9.0, 7.0, 7.0, 3.0, 3.0, 2.0, 9.0]),
        (10, &[5.0, 6.0, 7.0, 6.0, 8.0, 6.0, 6.0, 6.0, 8.0, 1.0]),
        (9, &[2.0, 2.0, 4.0, 1.0, 7.0, 6.0, 8.0, 7.0, 7.0]),
        (8, &[3.0, 1.0, 1.0, 2.0, 5.0, 7.0, 3.0, 4.0]),
        (7, &[1.0, 3.0, 2.0, 3.0, 6.0, 5.0, 6.0]),
        (6, &[1.0, 2.0, 3.0, 2.0, 5.0, 9.0]),
        (5, &[3.0, 4.0, 5.0, 6.0, 4.0]),
        (4, &[3.0, 5.0, 3.0, 2.0]),
        (3, &[2.0, 1.0, 5.0]),
        (2, &[2.0, 3.0]),
        (1, &[1.0]),
    ];
    let n = 12;
    let mut data = vec![0.0; n * n];
    for (b, vals) in rows {
        for (a, &v) in vals.iter().enumerate() {
            data[a * n + b] = v;
            data[b * n + a] = v;
        }
    }
    DenseMatrix::from_raw(n, n, data)
}

/// Textbook DFD recurrence `dF(i, ie, j, je)` straight off the matrix
/// (Section 3's definition), used to check the paper's stated values and
/// to cross-validate the shared DP.
fn df(m: &DenseMatrix, i: usize, ie: usize, j: usize, je: usize) -> f64 {
    let rows = ie - i + 1;
    let cols = je - j + 1;
    let mut dp = vec![0.0_f64; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let d = m.get(i + r, j + c);
            dp[r * cols + c] = match (r, c) {
                (0, 0) => d,
                (0, _) => d.max(dp[c - 1]),
                (_, 0) => d.max(dp[(r - 1) * cols]),
                _ => {
                    let reach = dp[(r - 1) * cols + c]
                        .min(dp[r * cols + c - 1])
                        .min(dp[(r - 1) * cols + c - 1]);
                    d.max(reach)
                }
            };
        }
    }
    dp[rows * cols - 1]
}

#[test]
fn section_4_1_non_monotonicity_example() {
    // "dF(0,2,6,9) = 4, dF(0,3,6,9) = 1, dF(0,4,6,9) = 7" — the DFD first
    // falls and then rises as the first subtrajectory grows (Lemma 1).
    let m = figure5();
    assert_eq!(df(&m, 0, 2, 6, 9), 4.0);
    assert_eq!(df(&m, 0, 3, 6, 9), 1.0);
    assert_eq!(df(&m, 0, 4, 6, 9), 7.0);
}

#[test]
fn figure6_path_value() {
    // "The DFD distance is dF(0,3,6,9) = 1, contributed by the path of
    // gray cells from (0,6) to (3,9)."
    let m = figure5();
    assert_eq!(df(&m, 0, 3, 6, 9), 1.0);
    // The start and end cells force dG(0,6) = 1 and dG(3,9) = 1 into the
    // max, so the value is exactly 1.
    assert_eq!(m.get(0, 6), 1.0);
    assert_eq!(m.get(3, 9), 1.0);
}

#[test]
fn section_4_2_1_cell_bound_example() {
    // "LBcell(5, 9) = dG(5, 9) = 6 … e.g., for pair (S5,6, S9,11), the
    // exact DFD is dF(5,6,9,11) = 7."
    let m = figure5();
    assert_eq!(m.get(5, 9), 6.0);
    assert_eq!(df(&m, 5, 6, 9, 11), 7.0);
    assert!(m.get(5, 9) <= df(&m, 5, 6, 9, 11));
}

#[test]
fn section_4_2_2_cross_bound_example() {
    // "LB_cross^start(4, 8) = max(6, 6) = 6" with n = 12.
    let m = figure5();
    let t = TightTables::build(&m, Domain::Within { n: 12 }, 4);
    assert_eq!(t.cross(4, 8), 6.0);
}

#[test]
fn section_4_2_3_band_bound_examples() {
    // ξ = 4, n = 12: LB_band^row(1,6) = max(2,1,1,6) = 6 and
    // LB_band^col(1,8) = max(1,1,5,6) = 6.
    let m = figure5();
    let t = TightTables::build(&m, Domain::Within { n: 12 }, 4);
    // band() is the max of the row and column variants; isolate them via
    // the example's own subsets.
    // At (1,6) the row term is 6 (col term can only raise the max).
    assert!(t.band(1, 6) >= 6.0);
    // At (1,8) the column term is 6.
    assert!(t.band(1, 8) >= 6.0);
}

#[test]
fn figure10_group_distance_example() {
    // "for groups g2 = [4,5] and g5 = [10,11] … dminG(g2,g5) = 6 …
    // dmaxG = max(8,9,6,7) = 9" (τ = 2, n = 12).
    let m = figure5();
    let gm = GroupMatrices::build(&m, Domain::Within { n: 12 }, 2);
    assert_eq!(gm.dmin(2, 5), 6.0);
    assert_eq!(gm.dmax(2, 5), 9.0);
}

#[test]
fn figure12_group_dfd_bounds_sandwich() {
    // Figure 12 illustrates Lemma 3 on subtrajectory groups G1,2 and G4,5.
    // Its printed numbers (dFmin = 5, dFmax = 8, dF(3,5,8,10) = 7) come
    // from a *different* example matrix shown only graphically (they are
    // inconsistent with Figure 5: the recurrence forces
    // dFmin(1,2,4,5) ≥ dminG(g2,g5) = 6, the value Figure 10 itself
    // states). We therefore assert the values our Figure 5 transcription
    // implies, plus the Lemma 3 sandwich the figure exists to illustrate.
    let m = figure5();
    let gm = GroupMatrices::build(&m, Domain::Within { n: 12 }, 2);

    // Textbook dFmin/dFmax recurrence over the 2×2 group rectangle
    // ue ∈ {1,2}, ve ∈ {4,5}.
    let block_df = |use_max: bool| -> f64 {
        let get = |u: usize, v: usize| {
            if use_max {
                gm.dmax(u, v)
            } else {
                gm.dmin(u, v)
            }
        };
        let c00 = get(1, 4);
        let c01 = c00.max(get(1, 5));
        let c10 = c00.max(get(2, 4));
        get(2, 5).max(c00.min(c01).min(c10))
    };
    let dfmin = block_df(false);
    let dfmax = block_df(true);
    assert_eq!(dfmin, 6.0, "dFmin(1,2,4,5) from the Figure 5 distances");
    assert_eq!(dfmax, 9.0, "dFmax(1,2,4,5) from the Figure 5 distances");

    // Lemma 3: every candidate with i ∈ g1, ie ∈ g2, j ∈ g4, je ∈ g5
    // falls inside [dFmin, dFmax].
    for i in 2..=3_usize {
        for ie in 4..=5_usize {
            for j in 8..=9_usize {
                for je in 10..=11_usize {
                    let d = df(&m, i, ie, j, je);
                    assert!(
                        (dfmin..=dfmax).contains(&d),
                        "dF({i},{ie},{j},{je}) = {d} outside [{dfmin}, {dfmax}]"
                    );
                }
            }
        }
    }
}

#[test]
fn group_dfd_bounds_dp_is_consistent_with_figure12() {
    // Our group-level DP (Eq. 19) takes the min over feasible end blocks,
    // so GLB_DFD(1, 4) ≤ dFmin(1, 2, 4, 5) = 5, and it must lower-bound
    // the example candidate dF(3,5,8,10) = 7.
    let m = figure5();
    let domain = Domain::Within { n: 12 };
    let gm = GroupMatrices::build(&m, domain, 2);
    let b = group_dfd_bounds(&gm, domain, 2, 1, 4, f64::INFINITY);
    assert!(b.lower <= 5.0 + 1e-12);
    assert!(b.lower <= df(&m, 3, 5, 8, 10));
}

#[test]
fn shared_dp_agrees_with_textbook_recurrence_everywhere() {
    // Cross-validate expand_subset against the textbook recurrence for
    // every candidate subset of the Figure 5 matrix.
    let m = figure5();
    let domain = Domain::Within { n: 12 };
    let xi = 1;
    for (i, j) in domain.subsets(xi) {
        let mut bsf = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        expand_subset(
            &m, domain, xi, i, j, None, false, &mut bsf, &mut stats, &mut buf,
        );

        let mut best = f64::INFINITY;
        for ie in (i + xi + 1)..j {
            for je in (j + xi + 1)..12 {
                best = best.min(df(&m, i, ie, j, je));
            }
        }
        match bsf.motif {
            Some(found) => assert_eq!(found.distance, best, "subset ({i},{j})"),
            None => assert_eq!(best, f64::INFINITY, "subset ({i},{j})"),
        }
    }
}

#[test]
fn relaxed_bounds_on_figure5_are_safe_everywhere() {
    let m = figure5();
    let domain = Domain::Within { n: 12 };
    for xi in [1usize, 2, 3] {
        let tables = RelaxedTables::build(&m, domain, xi);
        for (i, j) in domain.subsets(xi) {
            let combined = m.get(i, j).max(tables.cross(i, j)).max(tables.band(i, j));
            for ie in (i + xi + 1)..j {
                for je in (j + xi + 1)..12 {
                    let d = df(&m, i, ie, j, je);
                    assert!(
                        combined <= d + 1e-12,
                        "xi={xi}: bound {combined} > dF {d} at ({i},{ie},{j},{je})"
                    );
                }
            }
        }
    }
}
