//! DFD-based subtrajectory clustering — the last of the paper's
//! future-work applications: *"accelerate other trajectory analysis
//! operations that rely on DFD, such as … subtrajectory clustering"*.
//!
//! [`cluster_subtrajectories`] slides fixed-length windows over a
//! trajectory (with a configurable stride) and groups them with the
//! classic *leader* algorithm: a window joins the first existing cluster
//! whose representative is within `ε` under DFD, otherwise it founds a new
//! cluster. The same cheap filters as the similarity join (endpoints,
//! directed Hausdorff) guard the `O(ℓ²)` decision kernel, and trivially
//! overlapping windows are kept apart by requiring cluster members to be
//! disjoint in index space.
//!
//! Leader clustering is order-dependent but deterministic, cheap
//! (`O(#windows × #clusters)` kernel invocations at worst), and exactly
//! the flavour of building block the paper's introduction says motifs
//! feed into (\[16, 31, 12\]).

use std::sync::atomic::{AtomicUsize, Ordering};

use fremo_similarity::dfd_decision;
use fremo_trajectory::{GroundDistance, Trajectory};

use crate::pool::{self, WorkCursor};

/// One cluster of mutually similar, index-disjoint subtrajectory windows.
#[derive(Debug, Clone)]
pub struct SubtrajectoryCluster {
    /// Inclusive index range of the representative (the cluster founder).
    pub representative: (usize, usize),
    /// Inclusive index ranges of all members, representative included.
    pub members: Vec<(usize, usize)>,
}

impl SubtrajectoryCluster {
    /// Number of member windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A cluster always holds at least its representative.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Clustering parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Window length in points (≥ 2).
    pub window: usize,
    /// Stride between window starts (≥ 1); `window` gives disjoint
    /// tilings, smaller strides give overlapping candidates (members are
    /// still kept index-disjoint within each cluster).
    pub stride: usize,
    /// DFD threshold for joining a cluster.
    pub epsilon: f64,
}

impl ClusterConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics on a window below 2 points, a zero stride, or a negative
    /// threshold.
    #[must_use]
    pub fn new(window: usize, stride: usize, epsilon: f64) -> Self {
        assert!(window >= 2, "window must have at least 2 points");
        assert!(stride >= 1, "stride must be at least 1");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        ClusterConfig {
            window,
            stride,
            epsilon,
        }
    }
}

/// Endpoint lower bound: prune when it already exceeds `eps`.
fn endpoints_exceed<P: GroundDistance>(a: &[P], b: &[P], eps: f64) -> bool {
    a[0].distance(&b[0])
        .max(a[a.len() - 1].distance(&b[b.len() - 1]))
        > eps
}

/// Directed Hausdorff early-exit filter (see `join`).
fn hausdorff_exceeds<P: GroundDistance>(a: &[P], b: &[P], eps: f64) -> bool {
    'outer: for p in a {
        for q in b {
            if p.distance(q) <= eps {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Clusters the sliding windows of `trajectory` by DFD, returning clusters
/// sorted by size (largest first). Windows that match no cluster found so
/// far start their own; singleton clusters are retained (callers can
/// filter on [`SubtrajectoryCluster::len`]).
#[must_use]
pub fn cluster_subtrajectories<P: GroundDistance>(
    trajectory: &Trajectory<P>,
    config: &ClusterConfig,
) -> Vec<SubtrajectoryCluster> {
    let pts = trajectory.points();
    let n = pts.len();
    if n < config.window {
        return Vec::new();
    }

    let mut clusters: Vec<SubtrajectoryCluster> = Vec::new();
    let mut start = 0usize;
    while start + config.window <= n {
        let end = start + config.window - 1;
        match clusters
            .iter()
            .position(|c| window_joins(c, pts, start, end, config))
        {
            Some(c) => clusters[c].members.push((start, end)),
            None => clusters.push(SubtrajectoryCluster {
                representative: (start, end),
                members: vec![(start, end)],
            }),
        }
        start += config.stride;
    }

    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    clusters
}

/// Whether window `[start, end]` may join `cluster`: index-disjoint from
/// every member, passes the cheap filters, and decides under `ε`.
fn window_joins<P: GroundDistance>(
    cluster: &SubtrajectoryCluster,
    pts: &[P],
    start: usize,
    end: usize,
    config: &ClusterConfig,
) -> bool {
    // Keep members index-disjoint within a cluster.
    let overlaps = cluster
        .members
        .iter()
        .any(|&(lo, hi)| start <= hi && lo <= end);
    if overlaps {
        return false;
    }
    let win = &pts[start..=end];
    let rep = &pts[cluster.representative.0..=cluster.representative.1];
    if endpoints_exceed(rep, win, config.epsilon)
        || hausdorff_exceeds(rep, win, config.epsilon)
        || hausdorff_exceeds(win, rep, config.epsilon)
    {
        return false;
    }
    dfd_decision(rep, win, config.epsilon)
}

/// [`cluster_subtrajectories`] with each window's cluster-membership scan
/// fanned out over worker threads.
///
/// Leader clustering is inherently sequential across *windows* (window
/// `w`'s assignment depends on the clusters the earlier windows formed),
/// but for one window the candidate clusters can be tested concurrently:
/// workers claim cluster indices through an atomic cursor and the
/// *minimum* matching index wins — exactly the serial "first matching
/// cluster" rule, so the output is bit-for-bit identical to the serial
/// clustering. Scans over only a handful of clusters stay serial (the
/// fan-out would cost more than the tests). `threads == 0` resolves
/// through the global budget ([`crate::pool::global_threads`]).
#[must_use]
pub fn cluster_subtrajectories_parallel<P: GroundDistance + Sync>(
    trajectory: &Trajectory<P>,
    config: &ClusterConfig,
    threads: usize,
) -> Vec<SubtrajectoryCluster> {
    let threads = pool::resolve_threads(threads);
    if threads <= 1 {
        return cluster_subtrajectories(trajectory, config);
    }
    let pts = trajectory.points();
    let n = pts.len();
    if n < config.window {
        return Vec::new();
    }

    let mut clusters: Vec<SubtrajectoryCluster> = Vec::new();
    let mut start = 0usize;
    while start + config.window <= n {
        let end = start + config.window - 1;
        // Fan out only when there are enough candidate clusters to pay
        // for the scoped spawn; the serial position() is the same rule.
        let hit = if clusters.len() >= threads * 4 {
            let cursor = WorkCursor::new(clusters.len());
            let best = AtomicUsize::new(usize::MAX);
            pool::run_workers(threads, |_| {
                while let Some(c) = cursor.claim() {
                    // A match at a smaller index already won; anything at
                    // or past it cannot change the minimum.
                    // relaxed: a stale read only skips work that could not
                    // lower the minimum; no data is published via `best`.
                    if c >= best.load(Ordering::Relaxed) {
                        continue;
                    }
                    if window_joins(&clusters[c], pts, start, end, config) {
                        // relaxed: fetch_min is monotonic; the authoritative
                        // value is read after run_workers joins.
                        best.fetch_min(c, Ordering::Relaxed);
                    }
                }
            });
            // relaxed: the spawn scope has joined every worker, which
            // synchronizes all their fetch_min writes with this read.
            let best = best.load(Ordering::Relaxed);
            (best != usize::MAX).then_some(best)
        } else {
            clusters
                .iter()
                .position(|c| window_joins(c, pts, start, end, config))
        };
        match hit {
            Some(c) => clusters[c].members.push((start, end)),
            None => clusters.push(SubtrajectoryCluster {
                representative: (start, end),
                members: vec![(start, end)],
            }),
        }
        start += config.stride;
    }

    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_similarity::dfd;
    use fremo_trajectory::gen::planar;
    use fremo_trajectory::EuclideanPoint;

    /// Trajectory tracing the same loop `laps` times with per-lap jitter.
    fn looping(laps: usize, per_lap: usize, jitter: f64) -> Trajectory<EuclideanPoint> {
        let mut pts = Vec::new();
        for lap in 0..laps {
            let off = jitter * lap as f64;
            for k in 0..per_lap {
                let a = std::f64::consts::TAU * k as f64 / per_lap as f64;
                pts.push(EuclideanPoint::new(10.0 * a.cos() + off, 10.0 * a.sin()));
            }
        }
        Trajectory::new(pts)
    }

    #[test]
    fn repeated_laps_form_one_big_cluster() {
        let t = looping(5, 24, 0.05);
        let cfg = ClusterConfig::new(24, 24, 1.0);
        let clusters = cluster_subtrajectories(&t, &cfg);
        assert_eq!(
            clusters[0].len(),
            5,
            "all five laps should cluster together"
        );
    }

    #[test]
    fn members_are_within_epsilon_of_representative() {
        let t = looping(4, 20, 0.2);
        let cfg = ClusterConfig::new(20, 10, 2.0);
        let clusters = cluster_subtrajectories(&t, &cfg);
        for c in &clusters {
            let rep = &t.points()[c.representative.0..=c.representative.1];
            for &(lo, hi) in &c.members {
                let d = dfd(rep, &t.points()[lo..=hi]);
                assert!(d <= cfg.epsilon + 1e-9, "member ({lo},{hi}) at {d}");
            }
        }
    }

    #[test]
    fn members_within_a_cluster_are_disjoint() {
        let t = planar::random_walk(200, 0.4, 3);
        let cfg = ClusterConfig::new(20, 5, 5.0);
        let clusters = cluster_subtrajectories(&t, &cfg);
        for c in &clusters {
            let mut sorted = c.members.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[0].1 < w[1].0, "{:?} overlaps {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn random_walk_mostly_singletons_at_tiny_epsilon() {
        let t = planar::random_walk(150, 0.5, 9);
        let cfg = ClusterConfig::new(15, 15, 1e-6);
        let clusters = cluster_subtrajectories(&t, &cfg);
        assert!(clusters.iter().all(|c| c.len() == 1));
        assert_eq!(clusters.len(), 10); // ⌊150/15⌋ windows
    }

    #[test]
    fn degenerate_inputs() {
        let short = planar::random_walk(5, 0.4, 1);
        assert!(cluster_subtrajectories(&short, &ClusterConfig::new(10, 10, 1.0)).is_empty());
        // Exactly one window.
        let exact = planar::random_walk(10, 0.4, 1);
        let cs = cluster_subtrajectories(&exact, &ClusterConfig::new(10, 10, 1.0));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].representative, (0, 9));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_tiny_window() {
        let _ = ClusterConfig::new(1, 1, 1.0);
    }
}
