// L3 clean fixture: errors propagate; panics stay in tests or behind a
// reasoned suppression.

pub fn take_first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn must_parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

pub fn with_default(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_default()
}

pub fn head(xs: &[u64]) -> u64 {
    // fremo-lint: allow(L3) -- callers uphold the non-empty contract;
    // returning a default would hide their bug.
    *xs.first().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let xs = vec![1u64];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
