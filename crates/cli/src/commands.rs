//! Subcommand implementations.

use std::io::Write as _;
use std::path::Path;

use fremo_bench::experiments::{self, print_all};
use fremo_bench::Scale;
use fremo_core::{BruteDp, Btm, Gtm, GtmStar, Motif, MotifConfig, MotifDiscovery, SearchStats};
use fremo_similarity::{dfd, dtw, edr, hausdorff, lcss_distance, lockstep_euclidean};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::io::{read_csv, read_plt, write_csv};
use fremo_trajectory::{GeoPoint, Trajectory, TrajectoryStats};

use crate::args::Parsed;

fn load(path_str: &str) -> Result<Trajectory<GeoPoint>, String> {
    let path = Path::new(path_str);
    let result = if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("plt"))
    {
        read_plt(path)
    } else {
        read_csv(path)
    };
    result.map_err(|e| format!("cannot read {path_str}: {e}"))
}

fn algorithm(name: &str) -> Result<Box<dyn MotifDiscovery<GeoPoint>>, String> {
    match name {
        "brute" | "brutedp" => Ok(Box::new(BruteDp)),
        "btm" => Ok(Box::new(Btm)),
        "gtm" => Ok(Box::new(Gtm)),
        "gtm-star" | "gtm*" => Ok(Box::new(GtmStar)),
        other => Err(format!(
            "unknown algorithm {other:?} (brute|btm|gtm|gtm-star)"
        )),
    }
}

/// `fremo generate --dataset <d> --n <len> [--seed <u64>] [--out <file>]`
pub fn generate(args: &Parsed) -> Result<(), String> {
    let dataset: Dataset = args.required("dataset")?.parse()?;
    let n: usize = args.required_parsed("n")?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let t = dataset.generate(n, seed);

    match args.optional("out") {
        Some(path) => {
            let mut file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            let mut buf = std::io::BufWriter::new(&mut file);
            write_csv(&mut buf, &t).map_err(|e| e.to_string())?;
            buf.flush().map_err(|e| e.to_string())?;
            eprintln!("wrote {n} points ({dataset}) to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            write_csv(&mut stdout, &t).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `fremo inspect --input <csv>`
pub fn inspect(args: &Parsed) -> Result<(), String> {
    let t = load(args.required("input")?)?;
    let stats = TrajectoryStats::compute(&t);
    println!("{stats}");
    Ok(())
}

fn print_motif(motif: Option<&Motif>, stats: &SearchStats, json: bool) -> Result<(), String> {
    if json {
        let payload = serde_json::json!({
            "motif": motif.map(|m| serde_json::json!({
                "first": { "start": m.first.0, "end": m.first.1 },
                "second": { "start": m.second.0, "end": m.second.1 },
                "dfd": m.distance,
            })),
            "seconds": stats.total_seconds,
            "peak_bytes": stats.peak_bytes(),
            "pruned_fraction": stats.pruned_fraction(),
            "subsets_total": stats.subsets_total,
            "subsets_expanded": stats.subsets_expanded,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    match motif {
        Some(m) => {
            println!("motif: {m}");
            println!(
                "stats: {:.3}s, {:.1} MB peak, {:.1}% of candidate pairs pruned ({} of {} subsets expanded)",
                stats.total_seconds,
                stats.peak_bytes() as f64 / (1024.0 * 1024.0),
                stats.pruned_fraction() * 100.0,
                stats.subsets_expanded,
                stats.subsets_total,
            );
        }
        None => println!("no valid motif (trajectory too short for the requested ξ)"),
    }
    Ok(())
}

/// `fremo discover --input <csv> --xi <len> [--algorithm <a>] [--tau <t>]
/// [--k <count>] [--epsilon <eps>] [--json]`
///
/// `--k > 1` switches to diverse top-k discovery; `--epsilon > 0` runs the
/// (1+ε)-approximate search.
pub fn discover(args: &Parsed) -> Result<(), String> {
    let t = load(args.required("input")?)?;
    let xi: usize = args.required_parsed("xi")?;
    if xi == 0 {
        return Err("--xi must be at least 1".into());
    }
    let tau: usize = args.parsed_or("tau", 32)?;
    let cfg = MotifConfig::new(xi).with_group_size(tau.max(1));

    let k: usize = args.parsed_or("k", 1)?;
    if k > 1 {
        let motifs = fremo_core::top_k_motifs(&t, &cfg, k);
        if motifs.is_empty() {
            println!("no valid motif (trajectory too short for the requested ξ)");
        }
        for (rank, m) in motifs.iter().enumerate() {
            println!("#{:<2} {m}", rank + 1);
        }
        return Ok(());
    }

    let epsilon: f64 = args.parsed_or("epsilon", 0.0)?;
    let (motif, stats) = if epsilon > 0.0 {
        fremo_core::ApproxGtm::new(epsilon).discover_with_stats(&t, &cfg)
    } else {
        let alg = algorithm(args.optional("algorithm").unwrap_or("gtm"))?;
        alg.discover_with_stats(&t, &cfg)
    };
    print_motif(motif.as_ref(), &stats, args.switch("json"))
}

/// `fremo discover-pair --a <csv> --b <csv> --xi <len> [...]`
pub fn discover_pair(args: &Parsed) -> Result<(), String> {
    let a = load(args.required("a")?)?;
    let b = load(args.required("b")?)?;
    let xi: usize = args.required_parsed("xi")?;
    if xi == 0 {
        return Err("--xi must be at least 1".into());
    }
    let tau: usize = args.parsed_or("tau", 32)?;
    let alg = algorithm(args.optional("algorithm").unwrap_or("gtm"))?;
    let cfg = MotifConfig::new(xi).with_group_size(tau.max(1));
    let (motif, stats) = alg.discover_between_with_stats(&a, &b, &cfg);
    print_motif(motif.as_ref(), &stats, args.switch("json"))
}

/// `fremo compare --a <csv> --b <csv> [--epsilon <m>]`
pub fn compare(args: &Parsed) -> Result<(), String> {
    let a = load(args.required("a")?)?;
    let b = load(args.required("b")?)?;
    let eps: f64 = args.parsed_or("epsilon", 25.0)?;
    let (pa, pb) = (a.points(), b.points());
    println!("ED        = {:.3}", lockstep_euclidean(pa, pb));
    println!("DTW       = {:.3}", dtw(pa, pb));
    println!("LCSS(eps) = {:.3}", lcss_distance(pa, pb, eps));
    println!("EDR(eps)  = {}", edr(pa, pb, eps));
    println!("DFD       = {:.3}", dfd(pa, pb));
    println!("Hausdorff = {:.3}", hausdorff(pa, pb));
    Ok(())
}

/// `fremo experiment <name>`
pub fn experiment(argv: &[String]) -> Result<(), String> {
    let Some(name) = argv.first() else {
        return Err("missing experiment name (table1, fig02, fig03, fig13..fig21, ext-approx, ext-topk, ext-join, ext-parallel)".into());
    };
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = match name.as_str() {
        "table1" => experiments::table1_measures::run(scale),
        "fig02" => experiments::fig02_ed_vs_dfd::run(scale),
        "fig03" => experiments::fig03_dtw_vs_dfd::run(scale),
        "fig13" => experiments::fig13_tight_vs_relaxed::run(scale),
        "fig14" => experiments::fig14_tight_vs_relaxed_xi::run(scale),
        "fig15" => experiments::fig15_pruning_breakdown::run(scale),
        "fig16" => experiments::fig16_bound_combos::run(scale),
        "fig17" => experiments::fig17_group_size::run(scale),
        "fig18" => experiments::fig18_time_vs_n::run(scale),
        "fig19" => experiments::fig19_space::run(scale),
        "fig20" => experiments::fig20_time_vs_xi::run(scale),
        "fig21" => experiments::fig21_cross_trajectory::run(scale),
        "ext-approx" => experiments::ext_approx::run(scale),
        "ext-topk" => experiments::ext_topk::run(scale),
        "ext-join" => experiments::ext_join::run(scale),
        "ext-parallel" => experiments::ext_parallel::run(scale),
        other => return Err(format!("unknown experiment {other:?}")),
    };
    print_all(name, &tables);
    Ok(())
}
