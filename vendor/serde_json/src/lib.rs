//! Minimal, API-compatible subset of `serde_json`, vendored so the
//! workspace builds offline: a [`Value`] tree, the [`json!`] macro (objects,
//! arrays, `null`, and arbitrary expressions convertible via [`From`]),
//! [`to_string`] / [`to_string_pretty`] over `Value`, and a strict
//! recursive-descent [`from_str`] parser. Object key order is preserved
//! (insertion order), matching what the CLI prints.
//!
//! Swap the path dependency for crates.io `serde_json = "1"` once network
//! access is available; the `json!` call sites need no changes.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (stored as `f64`; integers print without `.0`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// The `null` value, returned by out-of-range [`std::ops::Index`] lookups
/// (matching real `serde_json` semantics).
const NULL: Value = Value::Null;

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a boolean.
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is a number.
    #[must_use]
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    #[must_use]
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The boolean, when this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, when this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, when this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, when this is an integer number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.trunc() == *n && n.abs() <= 9_007_199_254_740_992.0 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for non-objects and missing keys
    /// (real `serde_json` behavior).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]`, yielding `Null` out of range or on non-arrays.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }
    )*};
}

value_from_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string(); // serde_json serializes non-finite as null
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                write_value(item, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, false, 0);
        f.write_str(&out)
    }
}

/// Serialization or parse error. The shim's writer is infallible; parse
/// errors carry a message and the byte offset where parsing failed.
#[derive(Debug)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a [`Value`] to a compact JSON string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(value, &mut out, false, 0);
    Ok(out)
}

/// Serializes a [`Value`] to a pretty-printed (2-space indented) string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(value, &mut out, true, 0);
    Ok(out)
}

/// Parses a JSON document into a [`Value`].
///
/// Strict: the whole input must be one JSON value (plus surrounding
/// whitespace) — trailing garbage, trailing commas, comments, `NaN`, and
/// `Infinity` are all rejected, matching real `serde_json`. Duplicate
/// object keys keep the last occurrence.
///
/// # Errors
///
/// Returns an [`Error`] naming the problem and the byte offset where the
/// parser stopped.
pub fn from_str(input: &str) -> Result<Value> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(value)
}

/// Nesting depth cap for [`from_str`]; inputs deeper than this error out
/// instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected {:?}", char::from(b)),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("recursion depth exceeded", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(Error::parse("unexpected character", self.pos)),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // Last duplicate wins, as in real serde_json's default map.
            if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                entries.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(Error::parse("invalid escape", start)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::parse("control character in string", self.pos));
                }
                Some(_) => {
                    // Copy a maximal run of plain UTF-8 bytes at once.
                    let mut end = self.pos;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::parse("invalid UTF-8 in string", self.pos))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        let hex4 = |p: &mut Self| -> Result<u32> {
            let start = p.pos;
            let digits = p
                .bytes
                .get(p.pos..p.pos + 4)
                .ok_or_else(|| Error::parse("truncated \\u escape", start))?;
            let s = std::str::from_utf8(digits)
                .map_err(|_| Error::parse("invalid \\u escape", start))?;
            let code = u32::from_str_radix(s, 16)
                .map_err(|_| Error::parse("invalid \\u escape", start))?;
            p.pos += 4;
            Ok(code)
        };
        let start = self.pos;
        let hi = hex4(self)?;
        // Surrogate pairs arrive as two consecutive \u escapes.
        let code = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(Error::parse("unpaired surrogate", start));
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(Error::parse("invalid low surrogate", start));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else if (0xDC00..0xE000).contains(&hi) {
            return Err(Error::parse("unpaired surrogate", start));
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| Error::parse("invalid code point", start))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(Error::parse("expected digits", self.pos));
        }
        // JSON forbids leading zeros: 0 is fine, 01 is not.
        if self.pos - digits_from > 1 && self.bytes[digits_from] == b'0' {
            return Err(Error::parse("leading zero", digits_from));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(Error::parse("expected fraction digits", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(Error::parse("expected exponent digits", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        let n: f64 = text
            .parse()
            .map_err(|_| Error::parse("invalid number", start))?;
        if n.is_finite() {
            Ok(Value::Number(n))
        } else {
            Err(Error::parse("number out of range", start))
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax: objects, arrays, `null`, and
/// Rust expressions convertible into `Value` via [`From`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        #[allow(clippy::vec_init_then_push)]
        let entries = {
            let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_object_entries!(entries ; $($body)+);
            entries
        };
        $crate::Value::Object(entries)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($entries:ident ;) => {};
    ($entries:ident ; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($entries ; $key ; [] $($rest)*)
    };
}

/// Implementation detail of [`json!`]: accumulates a value's tokens until a
/// top-level comma (or the end of input), then recurses into [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_value {
    ($entries:ident ; $key:literal ; [$($val:tt)*] , $($rest:tt)*) => {
        $entries.push((::std::string::String::from($key), $crate::json!($($val)*)));
        $crate::json_object_entries!($entries ; $($rest)*)
    };
    ($entries:ident ; $key:literal ; [$($val:tt)*]) => {
        $entries.push((::std::string::String::from($key), $crate::json!($($val)*)));
    };
    ($entries:ident ; $key:literal ; [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($entries ; $key ; [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn object_macro_preserves_order_and_nests() {
        let inner = 0.5_f64;
        let v = json!({
            "motif": Some(json!({ "first": { "start": 3, "end": 9 }, "dfd": inner })),
            "none": None::<Value>,
            "count": 12usize,
        });
        let s = super::to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"motif":{"first":{"start":3,"end":9},"dfd":0.5},"none":null,"count":12}"#
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1, "b": [1, 2] });
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(super::to_string(&v).unwrap(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(super::number_to_string(3.0), "3");
        assert_eq!(super::number_to_string(3.25), "3.25");
        assert_eq!(super::number_to_string(f64::NAN), "null");
    }

    #[test]
    fn parse_round_trips_serialization() {
        let v = json!({
            "op": "motif",
            "ids": [0, 1, 2],
            "tau": 32,
            "eps": 0.5,
            "nested": { "deep": [true, false, json!(null)] },
            "text": "a\"b\\c\nd",
        });
        let s = super::to_string(&v).unwrap();
        assert_eq!(super::from_str(&s).unwrap(), v);
    }

    #[test]
    fn parse_handles_numbers_strings_and_escapes() {
        assert_eq!(super::from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(super::from_str("0").unwrap().as_u64(), Some(0));
        assert_eq!(super::from_str("42").unwrap().as_i64(), Some(42));
        assert_eq!(super::from_str("1.5").unwrap().as_u64(), None);
        assert_eq!(super::from_str("-3").unwrap().as_u64(), None);
        assert_eq!(
            super::from_str(r#""Aé😀""#).unwrap(),
            Value::String("A\u{e9}\u{1f600}".into())
        );
        assert_eq!(
            super::from_str("  [1, 2]  ").unwrap(),
            json!([1.0_f64, 2.0_f64])
        );
    }

    #[test]
    fn parse_keeps_last_duplicate_key() {
        let v = super::from_str(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v["a"].as_u64(), Some(2));
        assert_eq!(super::to_string(&v).unwrap(), r#"{"a":2}"#);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "nul",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "[1] trailing",
            "[1,]",
            "{\"a\":1,}",
            "NaN",
            "Infinity",
            "1e999",
        ] {
            assert!(super::from_str(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(super::from_str(&deep).is_err());
    }
}
