//! Robustness tests: the algorithms must stay exact (mutually agreeing) on
//! degraded data, and the discovered motif must degrade gracefully with
//! the noise level — the practical face of the paper's claim that DFD
//! suits real-world GPS defects.

use fremo::prelude::*;
use fremo::trajectory::gen::{
    planted, with_dropped_samples, with_gps_noise, with_outliers, Dataset,
};

#[test]
fn algorithms_agree_on_noisy_data() {
    let clean = Dataset::GeoLife.generate(140, 31);
    let degraded = with_outliers(&with_gps_noise(&clean, 8.0, 1), 0.03, 200.0, 2);
    let cfg = MotifConfig::new(8).with_group_size(8);
    let brute = BruteDp.discover(&degraded, &cfg).unwrap();
    for (name, d) in [
        ("BTM", Btm.discover(&degraded, &cfg).unwrap().distance),
        ("GTM", Gtm.discover(&degraded, &cfg).unwrap().distance),
        ("GTM*", GtmStar.discover(&degraded, &cfg).unwrap().distance),
    ] {
        assert!(
            (d - brute.distance).abs() < 1e-9,
            "{name} disagrees on noisy data"
        );
    }
}

#[test]
fn algorithms_agree_after_sample_dropping() {
    let clean = Dataset::Baboon.generate(200, 32);
    let degraded = with_dropped_samples(&clean, 0.25, 3);
    assert!(degraded.len() < clean.len());
    let cfg = MotifConfig::new(8);
    let a = Btm.discover(&degraded, &cfg).unwrap();
    let b = GtmStar.discover(&degraded, &cfg).unwrap();
    assert!((a.distance - b.distance).abs() < 1e-9);
}

#[test]
fn motif_value_grows_gracefully_with_noise() {
    // On a planted workload, the optimum should grow roughly with the GPS
    // noise floor, not explode.
    let (clean, _) = planted(300, 25, 2.0, 17);
    let cfg = MotifConfig::new(15);
    let base = Gtm.discover(&clean, &cfg).unwrap().distance;
    assert!(base <= 2.0 + 1e-6);

    let mut last = base;
    for (sigma, cap) in [(2.0, 25.0), (5.0, 60.0), (10.0, 120.0)] {
        let noisy = with_gps_noise(&clean, sigma, 99);
        let d = Gtm.discover(&noisy, &cfg).unwrap().distance;
        // Noise can only plausibly raise the optimum (the planted pair's
        // points get displaced independently), and should stay bounded by
        // a few noise standard deviations.
        assert!(d <= cap, "sigma={sigma}: motif {d} blew past {cap}");
        assert!(
            d >= last * 0.5,
            "sigma={sigma}: motif {d} dropped suspiciously from {last}"
        );
        last = d;
    }
}

#[test]
fn pruning_remains_effective_under_noise() {
    let clean = Dataset::Truck.generate(300, 33);
    let noisy = with_gps_noise(&clean, 10.0, 4);
    let cfg = MotifConfig::new(15);
    let (_, stats) = Btm.discover_with_stats(&noisy, &cfg);
    assert!(
        stats.pruned_fraction() > 0.5,
        "noise collapsed pruning to {:.1}%",
        stats.pruned_fraction() * 100.0
    );
}

#[test]
fn outliers_hit_dfd_harder_than_average_measures() {
    // DFD is a max — a single outlier inside the motif region can move it.
    // This is expected behaviour, not a bug; verify the mechanism: adding
    // one gross outlier raises the *whole-trajectory* DFD by roughly the
    // outlier offset, while the mean-based lock-step ED barely moves.
    use fremo::similarity::lockstep_euclidean;
    let a = Dataset::GeoLife.generate(150, 8);
    let b = with_outliers(&a, 1.0 / 150.0, 1_000.0, 5);
    let d_dfd = dfd(a.points(), b.points());
    let d_ed = lockstep_euclidean(a.points(), b.points());
    assert!(d_dfd >= d_ed, "max-based DFD should dominate mean-based ED");
}
