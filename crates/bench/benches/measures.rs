//! Similarity-measure costs (the cost column of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_similarity::{
    DiscreteFrechet, Dtw, Edr, Hausdorff, Lcss, LockstepEuclidean, SimilarityMeasure,
};
use fremo_trajectory::gen::planar;
use fremo_trajectory::EuclideanPoint;

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measures");
    let measures: Vec<(&str, Box<dyn SimilarityMeasure<EuclideanPoint>>)> = vec![
        ("ED", Box::new(LockstepEuclidean)),
        ("DTW", Box::new(Dtw)),
        ("LCSS", Box::new(Lcss::new(0.5))),
        ("EDR", Box::new(Edr::new(0.5))),
        ("DFD", Box::new(DiscreteFrechet)),
        ("Hausdorff", Box::new(Hausdorff)),
    ];
    for len in [128usize, 512] {
        let a = planar::random_walk(len, 0.4, 21);
        let b = planar::random_walk(len, 0.4, 22);
        for (name, m) in &measures {
            group.bench_with_input(BenchmarkId::new(*name, len), &len, |bch, _| {
                bch.iter(|| {
                    m.distance(
                        std::hint::black_box(a.points()),
                        std::hint::black_box(b.points()),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
