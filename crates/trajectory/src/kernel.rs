//! SIMD kernels for the ground-distance hot loops, with a bit-exact
//! scalar fallback.
//!
//! Every workload in the paper bottoms out in two loops: the O(n²)
//! Euclidean distance-matrix build and the per-row `min` pre-pass of the
//! discrete-Fréchet DP recurrence. This module vectorizes both with
//! `core::arch` intrinsics — AVX2 or SSE2 on `x86_64` (runtime feature
//! detection), NEON on `aarch64`, and a portable scalar loop everywhere
//! else — while keeping results **bit-for-bit identical** to the scalar
//! code:
//!
//! * No FMA and no reassociation: each lane computes exactly
//!   `dx*dx + dy*dy` followed by a correctly-rounded `sqrt`, the same
//!   IEEE-754 operation sequence as
//!   [`EuclideanPoint::distance`](crate::GroundDistance::distance)
//!   evaluates per element. IEEE addition and multiplication of numeric
//!   values are commutative, `(-x)*(-x) == x*x`, and hardware vector
//!   `sqrt` is correctly rounded, so every lane reproduces the scalar
//!   bits.
//! * Vector `min` (`MINPD` / `FMINNM`) agrees with [`f64::min`] on the
//!   kernel domain (non-NaN, no negative zero — distances and DP cells
//!   are always in `[0, +∞]`).
//!
//! Selection order: [`force_scalar`] (a test/bench hook) beats the
//! `FREMO_NO_SIMD` environment variable, which beats [`Kernel::detect`].
//! See `docs/KERNELS.md` for the full exactness argument.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::point::EuclideanPoint;

/// A vector instruction set the distance kernels can run on.
///
/// All variants exist on every architecture so tests and stats can name
/// them portably; [`Kernel::supported`] reports whether the current CPU
/// can actually execute a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// 256-bit AVX2 path, 4 distances per iteration (`x86_64` only).
    Avx2,
    /// 128-bit SSE2 path, 2 distances per iteration (`x86_64` baseline).
    Sse2,
    /// 128-bit NEON path, 2 distances per iteration (`aarch64` baseline).
    Neon,
    /// Portable scalar loop; the reference all other kernels must match.
    Scalar,
}

/// Returns whether the running CPU supports AVX2.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Test/bench hook: when set, [`Kernel::active`] reports [`Kernel::Scalar`]
/// and all dispatching entry points take the scalar path.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Cached environment-level kernel choice (`FREMO_NO_SIMD` or detection).
static ENV_CHOICE: OnceLock<Kernel> = OnceLock::new();

/// Forces (or releases) the scalar kernel process-wide.
///
/// Exists so differential tests and benches can flip between SIMD and
/// scalar without mutating the environment (which races parallel
/// tests). Callers that toggle this should serialize on a lock and
/// restore `false` afterwards.
pub fn force_scalar(on: bool) {
    // A standalone flag with no dependent data; readers only need to
    // eventually observe the toggle, and tests needing strictness lock.
    // relaxed: see above — nothing is ordered by this flag.
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

impl Kernel {
    /// Short lowercase name (`"avx2"`, `"sse2"`, `"neon"`, `"scalar"`)
    /// as reported in `SearchStats` and bench JSON.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Neon => "neon",
            Kernel::Scalar => "scalar",
        }
    }

    /// Best kernel the running CPU supports, ignoring overrides.
    #[must_use]
    pub fn detect() -> Kernel {
        if avx2_available() {
            Kernel::Avx2
        } else if cfg!(target_arch = "x86_64") {
            Kernel::Sse2
        } else if cfg!(target_arch = "aarch64") {
            Kernel::Neon
        } else {
            Kernel::Scalar
        }
    }

    /// Whether the running CPU can execute this kernel.
    #[must_use]
    pub fn supported(self) -> bool {
        match self {
            Kernel::Avx2 => avx2_available(),
            Kernel::Sse2 => cfg!(target_arch = "x86_64"),
            Kernel::Neon => cfg!(target_arch = "aarch64"),
            Kernel::Scalar => true,
        }
    }

    /// The kernel the dispatching entry points will use right now:
    /// [`force_scalar`] override, then `FREMO_NO_SIMD` (set to anything
    /// but `""`/`"0"`), then [`Kernel::detect`].
    #[must_use]
    pub fn active() -> Kernel {
        // relaxed: see `force_scalar`.
        if FORCE_SCALAR.load(Ordering::Relaxed) {
            return Kernel::Scalar;
        }
        *ENV_CHOICE.get_or_init(|| {
            let no_simd = match std::env::var("FREMO_NO_SIMD") {
                Ok(v) => !v.is_empty() && v != "0",
                Err(_) => false,
            };
            if no_simd {
                Kernel::Scalar
            } else {
                Kernel::detect()
            }
        })
    }
}

/// Fills `out[i]` with the Euclidean distance from `origin` to
/// `targets[i]` using the currently [`Kernel::active`] kernel.
///
/// Only the common prefix `min(targets.len(), out.len())` is written.
/// Results are bit-identical to calling
/// [`EuclideanPoint::distance`](crate::GroundDistance::distance) per
/// element, whichever kernel runs.
#[inline]
pub fn euclid_row(origin: EuclideanPoint, targets: &[EuclideanPoint], out: &mut [f64]) {
    euclid_row_with(Kernel::active(), origin, targets, out);
}

/// [`euclid_row`] with an explicit kernel choice.
///
/// A kernel the CPU does not support falls back to the scalar loop, so
/// the call is always safe and always bit-exact.
pub fn euclid_row_with(
    kernel: Kernel,
    origin: EuclideanPoint,
    targets: &[EuclideanPoint],
    out: &mut [f64],
) {
    let n = targets.len().min(out.len());
    let targets = &targets[..n];
    let out = &mut out[..n];
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if avx2_available() => {
            // SAFETY: the match guard just verified AVX2 is available on
            // this CPU, which is the only requirement of the callee.
            unsafe { x86::euclid_row_avx2(origin, targets, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => x86::euclid_row_sse2(origin, targets, out),
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => arm::euclid_row_neon(origin, targets, out),
        _ => euclid_row_scalar(origin, targets, out),
    }
}

/// Fills `out[i] = a[i].min(b[i])` using the currently [`Kernel::active`]
/// kernel; the DP pre-pass (`m[k] = min(prev[k-1], prev[k])`) runs on
/// this.
///
/// Only the common prefix of the three slices is written. Vector and
/// scalar kernels agree bit-for-bit whenever the inputs contain no NaN
/// and no negative zero — always true for DP rows, whose cells are
/// ground distances or `+∞` boundary values, i.e. in `[0, +∞]`.
#[inline]
pub fn pairwise_min(a: &[f64], b: &[f64], out: &mut [f64]) {
    pairwise_min_with(Kernel::active(), a, b, out);
}

/// [`pairwise_min`] with an explicit kernel choice; unsupported kernels
/// fall back to the scalar loop.
pub fn pairwise_min_with(kernel: Kernel, a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = a.len().min(b.len()).min(out.len());
    let a = &a[..n];
    let b = &b[..n];
    let out = &mut out[..n];
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if avx2_available() => {
            // SAFETY: the match guard just verified AVX2 is available on
            // this CPU, which is the only requirement of the callee.
            unsafe { x86::pairwise_min_avx2(a, b, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => x86::pairwise_min_sse2(a, b, out),
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => arm::pairwise_min_neon(a, b, out),
        _ => pairwise_min_scalar(a, b, out),
    }
}

/// Reference scalar loop: per-element [`GroundDistance::distance`]
/// (`crate::GroundDistance`).
fn euclid_row_scalar(origin: EuclideanPoint, targets: &[EuclideanPoint], out: &mut [f64]) {
    for (slot, target) in out.iter_mut().zip(targets) {
        let dx = origin.x - target.x;
        let dy = origin.y - target.y;
        *slot = (dx * dx + dy * dy).sqrt();
    }
}

/// Reference scalar loop: per-element [`f64::min`].
fn pairwise_min_scalar(a: &[f64], b: &[f64], out: &mut [f64]) {
    for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *slot = x.min(y);
    }
}

/// `x86_64` vector kernels: AVX2 (4 lanes) and SSE2 (2 lanes, always in
/// the `x86_64` baseline, so callable without runtime detection).
///
/// Trajectory points are loaded as an array-of-structs `[x0, y0, x1,
/// y1, ...]` — sound because [`EuclideanPoint`] is `#[repr(C)]` with
/// two `f64` fields — then squared coordinates are de-interleaved with
/// `unpacklo`/`unpackhi` so each output lane computes exactly
/// `dx*dx + dy*dy` in scalar operand order before one correctly-rounded
/// vector square root.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{euclid_row_scalar, pairwise_min_scalar};
    use crate::point::EuclideanPoint;
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_min_pd, _mm256_mul_pd, _mm256_permute4x64_pd,
        _mm256_setr_pd, _mm256_sqrt_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_unpackhi_pd,
        _mm256_unpacklo_pd, _mm_add_pd, _mm_loadu_pd, _mm_min_pd, _mm_mul_pd, _mm_setr_pd,
        _mm_sqrt_pd, _mm_storeu_pd, _mm_sub_pd, _mm_unpackhi_pd, _mm_unpacklo_pd,
    };

    /// AVX2 Euclidean row: 4 points per iteration, scalar tail.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
    // SAFETY: contract is AVX2 availability, checked by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn euclid_row_avx2(
        origin: EuclideanPoint,
        targets: &[EuclideanPoint],
        out: &mut [f64],
    ) {
        let chunks = targets.len() / 4;
        let base = targets.as_ptr().cast::<f64>();
        // `base` points at `targets.len()` `#[repr(C)]` EuclideanPoint
        // values, i.e. `2 * targets.len()` contiguous f64s, so every
        // `base.add(..)` below stays in bounds for the `chunks * 4`
        // points read, and `out` has slots for every unaligned store.
        // SAFETY: in-bounds per above; AVX2 is this fn's contract.
        unsafe {
            let o = _mm256_setr_pd(origin.x, origin.y, origin.x, origin.y);
            for c in 0..chunks {
                let p = base.add(c * 8);
                // [x0, y0, x1, y1] and [x2, y2, x3, y3].
                let p01 = _mm256_loadu_pd(p);
                let p23 = _mm256_loadu_pd(p.add(4));
                let d01 = _mm256_sub_pd(o, p01);
                let d23 = _mm256_sub_pd(o, p23);
                let s01 = _mm256_mul_pd(d01, d01);
                let s23 = _mm256_mul_pd(d23, d23);
                // De-interleave squares: xs = [dx0², dx2², dx1², dx3²],
                // ys likewise, so xs + ys is dx² + dy² in scalar order.
                let xs = _mm256_unpacklo_pd(s01, s23);
                let ys = _mm256_unpackhi_pd(s01, s23);
                let sums = _mm256_add_pd(xs, ys);
                // [d0, d2, d1, d3] -> [d0, d1, d2, d3].
                let ordered = _mm256_permute4x64_pd::<0b1101_1000>(sums);
                _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), _mm256_sqrt_pd(ordered));
            }
        }
        euclid_row_scalar(origin, &targets[chunks * 4..], &mut out[chunks * 4..]);
    }

    /// SSE2 Euclidean row: 2 points per iteration, scalar tail.
    pub(super) fn euclid_row_sse2(
        origin: EuclideanPoint,
        targets: &[EuclideanPoint],
        out: &mut [f64],
    ) {
        let chunks = targets.len() / 2;
        let base = targets.as_ptr().cast::<f64>();
        // `base` covers `2 * targets.len()` contiguous f64s (see
        // `euclid_row_avx2`), so loads and stores stay in bounds.
        // SAFETY: in-bounds per above; SSE2 is in the x86_64 baseline.
        unsafe {
            let o = _mm_setr_pd(origin.x, origin.y);
            for c in 0..chunks {
                let p = base.add(c * 4);
                let p0 = _mm_loadu_pd(p);
                let p1 = _mm_loadu_pd(p.add(2));
                let d0 = _mm_sub_pd(o, p0);
                let d1 = _mm_sub_pd(o, p1);
                let s0 = _mm_mul_pd(d0, d0);
                let s1 = _mm_mul_pd(d1, d1);
                let xs = _mm_unpacklo_pd(s0, s1);
                let ys = _mm_unpackhi_pd(s0, s1);
                let sums = _mm_add_pd(xs, ys);
                _mm_storeu_pd(out.as_mut_ptr().add(c * 2), _mm_sqrt_pd(sums));
            }
        }
        euclid_row_scalar(origin, &targets[chunks * 2..], &mut out[chunks * 2..]);
    }

    /// AVX2 lane-wise minimum; `MINPD` equals `f64::min` on NaN-free,
    /// negative-zero-free inputs.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2; `a`, `b` and `out` must share one
    /// length (the dispatcher trims them).
    // SAFETY: contract is AVX2 availability, checked by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pairwise_min_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let chunks = out.len() / 4;
        // The three slices share `out.len()` elements per this fn's
        // contract, so each 4-lane load/store at `c * 4` is in bounds.
        // SAFETY: in-bounds per above; AVX2 per this fn's contract.
        unsafe {
            for c in 0..chunks {
                let av = _mm256_loadu_pd(a.as_ptr().add(c * 4));
                let bv = _mm256_loadu_pd(b.as_ptr().add(c * 4));
                _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), _mm256_min_pd(av, bv));
            }
        }
        pairwise_min_scalar(&a[chunks * 4..], &b[chunks * 4..], &mut out[chunks * 4..]);
    }

    /// SSE2 lane-wise minimum, 2 lanes per iteration.
    pub(super) fn pairwise_min_sse2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let chunks = out.len() / 2;
        // The dispatcher trims `a`, `b` and `out` to one shared length,
        // so each 2-lane load/store at `c * 2 < out.len()` is in bounds.
        // SAFETY: in-bounds per above; SSE2 is in the x86_64 baseline.
        unsafe {
            for c in 0..chunks {
                let av = _mm_loadu_pd(a.as_ptr().add(c * 2));
                let bv = _mm_loadu_pd(b.as_ptr().add(c * 2));
                _mm_storeu_pd(out.as_mut_ptr().add(c * 2), _mm_min_pd(av, bv));
            }
        }
        pairwise_min_scalar(&a[chunks * 2..], &b[chunks * 2..], &mut out[chunks * 2..]);
    }
}

/// `aarch64` NEON kernels (2 lanes; NEON is in the `aarch64` baseline).
///
/// Points load as two `[x, y]` pairs that `vuzp1q`/`vuzp2q`
/// de-interleave into x- and y-vectors; `FMINNM` (`vminnmq_f64`)
/// matches `f64::min` on the NaN-free kernel domain.
#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{euclid_row_scalar, pairwise_min_scalar};
    use crate::point::EuclideanPoint;
    use core::arch::aarch64::{
        vaddq_f64, vdupq_n_f64, vld1q_f64, vminnmq_f64, vmulq_f64, vsqrtq_f64, vst1q_f64,
        vsubq_f64, vuzp1q_f64, vuzp2q_f64,
    };

    /// NEON Euclidean row: 2 points per iteration, scalar tail.
    pub(super) fn euclid_row_neon(
        origin: EuclideanPoint,
        targets: &[EuclideanPoint],
        out: &mut [f64],
    ) {
        let chunks = targets.len() / 2;
        let base = targets.as_ptr().cast::<f64>();
        // `base` points at `2 * targets.len()` contiguous f64s
        // (EuclideanPoint is `#[repr(C)] { x: f64, y: f64 }`), so all
        // point loads and matching `out` stores below stay in bounds.
        // SAFETY: in-bounds per above; NEON is in the aarch64 baseline.
        unsafe {
            let ox = vdupq_n_f64(origin.x);
            let oy = vdupq_n_f64(origin.y);
            for c in 0..chunks {
                let p = base.add(c * 4);
                let q0 = vld1q_f64(p);
                let q1 = vld1q_f64(p.add(2));
                let xs = vuzp1q_f64(q0, q1);
                let ys = vuzp2q_f64(q0, q1);
                let dx = vsubq_f64(ox, xs);
                let dy = vsubq_f64(oy, ys);
                let sums = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
                vst1q_f64(out.as_mut_ptr().add(c * 2), vsqrtq_f64(sums));
            }
        }
        euclid_row_scalar(origin, &targets[chunks * 2..], &mut out[chunks * 2..]);
    }

    /// NEON lane-wise minimum via `FMINNM`, 2 lanes per iteration.
    pub(super) fn pairwise_min_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
        let chunks = out.len() / 2;
        // The dispatcher trims `a`, `b` and `out` to one shared length,
        // so each 2-lane load/store at `c * 2 < out.len()` is in bounds.
        // SAFETY: in-bounds per above; NEON is in the aarch64 baseline.
        unsafe {
            for c in 0..chunks {
                let av = vld1q_f64(a.as_ptr().add(c * 2));
                let bv = vld1q_f64(b.as_ptr().add(c * 2));
                vst1q_f64(out.as_mut_ptr().add(c * 2), vminnmq_f64(av, bv));
            }
        }
        pairwise_min_scalar(&a[chunks * 2..], &b[chunks * 2..], &mut out[chunks * 2..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroundDistance;

    fn walk(n: usize, seed: u64) -> Vec<EuclideanPoint> {
        // Small deterministic LCG walk; values span sign changes and
        // repeated points.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut pts = Vec::with_capacity(n);
        let (mut x, mut y) = (0.0f64, 0.0f64);
        for i in 0..n {
            if i % 7 != 3 {
                // Occasionally keep the previous point (duplicates).
                x += next();
                y += next();
            }
            pts.push(EuclideanPoint::new(x, y));
        }
        pts
    }

    #[test]
    fn every_supported_kernel_matches_scalar_bitwise() {
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 64, 65] {
            let pts = walk(n, 42 + n as u64);
            let origin = EuclideanPoint::new(0.25, -0.75);
            let mut reference = vec![0.0; n];
            euclid_row_with(Kernel::Scalar, origin, &pts, &mut reference);
            for (slot, p) in reference.iter().zip(&pts) {
                assert_eq!(slot.to_bits(), origin.distance(p).to_bits());
            }
            for kernel in [Kernel::Avx2, Kernel::Sse2, Kernel::Neon] {
                if !kernel.supported() {
                    continue;
                }
                let mut got = vec![f64::NAN; n];
                euclid_row_with(kernel, origin, &pts, &mut got);
                for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "kernel {kernel:?} lane {k} of {n} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn unsupported_kernel_falls_back_to_scalar() {
        let pts = walk(9, 7);
        let origin = EuclideanPoint::new(1.0, 2.0);
        let mut reference = vec![0.0; 9];
        euclid_row_with(Kernel::Scalar, origin, &pts, &mut reference);
        // On any given host at least one of these is unsupported; the
        // call must still produce scalar-identical output.
        for kernel in [Kernel::Avx2, Kernel::Sse2, Kernel::Neon] {
            let mut got = vec![0.0; 9];
            euclid_row_with(kernel, origin, &pts, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pairwise_min_matches_scalar_including_infinities() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 33] {
            let mut a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5).collect();
            let mut b: Vec<f64> = (0..n).map(|i| ((n - i) as f64) * 0.25).collect();
            if n > 2 {
                a[1] = f64::INFINITY;
                b[2] = f64::INFINITY;
                a[0] = 0.0;
                b[0] = 0.0;
            }
            let mut reference = vec![0.0; n];
            pairwise_min_with(Kernel::Scalar, &a, &b, &mut reference);
            for kernel in [Kernel::Avx2, Kernel::Sse2, Kernel::Neon] {
                if !kernel.supported() {
                    continue;
                }
                let mut got = vec![f64::NAN; n];
                pairwise_min_with(kernel, &a, &b, &mut got);
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.to_bits(), r.to_bits());
                }
            }
        }
    }

    #[test]
    fn partial_prefix_is_written() {
        let pts = walk(6, 1);
        let origin = EuclideanPoint::new(0.0, 0.0);
        let mut out = vec![-1.0; 4];
        euclid_row(origin, &pts, &mut out);
        assert!(out.iter().all(|v| *v >= 0.0));
        let mut short = vec![-1.0; 8];
        euclid_row(origin, &pts[..2], &mut short);
        assert!(short[2..].iter().all(|v| *v == -1.0));
    }

    #[test]
    fn kernel_names_and_detection_are_consistent() {
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Avx2.name(), "avx2");
        assert_eq!(Kernel::Sse2.name(), "sse2");
        assert_eq!(Kernel::Neon.name(), "neon");
        assert!(Kernel::Scalar.supported());
        assert!(Kernel::detect().supported());
        assert!(Kernel::active().supported());
    }
}
