//! Buffer manager for the engine's memoized search state.
//!
//! PR 2's cache made warm queries fast but bounded memory only by
//! *wholesale* eviction: any limit breach dropped the entire warm set.
//! This module replaces that with a classic database buffer manager over
//! variable-size entries:
//!
//! * **Per-entry byte accounting** — every cached [`DenseMatrix`] and
//!   [`BoundTables`] is sized individually ([`Frame::bytes`]), and the
//!   pool tracks the resident total against an optional byte limit.
//! * **LRU replacement** — when an insert pushes the pool over its
//!   limit, victims are chosen entry-by-entry by an exact
//!   least-recently-used [`replacer::LruReplacer`], so the hot working
//!   set stays resident while cold entries make room.
//! * **Pin counts** — entries handed to an executing query are pinned
//!   and can never be evicted until the query completes. Rust's borrow
//!   checker already prevents the single-threaded engine from mutating
//!   the pool while a query holds references (including the parallel
//!   workers, which borrow inside the query), so pins are the *runtime*
//!   enforcement of the same rule across the multi-entry build sequences
//!   inside one lookup: building a query's bound tables may trigger
//!   eviction, and the matrix pinned moments earlier must survive it.
//! * **Disk spill** — with a spill directory configured, evicted
//!   matrices are written to a length-prefixed on-disk format
//!   ([`spill`]) and rehydrated on a later miss, which costs a
//!   sequential read instead of `O(n²)` ground-distance evaluations.
//!
//! The pool is policy-free about *what* is cached: the key vocabulary
//! ([`ScopeKey`], [`EntryKey`]) and the build-or-reuse logic live in
//! [`super::cache::CorpusCache`], which layers the motif-specific
//! memoization on top of this module's residency management.

pub(crate) mod replacer;
pub(crate) mod spill;

use std::collections::HashMap;
use std::path::Path;

use fremo_trajectory::{DenseMatrix, DistanceSource as _};

use crate::bounds::BoundTables;

use super::cache::CacheReport;
use replacer::LruReplacer;
use spill::SpillStore;

/// Which distance matrix a cached computation is over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ScopeKey {
    /// Within one trajectory (upper-triangle matrix).
    Within(usize),
    /// Between two trajectories, in this order.
    Between(usize, usize),
}

/// Identity of one buffer-pool entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum EntryKey {
    /// A dense ground-distance matrix for a scope.
    Matrix(ScopeKey),
    /// Bound tables for `(scope, ξ, tight?)`.
    Tables(ScopeKey, usize, bool),
}

/// What a frame holds.
pub(crate) enum Payload {
    /// A dense ground-distance matrix.
    Matrix(DenseMatrix),
    /// Bound tables.
    Tables(BoundTables),
}

impl Payload {
    /// Heap bytes of the held structure (the frame's accounting unit).
    fn bytes(&self) -> usize {
        match self {
            Payload::Matrix(m) => m.bytes(),
            Payload::Tables(t) => t.bytes(),
        }
    }
}

/// One resident entry: its payload, size, and pin count.
struct Frame {
    payload: Payload,
    /// Byte size at insert time (payloads are immutable).
    bytes: usize,
    /// How many times the running query has pinned this entry; only
    /// entries with `pins == 0` are eviction candidates.
    pins: u32,
}

/// The buffer pool: resident frames, replacement state, and the
/// optional disk spill tier.
pub(crate) struct BufferPool {
    frames: HashMap<EntryKey, Frame>,
    replacer: LruReplacer<EntryKey>,
    /// Pins taken by the running query, in access order; replayed at
    /// query end so LRU stamps reflect within-query use order
    /// deterministically (hash-map iteration order never leaks into
    /// eviction decisions).
    pin_log: Vec<EntryKey>,
    resident_bytes: usize,
    limit: Option<usize>,
    spill: Option<SpillStore>,
    /// Lifetime counters plus the `resident_bytes` gauge.
    pub(crate) counters: CacheReport,
}

impl BufferPool {
    pub(crate) fn new() -> Self {
        BufferPool {
            frames: HashMap::new(),
            replacer: LruReplacer::new(),
            pin_log: Vec::new(),
            resident_bytes: 0,
            limit: None,
            spill: None,
            counters: CacheReport::default(),
        }
    }

    /// Replaces the byte limit and immediately evicts down to it (all
    /// entries are unpinned between queries).
    pub(crate) fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit;
        self.enforce_limit();
    }

    /// Enables (or disables) the disk spill tier.
    pub(crate) fn set_spill(&mut self, root: Option<&Path>, engine_id: u64) {
        self.spill = root.map(|r| SpillStore::new(r, engine_id));
    }

    /// Resident heap bytes (spilled entries excluded).
    pub(crate) fn bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Whether `key` is resident right now.
    #[cfg(test)]
    pub(crate) fn contains(&self, key: EntryKey) -> bool {
        self.frames.contains_key(&key)
    }

    /// Pins `key` if resident, logging the access; `true` on a hit.
    pub(crate) fn pin_if_resident(&mut self, key: EntryKey) -> bool {
        let Some(frame) = self.frames.get_mut(&key) else {
            return false;
        };
        frame.pins += 1;
        self.replacer.remove(&key);
        self.pin_log.push(key);
        true
    }

    /// Inserts a fresh entry, pinned for the running query, then evicts
    /// unpinned entries while over the limit. An entry larger than the
    /// whole limit is still admitted — the query needs it — and falls
    /// out at query end.
    pub(crate) fn insert(&mut self, key: EntryKey, payload: Payload) {
        let bytes = payload.bytes();
        debug_assert!(!self.frames.contains_key(&key), "insert over resident key");
        self.frames.insert(
            key,
            Frame {
                payload,
                bytes,
                pins: 1,
            },
        );
        self.pin_log.push(key);
        self.resident_bytes += bytes;
        self.counters.resident_bytes = self.resident_bytes as u64;
        self.enforce_limit();
    }

    /// Rehydrates the spilled matrix for `scope` if the spill tier holds
    /// one, inserting it pinned; `true` when loaded.
    pub(crate) fn unspill_matrix(&mut self, scope: ScopeKey) -> bool {
        let Some(matrix) = self.spill.as_ref().and_then(|s| s.load(scope)) else {
            return false;
        };
        self.counters.spill_loads += 1;
        self.insert(EntryKey::Matrix(scope), Payload::Matrix(matrix));
        true
    }

    /// The resident matrix for `scope`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not resident — callers ensure residency
    /// (and a pin) first.
    pub(crate) fn matrix(&self, scope: ScopeKey) -> &DenseMatrix {
        match &self.frames[&EntryKey::Matrix(scope)].payload {
            Payload::Matrix(m) => m,
            Payload::Tables(_) => unreachable!("matrix keys hold matrix payloads"),
        }
    }

    /// The resident bound tables for `(scope, ξ, tight?)`.
    ///
    /// # Panics
    ///
    /// Panics when the tables are not resident.
    pub(crate) fn tables(&self, scope: ScopeKey, xi: usize, tight: bool) -> &BoundTables {
        match &self.frames[&EntryKey::Tables(scope, xi, tight)].payload {
            Payload::Tables(t) => t,
            Payload::Matrix(_) => unreachable!("table keys hold table payloads"),
        }
    }

    /// Ends the running query: releases every pin (replaying accesses in
    /// order, so LRU stamps match within-query use order) and evicts
    /// down to the limit now that nothing is in use.
    pub(crate) fn finish_query(&mut self) {
        let log = std::mem::take(&mut self.pin_log);
        for key in log {
            if let Some(frame) = self.frames.get_mut(&key) {
                frame.pins = 0;
                self.replacer.touch(key);
            }
        }
        self.enforce_limit();
    }

    /// Evicts least-recently-used unpinned entries while over the limit.
    fn enforce_limit(&mut self) {
        let Some(limit) = self.limit else { return };
        while self.resident_bytes > limit {
            let Some(victim) = self.replacer.victim() else {
                // Everything left is pinned; the running query's working
                // set may legitimately exceed the limit until it ends.
                break;
            };
            self.evict(victim);
        }
    }

    /// Removes one unpinned entry, spilling matrices when a spill tier
    /// is configured (a failed spill write degrades to a plain drop:
    /// memory stays bounded and the matrix rebuilds on its next use).
    fn evict(&mut self, key: EntryKey) {
        let frame = self
            .frames
            .remove(&key)
            // fremo-lint: allow(L3) -- the replacer's candidate set is kept
            // in lockstep with `frames` (insert/remove pairs); a miss here
            // is accounting corruption that must not be papered over.
            .expect("replacer only yields resident keys");
        debug_assert_eq!(frame.pins, 0, "pinned entries are never victims");
        self.resident_bytes -= frame.bytes;
        self.counters.evictions += 1;
        self.counters.resident_bytes = self.resident_bytes as u64;
        if let (EntryKey::Matrix(scope), Payload::Matrix(m), Some(store)) =
            (key, &frame.payload, &self.spill)
        {
            // Matrices are immutable per key, so a file written by an
            // earlier eviction is still exact — skip the rewrite.
            if !store.contains(scope) && store.store(scope, m).is_ok() {
                self.counters.spills += 1;
            }
        }
    }

    /// Drops every resident entry and spill file (counters are kept —
    /// they are lifetime totals).
    pub(crate) fn clear(&mut self) {
        self.frames.clear();
        self.replacer.clear();
        self.pin_log.clear();
        self.resident_bytes = 0;
        self.counters.resident_bytes = 0;
        if let Some(store) = &self.spill {
            store.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_of(n: usize, fill: f64) -> DenseMatrix {
        DenseMatrix::from_raw(n, n, vec![fill; n * n])
    }

    fn pool_with(entries: &[(usize, usize)]) -> BufferPool {
        // (scope index, matrix side) pairs, inserted and unpinned in order.
        let mut pool = BufferPool::new();
        for &(i, n) in entries {
            pool.insert(
                EntryKey::Matrix(ScopeKey::Within(i)),
                Payload::Matrix(matrix_of(n, i as f64)),
            );
        }
        pool.finish_query();
        pool
    }

    #[test]
    fn lru_victim_goes_first_and_accounting_tracks_bytes() {
        let mut pool = pool_with(&[(0, 8), (1, 8), (2, 8)]);
        let per_entry = 8 * 8 * 8;
        assert_eq!(pool.bytes(), 3 * per_entry);

        // Re-use entry 0 so the LRU order becomes 1, 2, 0.
        assert!(pool.pin_if_resident(EntryKey::Matrix(ScopeKey::Within(0))));
        pool.finish_query();

        // Room for two entries: the least recently used (1) must go.
        pool.set_limit(Some(2 * per_entry));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(2))));
        assert_eq!(pool.counters.evictions, 1);
        assert_eq!(pool.bytes(), 2 * per_entry);
        assert_eq!(pool.counters.resident_bytes, (2 * per_entry) as u64);
    }

    #[test]
    fn pinned_entries_survive_any_pressure() {
        let mut pool = pool_with(&[(0, 8), (1, 8), (2, 8)]);
        assert!(pool.pin_if_resident(EntryKey::Matrix(ScopeKey::Within(1))));

        // A zero-byte limit evicts everything evictable — but never the
        // pinned entry, even though it is far over the limit.
        pool.set_limit(Some(0));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(2))));
        assert_eq!(pool.counters.evictions, 2);

        // Once the query ends, the limit applies to it too.
        pool.finish_query();
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert_eq!(pool.bytes(), 0);
        assert_eq!(pool.counters.evictions, 3);
    }

    #[test]
    fn oversized_entries_are_admitted_for_the_running_query() {
        let mut pool = BufferPool::new();
        pool.set_limit(Some(10));
        pool.insert(
            EntryKey::Matrix(ScopeKey::Within(0)),
            Payload::Matrix(matrix_of(16, 0.5)),
        );
        // Pinned: resident despite blowing the limit.
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        pool.finish_query();
        // Unpinned at query end: evicted.
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
    }

    #[test]
    fn eviction_spills_matrices_and_unspill_restores_them() {
        let root =
            std::env::temp_dir().join(format!("fremo-pool-test-{}-spill", std::process::id()));
        let mut pool = BufferPool::new();
        pool.set_spill(Some(&root), 9001);
        let scope = ScopeKey::Within(5);
        let original = matrix_of(6, 2.5);
        pool.insert(EntryKey::Matrix(scope), Payload::Matrix(original.clone()));
        pool.finish_query();

        pool.set_limit(Some(0));
        assert_eq!(pool.counters.evictions, 1);
        assert_eq!(pool.counters.spills, 1);
        assert!(!pool.contains(EntryKey::Matrix(scope)));

        pool.set_limit(None);
        assert!(pool.unspill_matrix(scope));
        assert_eq!(pool.counters.spill_loads, 1);
        for (a, b) in original.raw().iter().zip(pool.matrix(scope).raw()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Re-evicting an already-spilled matrix skips the rewrite.
        pool.finish_query();
        pool.set_limit(Some(0));
        assert_eq!(pool.counters.evictions, 2);
        assert_eq!(pool.counters.spills, 1);

        pool.clear();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn clear_drops_entries_and_spill_files() {
        let root =
            std::env::temp_dir().join(format!("fremo-pool-test-{}-clear", std::process::id()));
        let mut pool = BufferPool::new();
        pool.set_spill(Some(&root), 9002);
        let scope = ScopeKey::Within(1);
        pool.insert(EntryKey::Matrix(scope), Payload::Matrix(matrix_of(4, 1.0)));
        pool.finish_query();
        pool.set_limit(Some(0));
        assert_eq!(pool.counters.spills, 1);

        pool.set_limit(None);
        pool.clear();
        assert_eq!(pool.bytes(), 0);
        // The spill tier was cleared with the pool: nothing to rehydrate.
        assert!(!pool.unspill_matrix(scope));
        let _ = std::fs::remove_dir_all(root);
    }
}
