//! Table 1: similarity measures and their characteristics.
//!
//! The paper's Table 1 is qualitative (robustness flags + asymptotic
//! cost). We regenerate it *empirically*: the robustness flags are taken
//! from the measure implementations and verified by two constructed
//! workloads (a resampling test and a time-shift test), and the cost
//! column is measured in microseconds on a 500-point pair.

use std::time::Instant;

use fremo_similarity::{
    DiscreteFrechet, Dtw, Edr, Hausdorff, Lcss, LockstepEuclidean, SimilarityMeasure,
};
use fremo_trajectory::EuclideanPoint;

use crate::experiments::Titled;
use crate::scale::Scale;
use crate::table::Table;

fn measures() -> Vec<Box<dyn SimilarityMeasure<EuclideanPoint>>> {
    vec![
        Box::new(LockstepEuclidean),
        Box::new(Dtw),
        Box::new(Lcss::new(0.5)),
        Box::new(Edr::new(0.5)),
        Box::new(DiscreteFrechet),
        Box::new(Hausdorff),
    ]
}

/// A smooth path sampled `n` times, with optional heavy oversampling of
/// the first 20% (the non-uniform-sampling stressor of Figure 3; an
/// oversampled trace has *more* points, like a chatty GPS logger).
fn sampled_path(n: usize, oversample_head: bool, offset: f64) -> Vec<EuclideanPoint> {
    let point = |s: f64| EuclideanPoint::new(s * 10.0, offset + (s * 6.0).sin());
    if oversample_head {
        let total = 5 * n;
        let head = (total as f64 * 0.8) as usize;
        let mut points = Vec::with_capacity(total);
        for k in 0..head {
            points.push(point(0.2 * k as f64 / head as f64));
        }
        for k in 0..(total - head) {
            points.push(point(
                0.2 + 0.8 * k as f64 / (total - head - 1).max(1) as f64,
            ));
        }
        points
    } else {
        (0..n).map(|k| point(k as f64 / (n - 1) as f64)).collect()
    }
}

/// Empirical check: does the measure rank a *non-uniformly resampled* copy
/// of the same path closer than a genuinely different path? (Yes ⇒ robust
/// to sampling-rate variation.)
fn passes_resampling_test(m: &dyn SimilarityMeasure<EuclideanPoint>) -> bool {
    let sa = sampled_path(120, false, 0.0);
    let sb = sampled_path(120, false, 0.3); // different path (offset 0.3)
    let sc = sampled_path(120, true, 0.1); // same path, non-uniform samples
    m.distance(&sa, &sc) < m.distance(&sa, &sb)
}

/// Empirical check: is the measure tolerant to a local time shift (a short
/// stall at the start)? Lock-step ED is not; the elastic measures are.
fn passes_time_shift_test(m: &dyn SimilarityMeasure<EuclideanPoint>) -> bool {
    let sa: Vec<EuclideanPoint> = (0..100)
        .map(|k| EuclideanPoint::new(k as f64, 0.0))
        .collect();
    // Same full path, but the sampler stalled for 10 ticks at the origin
    // before continuing (local time shift, no missing tail).
    let mut sb: Vec<EuclideanPoint> = vec![EuclideanPoint::new(0.0, 0.0); 10];
    sb.extend((0..100).map(|k| EuclideanPoint::new(k as f64, 0.0)));
    // A path at constant offset 3 with no stall.
    let sc: Vec<EuclideanPoint> = (0..100)
        .map(|k| EuclideanPoint::new(k as f64, 3.0))
        .collect();
    m.distance(&sa, &sb) < m.distance(&sa, &sc)
}

/// Regenerates Table 1.
#[must_use]
pub fn run(_scale: Scale) -> Vec<Titled> {
    let a = sampled_path(500, false, 0.0);
    let b = sampled_path(500, true, 0.1);

    let mut table = Table::new(vec![
        "measure",
        "rate-robust (claimed)",
        "rate-robust (tested)",
        "shift-ok (claimed)",
        "shift-ok (tested)",
        "cost @500 (us)",
    ]);
    for m in measures() {
        // Warm then time.
        let _ = m.distance(&a, &b);
        let t0 = Instant::now();
        let iters = 5;
        for _ in 0..iters {
            std::hint::black_box(m.distance(&a, &b));
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
        table.row(vec![
            m.name().to_string(),
            yesno(m.robust_to_sampling_rate()),
            yesno(passes_resampling_test(m.as_ref())),
            yesno(m.supports_local_time_shifting()),
            yesno(passes_time_shift_test(m.as_ref())),
            format!("{us:.1}"),
        ]);
    }
    vec![(
        "Table 1: distance measures and their characteristics".to_string(),
        table,
    )]
}

fn yesno(b: bool) -> String {
    (if b { "yes" } else { "no" }).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfd_passes_both_empirical_tests() {
        let dfd = DiscreteFrechet;
        assert!(passes_resampling_test(&dfd));
        assert!(passes_time_shift_test(&dfd));
    }

    #[test]
    fn dtw_fails_resampling_but_passes_shift() {
        let dtw = Dtw;
        assert!(
            !passes_resampling_test(&dtw),
            "DTW should be fooled by oversampling"
        );
        assert!(passes_time_shift_test(&dtw));
    }

    #[test]
    fn ed_fails_time_shift() {
        assert!(!passes_time_shift_test(&LockstepEuclidean));
    }

    #[test]
    fn table_renders() {
        let t = run(Scale::Smoke);
        assert_eq!(t.len(), 1);
        let rendered = t[0].1.render();
        assert!(rendered.contains("DFD"));
        assert!(rendered.contains("DTW"));
    }
}
