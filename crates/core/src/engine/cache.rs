//! Per-corpus memoization of search state, buffer-managed and shared
//! between concurrent sessions.
//!
//! The expensive, query-independent part of every dense-matrix algorithm
//! is the `O(n²)` ground-distance matrix plus the bound tables derived
//! from it. Both depend only on the trajectory (matrix) and on `(ξ,
//! tight-vs-relaxed)` (tables) — never on the query's algorithm, budget,
//! k, or the individual bound-family toggles — so *every session* serving
//! traffic on the same corpus can share each structure, built exactly
//! once.
//!
//! [`CorpusCache`] owns that build-or-reuse logic; *residency* — byte
//! accounting, per-entry LRU eviction, pin counts, and the optional disk
//! spill tier — is delegated to the [`super::buffer`] module's
//! [`BufferPool`]. Every method here takes `&self`: per-query state (the
//! pin log and the session-local activity tallies) lives in the caller's
//! [`QueryCtx`], not in the cache. Every lookup pins what it returns and
//! records the pin in the session's log, so an entry in use by one
//! session's query can never be evicted from under it — even while other
//! sessions churn the pool; the session releases exactly its own pins
//! when the query completes (see [`CorpusCache::finish_query`]). Cold
//! misses are single-flight: concurrent sessions missing the same key
//! build it once and share the result. The full design, including how to
//! size the limit, is documented in `docs/CACHING.md`; the concurrency
//! argument is in `docs/SERVING.md`.

use std::io;
use std::sync::Arc;

use fremo_trajectory::{DenseMatrix, GroundDistance, LazyDistances};

use crate::bounds::BoundTables;
use crate::config::BoundSelection;
use crate::domain::Domain;

use super::buffer::{BufferPool, BuildSlot, EntryKey, Payload, PinLog, ScopeKey};

/// Cache activity of one query (or cumulative totals on
/// [`super::EngineStats`]).
///
/// All fields except [`CacheReport::resident_bytes`] are monotonic
/// counters; `resident_bytes` is a gauge — the bytes resident at the
/// moment of the snapshot (for a per-query report, right after the
/// query's pins were released and the limit enforced).
///
/// Per-query reports are **session-local tallies**, not differences of
/// global snapshots: a query counts exactly the lookups *it* performed,
/// so concurrent sessions' activity can never bleed into (or mask) each
/// other's reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheReport {
    /// Distance matrices computed from scratch.
    pub matrices_built: u64,
    /// Distance matrices served from the resident cache.
    pub matrices_reused: u64,
    /// Bound tables computed from scratch.
    pub tables_built: u64,
    /// Bound tables served from the resident cache.
    pub tables_reused: u64,
    /// Entries evicted from the resident set (spilled ones included).
    pub evictions: u64,
    /// Matrices written to the disk spill tier on eviction.
    pub spills: u64,
    /// Matrices rehydrated from the spill tier instead of rebuilt.
    pub spill_loads: u64,
    /// Heap bytes resident at snapshot time (a gauge, not a counter).
    pub resident_bytes: u64,
}

impl CacheReport {
    /// Total structures recomputed by this query — the number a warm
    /// cache drives to zero.
    #[must_use]
    pub const fn recomputed(&self) -> u64 {
        self.matrices_built + self.tables_built
    }

    /// Total structures served from the resident cache (disk rehydrates
    /// are counted by [`CacheReport::spill_loads`], not here).
    #[must_use]
    pub const fn reused(&self) -> u64 {
        self.matrices_reused + self.tables_reused
    }

    /// Lookups that avoided a recompute: resident reuses plus disk
    /// rehydrates.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.reused() + self.spill_loads
    }

    /// Total matrix/table lookups (every lookup is exactly one of
    /// built, reused, or rehydrated, so this equals
    /// `recomputed() + hits()`).
    #[must_use]
    pub const fn lookups(&self) -> u64 {
        self.recomputed() + self.hits()
    }

    /// Fraction of lookups served without a recompute (`0.0` when there
    /// were no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.hits() as f64 / lookups as f64
    }

    /// The activity between `earlier` and `self`, two snapshots of the
    /// same cumulative totals (e.g. [`super::EngineStats`]`::cache`
    /// taken before and after a batch).
    ///
    /// Totals are monotonic, so `earlier` exceeding `self` means the
    /// snapshots were taken from different engines or out of order —
    /// a misuse this method reports via `debug_assert!` rather than
    /// masking with silent saturation (the release build still clamps
    /// rather than wrapping). The `resident_bytes` gauge carries the
    /// later snapshot's value.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheReport) -> CacheReport {
        let sub = |field: &str, now: u64, then: u64| {
            debug_assert!(
                now >= then,
                "delta_since: `{field}` went backwards ({now} < {then}); \
                 snapshots are from different engines or swapped"
            );
            now.saturating_sub(then)
        };
        CacheReport {
            matrices_built: sub(
                "matrices_built",
                self.matrices_built,
                earlier.matrices_built,
            ),
            matrices_reused: sub(
                "matrices_reused",
                self.matrices_reused,
                earlier.matrices_reused,
            ),
            tables_built: sub("tables_built", self.tables_built, earlier.tables_built),
            tables_reused: sub("tables_reused", self.tables_reused, earlier.tables_reused),
            evictions: sub("evictions", self.evictions, earlier.evictions),
            spills: sub("spills", self.spills, earlier.spills),
            spill_loads: sub("spill_loads", self.spill_loads, earlier.spill_loads),
            resident_bytes: self.resident_bytes,
        }
    }
}

/// One query's cache context: the pin log (which entries to unpin at
/// query end, in access order) and the session-local activity tallies.
/// Owned by the session, lent to the cache for the query's duration —
/// pool-global mutable query state is what made the old design
/// single-writer.
#[derive(Default)]
pub(crate) struct QueryCtx {
    /// Pins taken by this query, in access order.
    pub(crate) log: PinLog,
    /// This query's lookup/eviction tallies (merged into the engine
    /// totals at [`CorpusCache::finish_query`]).
    pub(crate) local: CacheReport,
}

impl QueryCtx {
    /// Whether the context holds no unreleased pins.
    pub(crate) fn is_clean(&self) -> bool {
        self.log.is_empty()
    }
}

/// Unwraps a matrix payload.
fn as_matrix(payload: Payload) -> Arc<DenseMatrix> {
    match payload {
        Payload::Matrix(m) => m,
        // `EntryKey::Matrix` slots only ever receive `Payload::Matrix`
        // (both insert sites are in this file), so this arm is dead.
        Payload::Tables(_) => unreachable!("matrix key held a tables payload"),
    }
}

/// Unwraps a tables payload.
fn as_tables(payload: Payload) -> Arc<BoundTables> {
    match payload {
        Payload::Tables(t) => t,
        // `EntryKey::Tables` slots only ever receive `Payload::Tables`.
        Payload::Matrix(_) => unreachable!("tables key held a matrix payload"),
    }
}

/// The engine's memo: distance matrices per scope, bound tables per
/// `(scope, ξ, tight?)`, resident in a [`BufferPool`] shared by all
/// sessions.
///
/// [`BoundTables::build`] depends on the selection only through
/// `sel.tight` (the cell/cross/band/end-cross flags gate *lookups*, not
/// table construction), so keying by the flag set would rebuild and
/// store byte-identical tables for every flag combination.
pub(crate) struct CorpusCache {
    pool: BufferPool,
}

impl Default for CorpusCache {
    fn default() -> Self {
        CorpusCache {
            pool: BufferPool::new(),
        }
    }
}

impl CorpusCache {
    /// Lifetime counters plus the resident-bytes gauge.
    pub(crate) fn report(&self) -> CacheReport {
        self.pool.counters()
    }

    /// Caps resident bytes (per-entry LRU eviction; `None` = unbounded).
    /// Applies immediately: entries are evicted down to the new limit
    /// (running sessions' pinned entries excepted).
    pub(crate) fn set_limit(&self, bytes: Option<usize>) {
        self.pool.set_limit(bytes);
    }

    /// Enables (or disables) the disk spill tier under `root`.
    ///
    /// # Errors
    ///
    /// Fails when the per-engine spill directory cannot be created or
    /// collides with a live one (see [`super::buffer::spill`]).
    pub(crate) fn set_spill(
        &self,
        root: Option<&std::path::Path>,
        engine_id: u64,
    ) -> io::Result<()> {
        if root.is_some() {
            // Release any previous store first: its Drop removes the
            // claimed directory, so re-configuring the same engine to
            // the same root is not a collision with itself.
            self.pool.set_spill(None, engine_id)?;
        }
        self.pool.set_spill(root, engine_id)
    }

    /// Completes one query: releases exactly the pins in `ctx`'s log,
    /// folds its tallies into the lifetime totals, enforces the byte
    /// limit, and returns the per-query report (with the
    /// post-enforcement resident-bytes gauge). Resets `ctx` for the
    /// session's next query.
    pub(crate) fn finish_query(&self, ctx: &mut QueryCtx) -> CacheReport {
        self.pool.finish_query(&mut ctx.log, &mut ctx.local)
    }

    /// The distance matrix for `key`, resident and pinned for `ctx`'s
    /// query — counting the lookup as exactly one of: resident reuse,
    /// spill rehydrate, or fresh build.
    ///
    /// `threads >= 1` builds a cold matrix through the row-chunked
    /// parallel constructors — bit-for-bit identical to the serial
    /// build, so one cached matrix serves serial and parallel queries
    /// alike (and one spill file serves both after an eviction).
    pub(crate) fn matrix<P: GroundDistance + Sync>(
        &self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        threads: usize,
        ctx: &mut QueryCtx,
    ) -> Arc<DenseMatrix> {
        let ekey = EntryKey::Matrix(key);
        loop {
            if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                ctx.local.matrices_reused += 1;
                return as_matrix(p);
            }
            match self.pool.begin_build(ekey) {
                BuildSlot::Builder(_permit) => {
                    // The previous builder may have landed between our
                    // probe and winning the permit: re-probe once.
                    if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                        ctx.local.matrices_reused += 1;
                        return as_matrix(p);
                    }
                    if let Some(store) = self.pool.spill_store() {
                        if let Some(m) = store.load(key) {
                            ctx.local.spill_loads += 1;
                            let p = self.pool.insert_tallied(
                                ekey,
                                Payload::Matrix(Arc::new(m)),
                                &mut ctx.log,
                                &mut ctx.local,
                            );
                            return as_matrix(p);
                        }
                    }
                    let matrix = match b {
                        None => DenseMatrix::within_parallel(a, threads),
                        Some(b) => DenseMatrix::between_parallel(a, b, threads),
                    };
                    ctx.local.matrices_built += 1;
                    let p = self.pool.insert_tallied(
                        ekey,
                        Payload::Matrix(Arc::new(matrix)),
                        &mut ctx.log,
                        &mut ctx.local,
                    );
                    return as_matrix(p);
                }
                BuildSlot::Waited => continue,
            }
        }
    }

    /// The `(key, ξ, sel.tight)` bound tables, resident and pinned for
    /// `ctx`'s query, built from `matrix` on a miss.
    fn ensure_table(
        &self,
        key: ScopeKey,
        matrix: &DenseMatrix,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        ctx: &mut QueryCtx,
    ) -> Arc<BoundTables> {
        let ekey = EntryKey::Tables(key, xi, sel.tight);
        loop {
            if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                ctx.local.tables_reused += 1;
                return as_tables(p);
            }
            match self.pool.begin_build(ekey) {
                BuildSlot::Builder(_permit) => {
                    if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                        ctx.local.tables_reused += 1;
                        return as_tables(p);
                    }
                    let tables = BoundTables::build(matrix, domain, xi, sel);
                    ctx.local.tables_built += 1;
                    let p = self.pool.insert_tallied(
                        ekey,
                        Payload::Tables(Arc::new(tables)),
                        &mut ctx.log,
                        &mut ctx.local,
                    );
                    return as_tables(p);
                }
                BuildSlot::Waited => continue,
            }
        }
    }

    /// GTM*'s working set: the cached dense matrix *if one is resident*
    /// (never built or rehydrated — GTM* must not create the `O(n²)`
    /// allocation it exists to avoid) plus the relaxed bound tables,
    /// cached and built from the best available distance source.
    pub(crate) fn gtm_star_prepared<P: GroundDistance>(
        &self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        ctx: &mut QueryCtx,
    ) -> (Option<Arc<DenseMatrix>>, Arc<BoundTables>) {
        let matrix = self
            .pool
            .pin_if_resident(EntryKey::Matrix(key), &mut ctx.log)
            .map(as_matrix);
        if matrix.is_some() {
            ctx.local.matrices_reused += 1;
        }
        let ekey = EntryKey::Tables(key, xi, false);
        let tables = loop {
            if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                ctx.local.tables_reused += 1;
                break as_tables(p);
            }
            match self.pool.begin_build(ekey) {
                BuildSlot::Builder(_permit) => {
                    if let Some(p) = self.pool.pin_if_resident(ekey, &mut ctx.log) {
                        ctx.local.tables_reused += 1;
                        break as_tables(p);
                    }
                    let sel = BoundSelection::all_relaxed();
                    let tables = match &matrix {
                        Some(m) => BoundTables::build(m.as_ref(), domain, xi, sel),
                        None => match b {
                            None => BoundTables::build(&LazyDistances::within(a), domain, xi, sel),
                            Some(b) => {
                                BoundTables::build(&LazyDistances::between(a, b), domain, xi, sel)
                            }
                        },
                    };
                    ctx.local.tables_built += 1;
                    let p = self.pool.insert_tallied(
                        ekey,
                        Payload::Tables(Arc::new(tables)),
                        &mut ctx.log,
                        &mut ctx.local,
                    );
                    break as_tables(p);
                }
                BuildSlot::Waited => continue,
            }
        };
        (matrix, tables)
    }

    /// The cached matrix *and* bound tables for `(key, ξ, sel)`, pinned
    /// for `ctx`'s query.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared<P: GroundDistance + Sync>(
        &self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        threads: usize,
        ctx: &mut QueryCtx,
    ) -> (Arc<DenseMatrix>, Arc<BoundTables>) {
        let (matrix, tables, _) =
            self.prepared_with_relaxed(key, a, b, domain, xi, sel, false, threads, ctx);
        (matrix, tables)
    }

    /// [`CorpusCache::prepared`], optionally also ensuring the *relaxed*
    /// tables GTM's grouping machinery needs when `sel` selects tight
    /// bounds (the third return value; `None` when `sel` is already
    /// relaxed or `want_relaxed` is `false`).
    ///
    /// The matrix is pinned before any table build, so a table insert
    /// that pushes the pool over its limit can evict cold entries but
    /// never the matrix this call returns.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared_with_relaxed<P: GroundDistance + Sync>(
        &self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        want_relaxed: bool,
        threads: usize,
        ctx: &mut QueryCtx,
    ) -> (Arc<DenseMatrix>, Arc<BoundTables>, Option<Arc<BoundTables>>) {
        let matrix = self.matrix(key, a, b, threads, ctx);
        let tables = self.ensure_table(key, &matrix, domain, xi, sel, ctx);
        let relaxed = (want_relaxed && sel.tight)
            .then(|| self.ensure_table(key, &matrix, domain, xi, sel.with_tight(false), ctx));
        (matrix, tables, relaxed)
    }

    /// Heap bytes held by every resident structure (spilled entries are
    /// on disk and excluded).
    pub(crate) fn bytes(&self) -> usize {
        self.pool.bytes()
    }

    /// Drops every cached structure and spill file (counters are kept —
    /// they are lifetime totals).
    pub(crate) fn clear(&self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::gen::planar;

    #[test]
    fn matrix_and_tables_are_built_once() {
        let t = planar::random_walk(40, 0.4, 1);
        let cache = CorpusCache::default();
        let mut ctx = QueryCtx::default();
        let key = ScopeKey::Within(0);
        let domain = Domain::Within { n: t.len() };
        let sel = BoundSelection::all_relaxed();

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0, &mut ctx);
        cache.finish_query(&mut ctx);
        assert!(ctx.is_clean(), "finish resets the context");
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 1);
        assert_eq!(cache.report().reused(), 0);

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0, &mut ctx);
        cache.finish_query(&mut ctx);
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 1);
        assert_eq!(cache.report().matrices_reused, 1);
        assert_eq!(cache.report().tables_reused, 1);

        // A different ξ reuses the matrix but needs new tables.
        let _ = cache.prepared(key, t.points(), None, domain, 5, sel, 0, &mut ctx);
        cache.finish_query(&mut ctx);
        assert_eq!(cache.report().matrices_built, 1);
        assert_eq!(cache.report().tables_built, 2);

        // Flag-only variants (same `tight`) are warm hits: table
        // construction depends on the selection only through `tight`.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::cell_only(),
            0,
            &mut ctx,
        );
        cache.finish_query(&mut ctx);
        assert_eq!(cache.report().tables_built, 2);
        assert_eq!(cache.report().tables_reused, 2);
        // The tight variant is a genuinely different table.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::all_tight(),
            0,
            &mut ctx,
        );
        cache.finish_query(&mut ctx);
        assert_eq!(cache.report().tables_built, 3);

        assert!(cache.bytes() > 0);
        assert_eq!(cache.report().resident_bytes, cache.bytes() as u64);
        // No limit was set: nothing was ever evicted.
        assert_eq!(cache.report().evictions, 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn per_entry_eviction_keeps_recent_entries_resident() {
        // Three same-size trajectories, room for two of everything.
        let trajectories: Vec<_> = (0..3).map(|s| planar::random_walk(40, 0.4, s)).collect();
        let cache = CorpusCache::default();
        let domain = Domain::Within { n: 40 };
        let sel = BoundSelection::all_relaxed();

        let query = |cache: &CorpusCache, i: usize| -> CacheReport {
            let mut ctx = QueryCtx::default();
            let _ = cache.prepared(
                ScopeKey::Within(i),
                trajectories[i].points(),
                None,
                domain,
                3,
                sel,
                0,
                &mut ctx,
            );
            cache.finish_query(&mut ctx)
        };
        query(&cache, 0);
        let per_traj = cache.bytes();
        cache.set_limit(Some(2 * per_traj));

        query(&cache, 1);
        assert_eq!(cache.report().evictions, 0, "two trajectories fit");

        // Trajectory 2 displaces exactly trajectory 0's entries (LRU),
        // not the whole cache.
        query(&cache, 2);
        assert_eq!(cache.report().evictions, 2);
        let delta = query(&cache, 1);
        assert_eq!(delta.recomputed(), 0, "trajectory 1 stayed resident");
        assert_eq!(delta.reused(), 2);

        // Trajectory 0 was evicted without a spill tier: full rebuild.
        let delta = query(&cache, 0);
        assert_eq!(delta.recomputed(), 2);
        assert_eq!(delta.spill_loads, 0);
    }

    #[test]
    fn concurrent_sessions_share_builds_and_release_their_own_pins() {
        let t = planar::random_walk(48, 0.4, 9);
        let cache = CorpusCache::default();
        let key = ScopeKey::Within(0);
        let domain = Domain::Within { n: t.len() };
        let sel = BoundSelection::all_relaxed();

        // Eight sessions race the same cold key.
        let reports: Vec<CacheReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut ctx = QueryCtx::default();
                        let (m, tb) =
                            cache.prepared(key, t.points(), None, domain, 3, sel, 0, &mut ctx);
                        drop((m, tb));
                        cache.finish_query(&mut ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Single-flight: exactly one session built each structure, the
        // other seven reused it (possibly after waiting on the build).
        let built: u64 = reports.iter().map(CacheReport::recomputed).sum();
        assert_eq!(built, 2, "one matrix + one table build across all sessions");
        let totals = cache.report();
        assert_eq!(totals.matrices_built, 1);
        assert_eq!(totals.tables_built, 1);
        assert_eq!(totals.matrices_reused, 7);
        assert_eq!(totals.tables_reused, 7);
        // Every lookup in every session's report is exactly one of
        // built / reused / rehydrated.
        for r in &reports {
            assert_eq!(r.lookups(), 2);
        }

        // All pins were released: a zero limit empties the pool.
        cache.set_limit(Some(0));
        assert_eq!(cache.bytes(), 0, "no pinned-frame leaks");
    }

    #[test]
    fn delta_isolates_one_query() {
        let before = CacheReport {
            matrices_built: 2,
            matrices_reused: 1,
            tables_built: 3,
            tables_reused: 4,
            evictions: 1,
            spills: 1,
            spill_loads: 0,
            resident_bytes: 1000,
        };
        let after = CacheReport {
            matrices_built: 2,
            matrices_reused: 2,
            tables_built: 4,
            tables_reused: 4,
            evictions: 3,
            spills: 2,
            spill_loads: 1,
            resident_bytes: 800,
        };
        let d = after.delta_since(&before);
        assert_eq!(d.matrices_built, 0);
        assert_eq!(d.matrices_reused, 1);
        assert_eq!(d.tables_built, 1);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.spills, 1);
        assert_eq!(d.spill_loads, 1);
        // The gauge carries the later snapshot, not a (possibly
        // negative) difference.
        assert_eq!(d.resident_bytes, 800);
        assert_eq!(d.recomputed(), 1);
        assert_eq!(d.reused(), 1);
        assert_eq!(d.hits(), 2);
        assert_eq!(d.lookups(), 3);
        assert!((d.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    #[cfg(debug_assertions)]
    fn delta_from_swapped_snapshots_is_reported() {
        let newer = CacheReport {
            matrices_built: 3,
            ..CacheReport::default()
        };
        let _ = CacheReport::default().delta_since(&newer);
    }
}
