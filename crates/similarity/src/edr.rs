//! Edit Distance on Real sequence (EDR) \[6\].
//!
//! Chen, Özsu & Oria's edit distance for trajectories: substituting a
//! non-ε-matching pair costs 1, inserting or deleting a point costs 1, and
//! ε-matching pairs are free. Robust to noise and local time shifting, but
//! — being a per-sample count — still sensitive to the sampling rate
//! (Table 1).

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// EDR edit count between `a` and `b` with matching threshold `epsilon`.
///
/// Conventions: both empty → `0`; one empty → the other's length (all
/// insertions) as `f64` (the trait-level `+∞` convention is applied by
/// [`Edr`], mirroring the "nothing to align" semantics used across the
/// crate).
#[must_use]
pub fn edr<P: GroundDistance>(a: &[P], b: &[P], epsilon: f64) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    // prev[j] = edit distance between outer[..i] and inner[..j].
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0_usize; m + 1];
    for (i, p) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, q) in inner.iter().enumerate() {
            let subcost = usize::from(p.distance(q) > epsilon);
            curr[j + 1] = (prev[j] + subcost) // match / substitute
                .min(prev[j + 1] + 1) // delete from outer
                .min(curr[j] + 1); // insert into outer
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// [`SimilarityMeasure`] wrapper for EDR with a fixed matching threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edr {
    /// Matching threshold `ε` in ground-distance units.
    pub epsilon: f64,
}

impl Edr {
    /// Creates the measure with matching threshold `epsilon`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Edr { epsilon }
    }
}

impl<P: GroundDistance> SimilarityMeasure<P> for Edr {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        match (a.is_empty(), b.is_empty()) {
            (true, true) => 0.0,
            (true, false) | (false, true) => f64::INFINITY,
            _ => edr(a, b, self.epsilon) as f64,
        }
    }

    fn name(&self) -> &'static str {
        "EDR"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        false
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn identical_is_zero_edits() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &a, 0.1), 0);
    }

    #[test]
    fn single_substitution() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (50.0, 50.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.25), 1);
    }

    #[test]
    fn insertion_cost() {
        let a = pts(&[(0.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.25), 1);
        assert_eq!(edr(&b, &a, 0.25), 1);
    }

    #[test]
    fn all_different_costs_max_len() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(90.0, 90.0), (91.0, 90.0), (92.0, 90.0)]);
        assert_eq!(edr(&a, &b, 0.5), 3);
    }

    #[test]
    fn empty_edge_cases() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let empty: Vec<EuclideanPoint> = vec![];
        assert_eq!(edr(&a, &empty, 0.5), 2);
        assert_eq!(edr(&empty, &a, 0.5), 2);
        assert_eq!(edr(&empty, &empty, 0.5), 0);
    }

    #[test]
    fn bounded_by_max_length() {
        let a = pts(&[(0.0, 0.0), (5.0, 0.0), (9.0, 3.0), (2.0, 2.0)]);
        let b = pts(&[(1.0, 1.0), (4.0, 4.0)]);
        let e = edr(&a, &b, 1.0);
        assert!(e <= 4);
        // Lower bound: length difference.
        assert!(e >= 2);
    }
}
