//! Differential suite: concurrent sessions on one shared engine ≡ a
//! serial run on a private engine, **bit-for-bit**.
//!
//! A mixed workload — motif within and between trajectories, top-k,
//! similarity join (self and cross), clustering, and the measures
//! profile, at several worker counts per query — first runs serially on
//! a private engine to record the canonical answers. Then N threads
//! replay the same workload concurrently through per-thread
//! [`Session`] handles on one shared engine, each thread starting at a
//! different offset so cache hits, single-flight builds, and evictions
//! interleave differently per thread. Every result must match the
//! serial baseline by bit pattern (`f64::to_bits` for distances).
//!
//! Run the suite under `FREMO_THREADS=1` and `FREMO_THREADS=4` (CI's
//! `concurrency` job does both): the global budget feeds every query
//! that does not pin its own worker count, so the two runs exercise
//! different parallel schedules against the same baseline.
//!
//! The final check is the pin ledger: after every session has dropped,
//! shrinking the cache limit to zero must evict *everything* — a single
//! leaked pin from any session would keep its frame resident.

use fremo::prelude::*;
use fremo::trajectory::gen::planar;

const SESSIONS: usize = 4;

fn corpus() -> Vec<Trajectory<EuclideanPoint>> {
    (0..5).map(|s| planar::random_walk(60, 0.45, s)).collect()
}

/// The mixed workload, rebuilt per engine because [`TrajId`]s are
/// engine-scoped. Labels identify mismatches in assertion messages.
fn workload(ids: &[TrajId]) -> Vec<(String, Query)> {
    let mut queries = Vec::new();
    for (i, &id) in ids.iter().enumerate().take(3) {
        queries.push((format!("motif[{i}]"), Query::motif(id).xi(6 + i).build()));
        queries.push((
            format!("motif-parallel[{i}]"),
            Query::motif(id)
                .xi(6)
                .execution(ExecutionMode::Parallel { threads: 2 })
                .build(),
        ));
    }
    queries.push((
        "motif-between".into(),
        Query::motif_between(ids[0], ids[1]).xi(6).build(),
    ));
    queries.push((
        "motif-between-parallel".into(),
        Query::motif_between(ids[2], ids[3])
            .xi(6)
            .execution(ExecutionMode::Parallel { threads: 3 })
            .build(),
    ));
    queries.push(("topk".into(), Query::top_k(ids[0], 3).xi(6).build()));
    queries.push((
        "topk-parallel".into(),
        Query::top_k(ids[1], 2)
            .xi(7)
            .execution(ExecutionMode::Parallel { threads: 2 })
            .build(),
    ));
    queries.push(("join-self".into(), Query::join(ids.to_vec(), 6.0).build()));
    queries.push((
        "join-between".into(),
        Query::join_between(ids[..2].to_vec(), ids[2..].to_vec(), 6.0)
            .execution(ExecutionMode::Parallel { threads: 2 })
            .build(),
    ));
    queries.push(("cluster".into(), Query::cluster(ids[0], 15, 5, 4.0).build()));
    queries.push((
        "measures".into(),
        Query::measures(ids[0], ids[1], 2.5).build(),
    ));
    queries
}

/// Bit-exact fingerprint of a query result: every float is rendered by
/// bit pattern, so two fingerprints are equal iff the results are
/// bit-for-bit identical.
fn fingerprint(outcome: &QueryOutcome) -> String {
    let motif_bits = |m: &Motif| {
        format!(
            "({:?},{:?},{:016x})",
            m.first,
            m.second,
            m.distance.to_bits()
        )
    };
    match &outcome.results {
        QueryResults::Motif(m) => {
            format!("motif:{:?}", m.as_ref().map(motif_bits))
        }
        QueryResults::TopK(ms) => {
            let items: Vec<String> = ms.iter().map(motif_bits).collect();
            format!("topk:[{}]", items.join(","))
        }
        QueryResults::Join(j) => format!(
            "join:{:?}/{}/{}/{}",
            j.pairs, j.pruned_endpoints, j.pruned_hausdorff, j.verified
        ),
        QueryResults::Cluster(cs) => {
            let items: Vec<String> = cs
                .iter()
                .map(|c| format!("({:?}<-{:?})", c.representative, c.members))
                .collect();
            format!("cluster:[{}]", items.join(","))
        }
        QueryResults::Measures(p) => format!(
            "measures:{:016x}/{:016x}/{:016x}/{}/{:016x}/{:016x}",
            p.euclidean.to_bits(),
            p.dtw.to_bits(),
            p.lcss.to_bits(),
            p.edr,
            p.dfd.to_bits(),
            p.hausdorff.to_bits()
        ),
        other => format!("other:{other:?}"),
    }
}

/// Serial baseline on a private engine: label → fingerprint.
fn baseline() -> Vec<(String, String)> {
    let engine = Engine::new();
    let ids = engine.register_all(corpus());
    workload(&ids)
        .iter()
        .map(|(label, query)| {
            let outcome = engine.execute(query).unwrap();
            (label.clone(), fingerprint(&outcome))
        })
        .collect()
}

#[test]
fn concurrent_mixed_workload_matches_serial_bit_for_bit() {
    let expected = baseline();

    let shared = Engine::new();
    let ids = shared.register_all(corpus());
    let queries = workload(&ids);
    assert_eq!(queries.len(), expected.len());

    std::thread::scope(|scope| {
        for offset in 0..SESSIONS {
            let queries = &queries;
            let expected = &expected;
            let shared = &shared;
            scope.spawn(move || {
                let mut session = shared.session();
                // Each thread starts the workload at a different query,
                // so builds, hits, and evictions interleave differently.
                for i in 0..queries.len() {
                    let idx = (i + offset * 3) % queries.len();
                    let (label, query) = &queries[idx];
                    let outcome = session.execute(query).unwrap();
                    assert_eq!(
                        fingerprint(&outcome),
                        expected[idx].1,
                        "session {offset}: {label} diverged from the serial baseline"
                    );
                }
            });
        }
    });

    // Pin-leak check: with every session dropped, no frame may remain
    // pinned — a zero limit must evict the whole cache.
    assert!(
        shared.cache_bytes() > 0,
        "workload should have cached entries"
    );
    shared.set_cache_limit(Some(0));
    assert_eq!(
        shared.cache_bytes(),
        0,
        "a session leaked a pin: zero-limit eviction left frames resident"
    );
}

#[test]
fn concurrent_sessions_under_memory_pressure_match_serial() {
    let expected = baseline();

    // A limit small enough to force evictions mid-workload: concurrent
    // sessions then race pins against the evictor, and answers must
    // still be bit-identical (rebuilds are deterministic).
    let shared = Engine::new().with_cache_limit(96 * 1024);
    let ids = shared.register_all(corpus());
    let queries = workload(&ids);

    std::thread::scope(|scope| {
        for offset in 0..SESSIONS {
            let queries = &queries;
            let expected = &expected;
            let shared = &shared;
            scope.spawn(move || {
                let mut session = shared.session();
                for i in 0..queries.len() {
                    let idx = (i + offset * 5) % queries.len();
                    let (label, query) = &queries[idx];
                    let outcome = session.execute(query).unwrap();
                    assert_eq!(
                        fingerprint(&outcome),
                        expected[idx].1,
                        "session {offset} under pressure: {label} diverged"
                    );
                }
            });
        }
    });

    let report = shared.stats().cache;
    assert!(
        report.evictions > 0,
        "the limit was meant to force evictions (resident {} bytes)",
        shared.cache_bytes()
    );
    shared.set_cache_limit(Some(0));
    assert_eq!(shared.cache_bytes(), 0, "leaked pin under memory pressure");
}
