//! Algorithm dispatch and measurement.
//!
//! Every measured search runs through a fresh [`Engine`] session
//! (cold cache), so the experiments exercise the same facade production
//! traffic uses while still timing full precomputation as the paper does.

use fremo_core::engine::{AlgorithmChoice, Engine, ExecutionMode, Query, QueryOutcome};
use fremo_core::{MotifConfig, SearchStats};
use fremo_trajectory::{GeoPoint, Trajectory};
use serde::Serialize;

/// The four methods compared throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 baseline.
    BruteDp,
    /// Algorithm 2.
    Btm,
    /// Algorithm 3.
    Gtm,
    /// Section 5.5.
    GtmStar,
}

impl Algorithm {
    /// All methods, in the paper's plotting order (GTM* first in legends).
    pub const ALL: [Algorithm; 4] = [
        Algorithm::GtmStar,
        Algorithm::Gtm,
        Algorithm::Btm,
        Algorithm::BruteDp,
    ];

    /// The advanced methods (Figure 19–21 exclude BruteDP).
    pub const ADVANCED: [Algorithm; 3] = [Algorithm::GtmStar, Algorithm::Gtm, Algorithm::Btm];

    /// Display name as in the figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::BruteDp => "BruteDP",
            Algorithm::Btm => "BTM",
            Algorithm::Gtm => "GTM",
            Algorithm::GtmStar => "GTM*",
        }
    }

    /// The engine-level choice this method maps to.
    #[must_use]
    pub fn choice(&self) -> AlgorithmChoice {
        match self {
            Algorithm::BruteDp => AlgorithmChoice::BruteDp,
            Algorithm::Btm => AlgorithmChoice::Btm,
            Algorithm::Gtm => AlgorithmChoice::Gtm,
            Algorithm::GtmStar => AlgorithmChoice::GtmStar,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One measured search.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Wall-clock seconds (precomputation included, as in the paper).
    pub seconds: f64,
    /// Peak tracked heap bytes.
    pub bytes: usize,
    /// The motif's DFD (so different methods can be cross-checked).
    pub distance: Option<f64>,
    /// Fraction of candidate pairs pruned.
    pub pruned_fraction: f64,
}

impl Measurement {
    fn from_outcome(outcome: &QueryOutcome) -> Self {
        Measurement {
            seconds: outcome.stats.total_seconds,
            bytes: outcome.stats.peak_bytes(),
            distance: outcome.motif().map(|m| m.distance),
            pruned_fraction: outcome.stats.pruned_fraction(),
        }
    }
}

fn configured(builder: fremo_core::engine::QueryBuilder, config: &MotifConfig) -> Query {
    builder
        .xi(config.min_length)
        .bounds(config.bounds)
        .group_size(config.group_size)
        .build()
}

/// Runs one algorithm on one trajectory and reports the measurement plus
/// the full statistics.
///
/// Execution is pinned to [`ExecutionMode::Serial`]: the paper's figures
/// are single-threaded measurements, and `Auto` would silently switch
/// large workloads to the parallel layer. The `parallel_scaling` bench
/// and the `ext-parallel` experiment measure parallel execution through
/// [`run_algorithm_with_mode`].
#[must_use]
pub fn run_algorithm(
    algorithm: Algorithm,
    trajectory: &Trajectory<GeoPoint>,
    config: &MotifConfig,
) -> (Measurement, SearchStats) {
    run_algorithm_with_mode(algorithm, ExecutionMode::Serial, trajectory, config)
}

/// [`run_algorithm`] with an explicit [`ExecutionMode`] — the seam the
/// parallel-scaling measurements use to sweep worker counts.
#[must_use]
pub fn run_algorithm_with_mode(
    algorithm: Algorithm,
    mode: ExecutionMode,
    trajectory: &Trajectory<GeoPoint>,
    config: &MotifConfig,
) -> (Measurement, SearchStats) {
    // Registration clones the trajectory, but the engine's timer starts
    // inside execute(), so Measurement.seconds (what the figures plot)
    // covers exactly the search + precomputation, as before; the clone
    // is O(n) noise against the O(n²)+ search in any measured workload.
    let engine = Engine::new();
    let id = engine.register(trajectory.clone());
    let query = configured(Query::motif(id), config)
        .with_algorithm(algorithm.choice())
        .with_execution(mode);
    let outcome = engine.execute(&query).expect("valid motif query");
    (Measurement::from_outcome(&outcome), outcome.stats)
}

/// Two-trajectory variant of [`run_algorithm`] (Figure 21); serial for
/// the same methodology reasons.
#[must_use]
pub fn run_algorithm_between(
    algorithm: Algorithm,
    a: &Trajectory<GeoPoint>,
    b: &Trajectory<GeoPoint>,
    config: &MotifConfig,
) -> (Measurement, SearchStats) {
    let engine = Engine::new();
    let ida = engine.register(a.clone());
    let idb = engine.register(b.clone());
    let query = configured(Query::motif_between(ida, idb), config)
        .with_algorithm(algorithm.choice())
        .with_execution(ExecutionMode::Serial);
    let outcome = engine.execute(&query).expect("valid motif query");
    (Measurement::from_outcome(&outcome), outcome.stats)
}

/// Wall-time latency percentiles over a set of per-query samples, in
/// seconds. Part of the stable bench JSON schema (the `traffic` bench
/// emits one object per scenario), so field names must not change.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyPercentiles {
    /// Median wall seconds.
    pub p50: f64,
    /// 90th-percentile wall seconds.
    pub p90: f64,
    /// 99th-percentile wall seconds.
    pub p99: f64,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles (the ceil(p·n)-th smallest sample, the
    /// classic definition — no interpolation, so every reported value is
    /// an actually observed latency).
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty or contains a NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no latency samples");
        assert!(samples.iter().all(|s| !s.is_nan()), "NaN latency sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencyPercentiles {
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
        }
    }
}

/// Averages seconds/bytes over repetitions and cross-checks that every
/// repetition returned the same motif distance per algorithm.
#[must_use]
pub fn average(measurements: &[Measurement]) -> Measurement {
    assert!(!measurements.is_empty());
    let n = measurements.len() as f64;
    Measurement {
        seconds: measurements.iter().map(|m| m.seconds).sum::<f64>() / n,
        bytes: (measurements.iter().map(|m| m.bytes).sum::<usize>() as f64 / n) as usize,
        distance: measurements[0].distance,
        pruned_fraction: measurements.iter().map(|m| m.pruned_fraction).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::gen::Dataset;

    #[test]
    fn all_algorithms_agree_on_a_small_geolife_workload() {
        let t = Dataset::GeoLife.generate(150, 4);
        let cfg = MotifConfig::new(10).with_group_size(8);
        let mut distances = Vec::new();
        for alg in Algorithm::ALL {
            let (m, _) = run_algorithm(alg, &t, &cfg);
            distances.push((alg, m.distance.expect("motif")));
        }
        let d0 = distances[0].1;
        for (alg, d) in &distances {
            assert!((d - d0).abs() < 1e-9, "{alg} disagrees: {d} vs {d0}");
        }
    }

    #[test]
    fn averaging() {
        let a = Measurement {
            seconds: 1.0,
            bytes: 100,
            distance: Some(2.0),
            pruned_fraction: 0.5,
        };
        let b = Measurement {
            seconds: 3.0,
            bytes: 300,
            distance: Some(2.0),
            pruned_fraction: 0.7,
        };
        let avg = average(&[a, b]);
        assert_eq!(avg.seconds, 2.0);
        assert_eq!(avg.bytes, 200);
        assert!((avg.pruned_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        // 1..=100 shuffled: pXX must be exactly XX.
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        samples.reverse();
        let p = LatencyPercentiles::from_samples(&samples);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);

        // Nearest-rank on a short run picks observed values only.
        let p = LatencyPercentiles::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p90, 3.0);
        assert_eq!(p.p99, 3.0);

        let p = LatencyPercentiles::from_samples(&[7.5]);
        assert_eq!((p.p50, p.p90, p.p99), (7.5, 7.5, 7.5));
    }
}
