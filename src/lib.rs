//! # fremo — Fréchet-distance trajectory motif discovery
//!
//! Umbrella crate re-exporting the public API of the `fremo` workspace, a
//! reproduction of Tang, Yiu, Mouratidis & Wang, *"Efficient Motif
//! Discovery in Spatial Trajectories Using Discrete Fréchet Distance"*,
//! EDBT 2017.
//!
//! * [`trajectory`] — data model, distances, loaders, synthetic generators.
//! * [`similarity`] — DFD and the alternative measures of the paper's
//!   Table 1 (ED, DTW, LCSS, EDR, Hausdorff).
//! * [`motif`] — the paper's contribution: `BruteDP`, `BTM`, `GTM`, `GTM*`
//!   plus the lower-bound machinery, for motif discovery within one
//!   trajectory or between two.
//!
//! ## Quickstart
//!
//! ```
//! use fremo::prelude::*;
//!
//! // A small GeoLife-like trajectory and a motif-length threshold.
//! let trajectory = fremo::trajectory::gen::geolife_like(300, 42);
//! let config = MotifConfig::new(20);
//! let motif = Gtm.discover(&trajectory, &config).expect("found a motif");
//! println!(
//!     "motif: S[{}..={}] ~ S[{}..={}]  dfd = {:.2} m",
//!     motif.first.0, motif.first.1, motif.second.0, motif.second.1, motif.distance
//! );
//! ```

pub use fremo_core as motif;
pub use fremo_similarity as similarity;
pub use fremo_trajectory as trajectory;

/// Convenient glob-importable surface of the most used items.
pub mod prelude {
    pub use fremo_core::{
        BoundKind, BruteDp, Btm, Gtm, GtmStar, Motif, MotifConfig, MotifDiscovery, SearchStats,
    };
    pub use fremo_similarity::{dfd, SimilarityMeasure};
    pub use fremo_trajectory::{
        EuclideanPoint, GeoPoint, GroundDistance, SubTrajectory, Trajectory,
    };
}
