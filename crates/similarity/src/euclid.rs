//! Lock-step Euclidean distance (ED).
//!
//! The `O(ℓ)` baseline of Table 1: points are matched strictly by index and
//! the distances aggregated. It "measures spatial proximity only, and
//! dismisses the movement pattern" (Section 2, Figure 2) and is undefined
//! across lengths — we follow the common convention of comparing the first
//! `min(n, m)` positions and returning `+∞` when the lengths differ, which
//! preserves the paper's point that ED is not robust to any time shifting.

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// Lock-step Euclidean distance: the *mean* of index-wise ground distances
/// (mean rather than sum so values are comparable across lengths, as in the
/// paper's Figure 2 caption where ED is reported in metres).
///
/// Returns `+∞` when the lengths differ (no lock-step alignment exists);
/// both empty → `0`.
#[must_use]
pub fn lockstep_euclidean<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let sum: f64 = a.iter().zip(b).map(|(p, q)| p.distance(q)).sum();
    sum / a.len() as f64
}

/// [`SimilarityMeasure`] wrapper for lock-step ED.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepEuclidean;

impl<P: GroundDistance> SimilarityMeasure<P> for LockstepEuclidean {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        lockstep_euclidean(a, b)
    }

    fn name(&self) -> &'static str {
        "ED"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        false
    }

    fn supports_local_time_shifting(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn mean_of_lockstep_distances() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(lockstep_euclidean(&a, &b), 2.0); // (1 + 3) / 2
    }

    #[test]
    fn length_mismatch_is_infinite() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.0)]);
        assert_eq!(lockstep_euclidean(&a, &b), f64::INFINITY);
    }

    #[test]
    fn ignores_movement_pattern() {
        // A forward pass and its reverse have the same point *sets* but
        // opposite movement; lock-step ED sees the reversal, but two loops
        // traversed with a phase shift fool it — DFD with the right pairing
        // would not. Here we check the simpler Figure 2 phenomenon: close
        // in space, different pattern.
        let forward = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let backward = pts(&[(3.0, 0.0), (2.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        let ed = lockstep_euclidean(&forward, &backward);
        let dfd = crate::frechet::dfd(&forward, &backward);
        // ED: (3+1+1+3)/4 = 2; DFD must pay the full 3 for matching ends.
        assert_eq!(ed, 2.0);
        assert_eq!(dfd, 3.0);
        assert!(dfd > ed, "DFD penalizes reversed movement more than ED");
    }

    #[test]
    fn zero_on_identical() {
        let a = pts(&[(5.0, 5.0), (6.0, 6.0)]);
        assert_eq!(lockstep_euclidean(&a, &a), 0.0);
    }
}
