// L4 clean fixture: every Relaxed and unsafe carries its argument.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn check(flag: &AtomicBool) -> bool {
    // relaxed: monotonic flag; a stale read only delays a cooperative exit.
    flag.load(Ordering::Relaxed)
}

pub fn set(flag: &AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Relaxed) // relaxed: see check()
}

pub fn reinterpret(x: u64) -> f64 {
    // SAFETY: u64 and f64 have the same size and any bit pattern is a
    // valid f64.
    unsafe { std::mem::transmute(x) }
}
