//! Opt-in single-precision distance matrix for approximate search.
//!
//! The exact algorithms keep their `f64` matrices (fremo-lint L6 bans
//! `f32` from the exact kernel files); this module exists solely for
//! the `Approx{eps}` / Table-1 baseline regime, where the answer
//! already carries an additive error bound and halving matrix bytes
//! doubles the working set the engine cache can hold.
//!
//! Distances are computed in `f64` by the same (SIMD-accelerated)
//! [`GroundDistance::distance_row`] the exact builders use, then
//! rounded once to `f32` per cell. [`DistanceSource::get`] widens back
//! to `f64`, so each stored cell satisfies
//! `|widened - exact| <= exact * 2^-24` (one `f32` rounding step) —
//! negligible against any meaningful `eps`, but **not** bit-exact: see
//! `docs/KERNELS.md` for when this mode is admissible.

use crate::matrix::DistanceSource;
use crate::point::GroundDistance;

/// Precomputed dense `len_a × len_b` single-precision ground-distance
/// matrix (row-major, indexed `a * len_b + b`), half the bytes of
/// [`DenseMatrix`](crate::DenseMatrix).
#[derive(Debug, Clone)]
pub struct DenseMatrixF32 {
    len_a: usize,
    len_b: usize,
    data: Vec<f32>,
}

impl DenseMatrixF32 {
    /// Single-precision [`DenseMatrix::within`](crate::DenseMatrix::within):
    /// symmetric all-pair distances within one point sequence, each cell
    /// rounded from the exact `f64` value.
    #[must_use]
    pub fn within<P: GroundDistance>(points: &[P]) -> Self {
        let n = points.len();
        let mut data = vec![0.0f32; n * n];
        let mut scratch = vec![0.0f64; n.saturating_sub(1)];
        for a in 0..n {
            let row = &mut scratch[..n - a - 1];
            points[a].distance_row(&points[a + 1..], row);
            for (off, d) in row.iter().enumerate() {
                let b = a + 1 + off;
                let narrowed = *d as f32;
                data[a * n + b] = narrowed;
                data[b * n + a] = narrowed;
            }
        }
        DenseMatrixF32 {
            len_a: n,
            len_b: n,
            data,
        }
    }

    /// Single-precision
    /// [`DenseMatrix::between`](crate::DenseMatrix::between): all-pair
    /// distances between two point sequences.
    #[must_use]
    pub fn between<P: GroundDistance>(a_pts: &[P], b_pts: &[P]) -> Self {
        let (na, nb) = (a_pts.len(), b_pts.len());
        let mut data = vec![0.0f32; na * nb];
        let mut scratch = vec![0.0f64; nb];
        for (a, pa) in a_pts.iter().enumerate() {
            pa.distance_row(b_pts, &mut scratch);
            for (slot, d) in data[a * nb..(a + 1) * nb].iter_mut().zip(&scratch) {
                *slot = *d as f32;
            }
        }
        DenseMatrixF32 {
            len_a: na,
            len_b: nb,
            data,
        }
    }
}

impl DistanceSource for DenseMatrixF32 {
    #[inline]
    fn len_a(&self) -> usize {
        self.len_a
    }

    #[inline]
    fn len_b(&self) -> usize {
        self.len_b
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.len_a && b < self.len_b);
        f64::from(self.data[a * self.len_b + b])
    }

    fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    #[inline]
    fn fill_row(&self, a: usize, b_start: usize, out: &mut [f64]) {
        let start = a * self.len_b + b_start;
        let end = start + out.len();
        for (slot, d) in out.iter_mut().zip(&self.data[start..end]) {
            *slot = f64::from(*d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;
    use crate::point::EuclideanPoint;

    fn pts(n: usize) -> Vec<EuclideanPoint> {
        let mut x: u64 = 0xF00D;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                EuclideanPoint::new((x % 997) as f64 / 13.0, ((x >> 9) % 997) as f64 / 17.0)
            })
            .collect()
    }

    #[test]
    fn f32_matrix_is_one_rounding_step_from_exact() {
        let p = pts(40);
        let exact = DenseMatrix::within(&p);
        let narrow = DenseMatrixF32::within(&p);
        assert_eq!(narrow.len_a(), 40);
        for a in 0..40 {
            for b in 0..40 {
                let e = exact.get(a, b);
                let w = narrow.get(a, b);
                assert_eq!(w, f64::from(e as f32), "one rounding step, a={a} b={b}");
                assert!((w - e).abs() <= e.abs() * (f32::EPSILON as f64));
                assert_eq!(narrow.get(a, b), narrow.get(b, a));
            }
            assert_eq!(narrow.get(a, a), 0.0);
        }
    }

    #[test]
    fn f32_between_and_fill_row_agree_with_get() {
        let p = pts(30);
        let (a, b) = p.split_at(12);
        let m = DenseMatrixF32::between(a, b);
        let exact = DenseMatrix::between(a, b);
        assert_eq!(m.len_a(), 12);
        assert_eq!(m.len_b(), 18);
        for i in 0..m.len_a() {
            let mut row = vec![0.0; m.len_b()];
            m.fill_row(i, 0, &mut row);
            for (j, r) in row.iter().enumerate() {
                assert_eq!(r.to_bits(), m.get(i, j).to_bits());
                assert_eq!(*r, f64::from(exact.get(i, j) as f32));
            }
        }
    }

    #[test]
    fn f32_matrix_halves_bytes() {
        let p = pts(32);
        let exact = DenseMatrix::within(&p);
        let narrow = DenseMatrixF32::within(&p);
        assert!(narrow.bytes() <= exact.bytes() / 2);
        assert!(narrow.bytes() >= 32 * 32 * 4);
    }
}
