//! Cache-pressure verdict: under a byte limit sized to ~¼ of the
//! working set, per-entry LRU eviction must sustain a hit-rate floor
//! and strictly beat a wholesale drop-everything baseline.
//!
//! The workload is a skewed scan over 7 same-size trajectories: every
//! round touches a hot trio (`h0 h1 h2`) and then one of four cold
//! trajectories in rotation, so the resident set wants to hold the trio
//! plus the most recent cold entry — exactly four trajectories' worth —
//! while the full working set is 7×. Per-entry LRU keeps the trio warm
//! and cycles only the cold slot; the wholesale baseline (what the
//! engine did before the buffer manager: drop the whole cache when the
//! limit is exceeded) rebuilds the trio every other round.
//!
//! The verdict is counter-based (`CacheReport::hit_rate`), not
//! timing-based, so the assertions are deterministic. A spill leg
//! re-runs the same workload with a disk spill tier and asserts every
//! matrix is computed exactly once for the engine's lifetime —
//! re-accessed cold matrices come back from disk, not a rebuild.

use criterion::{criterion_group, Criterion};
use fremo_core::engine::{AlgorithmChoice, Engine, Query, TrajId};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::GeoPoint;

/// Trajectory length; 100 points keeps a full workload run in the
/// low-millisecond range while matrices (n²·8 = 80 KB) still dwarf the
/// bound tables, as they do at paper scale.
const N: usize = 100;
const XI: usize = 5;
/// Hot trajectories touched every round.
const HOT: usize = 3;
/// Cold trajectories touched round-robin, one per round.
const COLD: usize = 4;
/// Rounds per workload run (each round = HOT + 1 queries).
const ROUNDS: usize = 16;

fn corpus(engine: &Engine<GeoPoint>) -> Vec<TrajId> {
    engine.register_all((0..(HOT + COLD) as u64).map(|seed| Dataset::GeoLife.generate(N, seed)))
}

fn motif(id: TrajId) -> Query {
    Query::motif(id)
        .xi(XI)
        .algorithm(AlgorithmChoice::Btm)
        .build()
}

/// Bytes one trajectory's cached entries occupy (matrix + bound
/// tables), measured rather than assumed so the limit tracks any future
/// change in entry layout.
fn per_trajectory_footprint() -> usize {
    let engine = Engine::new();
    let ids = corpus(&engine);
    engine.execute(&motif(ids[0])).unwrap();
    engine.cache_bytes()
}

/// The cache limit: room for the hot trio plus one cold trajectory,
/// with ¼-footprint slack so the fourth insert fits and the *fifth*
/// evicts. Working set is (HOT+COLD)/4.25 ≈ 1.6× over this.
fn cache_limit(footprint: usize) -> usize {
    footprint * 17 / 4
}

/// One skewed scan: per round the hot trio then one rotating cold
/// trajectory. `wholesale` simulates the pre-buffer-manager policy by
/// dropping the whole cache whenever the resident bytes exceed the
/// limit (the engine itself never does this any more).
fn run_workload(engine: &Engine<GeoPoint>, ids: &[TrajId], limit: usize, wholesale: bool) {
    for round in 0..ROUNDS {
        for &hot in &ids[..HOT] {
            engine.execute(&motif(hot)).unwrap();
            if wholesale && engine.cache_bytes() > limit {
                engine.clear_cache();
            }
        }
        let cold = HOT + round % COLD;
        engine.execute(&motif(ids[cold])).unwrap();
        if wholesale && engine.cache_bytes() > limit {
            engine.clear_cache();
        }
    }
}

fn bench_pressure(c: &mut Criterion) {
    let footprint = per_trajectory_footprint();
    let limit = cache_limit(footprint);
    let mut group = c.benchmark_group("cache_pressure");
    group.sample_size(10);
    group.bench_function("lru", |b| {
        b.iter(|| {
            let engine = Engine::new().with_cache_limit(limit);
            let ids = corpus(&engine);
            run_workload(&engine, &ids, limit, false);
            std::hint::black_box(engine.stats().cache)
        })
    });
    group.bench_function("wholesale_clear", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let ids = corpus(&engine);
            run_workload(&engine, &ids, limit, true);
            std::hint::black_box(engine.stats().cache)
        })
    });
    group.bench_function("lru_spill", |b| {
        let dir = std::env::temp_dir().join(format!("fremo-bench-spill-{}", std::process::id()));
        b.iter(|| {
            let engine = Engine::new()
                .with_cache_limit(limit)
                .with_spill_dir(&dir)
                .unwrap();
            let ids = corpus(&engine);
            run_workload(&engine, &ids, limit, false);
            std::hint::black_box(engine.stats().cache)
        });
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

criterion_group!(benches, bench_pressure);

/// Counter-based verdict: LRU must hold the hit-rate floor and strictly
/// beat the wholesale baseline; the spill leg must build each matrix
/// exactly once.
fn verify_hit_rates() {
    let footprint = per_trajectory_footprint();
    let limit = cache_limit(footprint);

    let lru = Engine::new().with_cache_limit(limit);
    let ids = corpus(&lru);
    run_workload(&lru, &ids, limit, false);
    let lru_report = lru.stats().cache;

    let wholesale = Engine::new();
    let ids = corpus(&wholesale);
    run_workload(&wholesale, &ids, limit, true);
    let wholesale_report = wholesale.stats().cache;

    let spill_dir =
        std::env::temp_dir().join(format!("fremo-bench-spill-verdict-{}", std::process::id()));
    let spill = Engine::new()
        .with_cache_limit(limit)
        .with_spill_dir(&spill_dir)
        .unwrap();
    let ids = corpus(&spill);
    run_workload(&spill, &ids, limit, false);
    let spill_report = spill.stats().cache;
    drop(spill);
    std::fs::remove_dir_all(&spill_dir).ok();

    let queries = ROUNDS * (HOT + 1);
    println!(
        "cache_pressure verdict ({queries} queries over {} trajectories, limit = 4.25 \
         footprints of {footprint} B, working set {:.1}x the limit):",
        HOT + COLD,
        (HOT + COLD) as f64 * footprint as f64 / limit as f64,
    );
    println!(
        "  per-entry LRU     hit rate {:.3}  ({} evictions)",
        lru_report.hit_rate(),
        lru_report.evictions
    );
    println!(
        "  wholesale clear   hit rate {:.3}",
        wholesale_report.hit_rate()
    );
    println!(
        "  LRU + spill tier  hit rate {:.3}  ({} spills, {} loads, {} matrices built)",
        spill_report.hit_rate(),
        spill_report.spills,
        spill_report.spill_loads,
        spill_report.matrices_built
    );

    assert!(
        lru_report.hit_rate() >= 0.65,
        "per-entry LRU hit rate {:.3} fell below the 0.65 floor",
        lru_report.hit_rate()
    );
    assert!(
        lru_report.hit_rate() > wholesale_report.hit_rate(),
        "per-entry LRU ({:.3}) must strictly beat wholesale clearing ({:.3})",
        lru_report.hit_rate(),
        wholesale_report.hit_rate()
    );
    assert!(
        lru_report.evictions > 0,
        "the workload must actually exceed the cache limit"
    );
    assert_eq!(
        spill_report.matrices_built as usize,
        HOT + COLD,
        "with a spill tier every matrix is computed exactly once"
    );
    assert!(
        spill_report.spill_loads > 0,
        "cold re-accesses must rehydrate from disk"
    );
}

fn main() {
    benches();
    verify_hit_rates();
}
