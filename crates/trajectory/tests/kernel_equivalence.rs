//! Property-based SIMD ≡ scalar bit-identity for the distance kernels.
//!
//! Every supported kernel must reproduce the scalar reference loop
//! bit-for-bit on adversarial inputs: random walks with duplicate
//! points, axis-aligned segments (dx or dy exactly zero), sub-normal
//! coordinates, and every remainder-lane count around the 2- and 4-wide
//! vector widths. The matrix builders are additionally checked under
//! [`force_scalar`] because their blocked (SIMD) and reference (scalar)
//! layouts must stay interchangeable for the engine cache.

use std::sync::Mutex;

use fremo_trajectory::kernel::{euclid_row_with, force_scalar, pairwise_min_with};
use fremo_trajectory::{DenseMatrix, DistanceSource, EuclideanPoint, GroundDistance, Kernel};
use proptest::prelude::*;

/// Serializes tests that toggle the process-global [`force_scalar`].
static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

const KERNELS: [Kernel; 3] = [Kernel::Avx2, Kernel::Sse2, Kernel::Neon];

/// Coordinates drawn from regimes that historically break vector code:
/// ordinary magnitudes, huge, tiny, sub-normal, exact zero.
fn coord() -> impl Strategy<Value = f64> {
    (0u32..9, -1.0..1.0_f64).prop_map(|(kind, v)| match kind {
        0 => 0.0,
        1 => v * 1.0e300,
        2 => v * 1.0e-300,
        // Sub-normals: the smallest representable magnitudes.
        3 => f64::from_bits((v.abs() * 1.0e3) as u64 + 1),
        _ => v * 1.0e3,
    })
}

/// A walk that duplicates points (step dropped) and emits axis-aligned
/// segments (one delta zeroed) with high probability.
fn walk(max_len: usize) -> impl Strategy<Value = Vec<EuclideanPoint>> {
    let step = (coord(), coord(), 0u32..4);
    proptest::collection::vec(step, 0..max_len).prop_map(|steps| {
        let (mut x, mut y) = (0.0f64, 0.0f64);
        steps
            .into_iter()
            .map(|(dx, dy, mode)| {
                match mode {
                    0 => {} // duplicate point
                    1 => x += dx,
                    2 => y += dy,
                    _ => {
                        x += dx;
                        y += dy;
                    }
                }
                EuclideanPoint::new(x, y)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn euclid_row_kernels_match_scalar_bitwise(
        pts in walk(70),
        (ox, oy) in (coord(), coord()),
    ) {
        let origin = EuclideanPoint::new(ox, oy);
        let mut reference = vec![0.0; pts.len()];
        euclid_row_with(Kernel::Scalar, origin, &pts, &mut reference);
        for (slot, p) in reference.iter().zip(&pts) {
            prop_assert_eq!(slot.to_bits(), origin.distance(p).to_bits());
        }
        for kernel in KERNELS {
            if !kernel.supported() {
                continue;
            }
            let mut got = vec![f64::NAN; pts.len()];
            euclid_row_with(kernel, origin, &pts, &mut got);
            for (lane, (g, r)) in got.iter().zip(&reference).enumerate() {
                prop_assert!(
                    g.to_bits() == r.to_bits(),
                    "kernel {:?} lane {} of {} diverged",
                    kernel,
                    lane,
                    pts.len()
                );
            }
        }
    }

    #[test]
    fn pairwise_min_kernels_match_scalar_bitwise(
        mut a in proptest::collection::vec(0.0..1.0e6_f64, 0..70),
        b in proptest::collection::vec(0.0..1.0e6_f64, 0..70),
        inf_at in 0usize..70,
    ) {
        // DP rows mix finite distances with +∞ boundary cells.
        if inf_at < a.len() {
            a[inf_at] = f64::INFINITY;
        }
        let n = a.len().min(b.len());
        let mut reference = vec![0.0; n];
        pairwise_min_with(Kernel::Scalar, &a, &b, &mut reference);
        for kernel in KERNELS {
            if !kernel.supported() {
                continue;
            }
            let mut got = vec![f64::NAN; n];
            pairwise_min_with(kernel, &a, &b, &mut got);
            for (g, r) in got.iter().zip(&reference) {
                prop_assert_eq!(g.to_bits(), r.to_bits());
            }
        }
    }

    #[test]
    fn matrix_builders_match_forced_scalar_bitwise(pts in walk(40)) {
        let _guard = SCALAR_TOGGLE.lock().unwrap();
        force_scalar(true);
        let reference_within = DenseMatrix::within(&pts);
        let reference_between = pts
            .split_first()
            .map(|(first, rest)| DenseMatrix::between(std::slice::from_ref(first), rest));
        force_scalar(false);
        let active_within = DenseMatrix::within(&pts);
        let n = pts.len();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    active_within.get(a, b).to_bits(),
                    reference_within.get(a, b).to_bits()
                );
            }
        }
        if let Some(reference) = reference_between {
            let active = DenseMatrix::between(std::slice::from_ref(&pts[0]), &pts[1..]);
            for b in 0..n - 1 {
                prop_assert_eq!(active.get(0, b).to_bits(), reference.get(0, b).to_bits());
            }
        }
    }
}

/// Remainder lanes deserve an exhaustive (non-random) pass: every length
/// around the 2- and 4-wide chunk boundaries, plus one well past them.
#[test]
fn remainder_lane_counts_are_exact() {
    let pts: Vec<EuclideanPoint> = (0..67)
        .map(|i| {
            let f = f64::from(i);
            EuclideanPoint::new(f * 0.37 - 9.0, (f * 0.91).sin() * 40.0)
        })
        .collect();
    let origin = EuclideanPoint::new(-2.5, 3.25);
    for n in (0..=9).chain([15, 16, 17, 31, 32, 33, 63, 64, 65, 66, 67]) {
        let mut reference = vec![0.0; n];
        euclid_row_with(Kernel::Scalar, origin, &pts[..n], &mut reference);
        for kernel in KERNELS {
            if !kernel.supported() {
                continue;
            }
            let mut got = vec![f64::NAN; n];
            euclid_row_with(kernel, origin, &pts[..n], &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "kernel {kernel:?} at n={n}"
            );
        }
    }
}

/// With `FREMO_NO_SIMD` set (the CI kernels job exports it), the active
/// kernel must be scalar end-to-end; without it, detection rules.
#[test]
fn no_simd_env_selects_scalar() {
    // The matrix-builder property test toggles `force_scalar`, which
    // would shadow the env/detect choice this test asserts on.
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    let expects_scalar = std::env::var("FREMO_NO_SIMD").map(|v| !v.is_empty() && v != "0");
    match expects_scalar {
        Ok(true) => assert_eq!(Kernel::active(), Kernel::Scalar),
        _ => assert_eq!(Kernel::active(), Kernel::detect()),
    }
}
