//! BTM vs BruteDP end-to-end (the Figure 18 comparison at bench scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_bench::{run_algorithm, Algorithm};
use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("btm_vs_brute");
    group.sample_size(10);
    for n in [200usize, 400] {
        let t = Dataset::GeoLife.generate(n, 11);
        let cfg = MotifConfig::new(20);
        group.bench_with_input(BenchmarkId::new("BruteDP", n), &n, |b, _| {
            b.iter(|| run_algorithm(Algorithm::BruteDp, std::hint::black_box(&t), &cfg))
        });
        group.bench_with_input(BenchmarkId::new("BTM", n), &n, |b, _| {
            b.iter(|| run_algorithm(Algorithm::Btm, std::hint::black_box(&t), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
