//! Sports-play analysis — motif discovery on planar pitch coordinates.
//!
//! The paper motivates motifs with "sports sense analysis" \[11\]: a
//! winger's match trace contains the team's rehearsed overlapping run
//! several times. Because every algorithm is generic over the ground
//! distance, the same code that mines GPS logs mines pitch coordinates
//! (metres, Euclidean): we build a synthetic match trace with a repeated
//! set play and recover it.
//!
//! ```bash
//! cargo run --release --example sports_analysis
//! ```

use fremo::prelude::*;
use fremo::trajectory::Trajectory;

/// The rehearsed run: down the wing, cut inside, shot arc. 60 samples.
fn set_play(phase: f64, noise: f64) -> Vec<EuclideanPoint> {
    (0..60)
        .map(|k| {
            let s = k as f64 / 59.0;
            let wobble = noise * ((k as f64 * 1.7 + phase).sin());
            EuclideanPoint::new(20.0 + 70.0 * s + wobble, 5.0 + 25.0 * s * s + wobble * 0.5)
        })
        .collect()
}

/// Free movement between plays: drifting around the midfield.
fn drift(seed: &mut u64, len: usize, from: EuclideanPoint) -> Vec<EuclideanPoint> {
    let mut out = Vec::with_capacity(len);
    let (mut x, mut y) = (from.x, from.y);
    for _ in 0..len {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        x += ((*seed % 100) as f64 - 49.5) / 20.0;
        y += (((*seed >> 8) % 100) as f64 - 49.5) / 20.0;
        x = x.clamp(0.0, 105.0);
        y = y.clamp(0.0, 68.0);
        out.push(EuclideanPoint::new(x, y));
    }
    out
}

fn main() {
    let mut seed = 0xC0FFEE_u64;
    let mut points = Vec::new();
    points.extend(drift(&mut seed, 150, EuclideanPoint::new(50.0, 30.0)));
    points.extend(set_play(0.0, 0.4)); // first execution of the play
    points.extend(drift(&mut seed, 200, *points.last().unwrap()));
    points.extend(set_play(2.0, 0.4)); // second execution, slightly varied
    points.extend(drift(&mut seed, 150, *points.last().unwrap()));

    let trace: Trajectory<EuclideanPoint> = Trajectory::new(points);
    println!("match trace: {} samples on a 105x68 m pitch", trace.len());

    let config = MotifConfig::new(40).with_group_size(16);
    let (motif, stats) = Btm.discover_with_stats(&trace, &config);
    let motif = motif.expect("trace long enough");

    println!(
        "recovered set play (DFD = {:.2} m): {motif}",
        motif.distance
    );
    println!(
        "  play 1 was planted at samples 150..=209, play 2 at {}..={}",
        150 + 60 + 200,
        150 + 60 + 200 + 59
    );
    println!(
        "  search expanded {} of {} candidate subsets ({:.1}% of pairs pruned)",
        stats.subsets_expanded,
        stats.subsets_total,
        stats.pruned_fraction() * 100.0
    );

    // Sanity: the two halves really are within a couple of metres under
    // the optimal coupling.
    assert!(
        motif.distance < 3.0,
        "expected the planted play to dominate"
    );
}
