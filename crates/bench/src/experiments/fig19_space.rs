//! Figure 19: space consumption vs trajectory length (BTM, GTM, GTM*).
//!
//! Expected shape: BTM and GTM grow quadratically with n (dG matrix +
//! candidate list), GTM* roughly linearly (`O(max{(n/τ)², n})`) — making
//! GTM* "the method of choice for very long trajectories".

use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_mb, Table};
use crate::workload::trajectories;

fn cell(dataset: Dataset, n: usize, xi: usize, alg: Algorithm, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(dataset, n, reps, 1900);
    let ms: Vec<Measurement> = ts.iter().map(|t| run_algorithm(alg, t, &cfg).0).collect();
    average(&ms)
}

/// Regenerates Figure 19 (one table per dataset).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let xi = scale.default_xi();
    let reps = scale.repetitions().min(2); // space is deterministic
    let mut out = Vec::new();

    for dataset in Dataset::ALL {
        let mut table = Table::new(vec!["n", "GTM* (MB)", "GTM (MB)", "BTM (MB)"]);
        for &n in scale.lengths() {
            let mut row = vec![n.to_string()];
            for alg in Algorithm::ADVANCED {
                row.push(fmt_mb(cell(dataset, n, xi, alg, reps).bytes));
            }
            table.row(row);
        }
        out.push((
            format!("Figure 19: space vs n — {dataset} (xi={xi})"),
            table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtm_star_uses_least_space_and_scales_subquadratically() {
        let xi = 10;
        let small = cell(Dataset::GeoLife, 150, xi, Algorithm::GtmStar, 1);
        let large = cell(Dataset::GeoLife, 300, xi, Algorithm::GtmStar, 1);
        let btm_large = cell(Dataset::GeoLife, 300, xi, Algorithm::Btm, 1);
        assert!(
            large.bytes < btm_large.bytes,
            "GTM* should be smaller than BTM"
        );
        // Doubling n must not quadruple GTM*'s space.
        assert!(
            (large.bytes as f64) < 3.0 * small.bytes as f64,
            "GTM* grew {} -> {}",
            small.bytes,
            large.bytes
        );
    }
}
