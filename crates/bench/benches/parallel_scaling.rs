//! Parallel-scaling verdict: a cold n≥512 BTM workload (matrix
//! precompute included) must reach ≥1.5x speedup on 4 workers versus the
//! serial engine path, with bit-for-bit identical results.
//!
//! Runs the worker sweep through criterion for the usual JSON report,
//! then asserts the speedup on medians of explicit interleaved
//! repetitions. The assertion only fires on machines that actually have
//! ≥ 4 hardware threads (CI containers with 1–2 cores report the numbers
//! and skip the verdict), and `FREMO_SCALING_TOLERATE=1` downgrades a
//! failure to a report for loaded shared machines.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use fremo_core::engine::{AlgorithmChoice, Engine, ExecutionMode, Query, TrajId};
use fremo_core::pool;
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::GeoPoint;

// n ≥ 512 per the acceptance bar; 768 amortizes the fixed fan-out cost
// (scoped spawns per phase) over ~2.5× more O(n²) work, and ξ = 16 keeps
// several hundred subset expansions in the scan — real parallel work in
// every phase: matrix, entry build, sort, scan, attribution.
const N: usize = 768;
const XI: usize = 16;

fn session() -> (Engine<GeoPoint>, TrajId) {
    let engine = Engine::new();
    let id = engine.register(Dataset::GeoLife.generate(N, 31));
    (engine, id)
}

fn query(id: TrajId, mode: ExecutionMode) -> Query {
    Query::motif(id)
        .xi(XI)
        .algorithm(AlgorithmChoice::Btm)
        .execution(mode)
        .build()
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for (label, mode) in [
        ("serial", ExecutionMode::Serial),
        ("parallel_2", ExecutionMode::Parallel { threads: 2 }),
        ("parallel_4", ExecutionMode::Parallel { threads: 4 }),
    ] {
        group.bench_function(label, |b| {
            let (engine, id) = session();
            let q = query(id, mode);
            b.iter(|| {
                engine.clear_cache();
                engine.execute(std::hint::black_box(&q)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Interleaved cold-query medians for serial and 4-worker parallel
/// execution, plus the bit-for-bit cross-check.
fn measure_medians(reps: usize) -> (f64, f64) {
    let (engine, id) = session();
    let serial_q = query(id, ExecutionMode::Serial);
    let parallel_q = query(id, ExecutionMode::Parallel { threads: 4 });

    let mut serial = Vec::with_capacity(reps);
    let mut parallel = Vec::with_capacity(reps);
    for _ in 0..reps {
        engine.clear_cache();
        let s = Instant::now();
        let o = engine.execute(&serial_q).unwrap();
        serial.push(s.elapsed().as_secs_f64());
        let serial_motif = o.motif();

        engine.clear_cache();
        let s = Instant::now();
        let o = engine.execute(&parallel_q).unwrap();
        parallel.push(s.elapsed().as_secs_f64());

        let (sm, pm) = (serial_motif.unwrap(), o.motif().unwrap());
        assert_eq!(sm.distance.to_bits(), pm.distance.to_bits());
        assert_eq!((sm.first, sm.second), (pm.first, pm.second));
        assert_eq!(o.stats.threads_used, 4);
    }
    (median_seconds(serial), median_seconds(parallel))
}

fn verify_speedup() {
    let reps = 7;
    let (serial, parallel) = measure_medians(reps);
    let speedup = serial / parallel.max(1e-12);
    println!("parallel_scaling verdict (medians of {reps} cold runs, n={N}, ξ={XI}, BTM):");
    println!("  serial            {:>10.3} ms", serial * 1e3);
    println!(
        "  parallel (4)      {:>10.3} ms  ({speedup:.2}x speedup)",
        parallel * 1e3
    );
    let cores = pool::hardware_threads();
    if cores < 4 {
        println!("  ({cores} hardware threads < 4: verdict reported, assertion skipped)");
        return;
    }
    if std::env::var_os("FREMO_SCALING_TOLERATE").is_some() {
        if speedup < 1.5 {
            eprintln!(
                "parallel_scaling: {speedup:.2}x misses the 1.5x target (tolerated by \
                 FREMO_SCALING_TOLERATE)"
            );
        }
        return;
    }
    assert!(
        speedup >= 1.5,
        "4-worker speedup {speedup:.2}x misses the 1.5x target on a {cores}-thread machine; \
         set FREMO_SCALING_TOLERATE=1 on loaded machines"
    );
}

fn main() {
    benches();
    verify_speedup();
}
