//! Tiny `--flag value` argument parser (no external dependency).

use std::collections::HashMap;

/// Parsed `--key value` pairs plus boolean switches.
#[derive(Debug, Default)]
pub struct Parsed {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    /// Parses `--key value` pairs; a `--key` followed by another `--key`
    /// (or nothing) is a boolean switch.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut idx = 0;
        while idx < argv.len() {
            let arg = &argv[idx];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            match argv.get(idx + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_string(), v.clone());
                    idx += 2;
                }
                _ => {
                    out.switches.push(key.to_string());
                    idx += 1;
                }
            }
        }
        Ok(out)
    }

    /// Required string value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Optional string value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required value parsed to `T`.
    pub fn required_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.required(key)?
            .parse::<T>()
            .map_err(|e| format!("invalid value for --{key}: {e}"))
    }

    /// Optional value parsed to `T`, with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.optional(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let p = Parsed::parse(&argv(&["--n", "100", "--json", "--xi", "10"])).unwrap();
        assert_eq!(p.required("n").unwrap(), "100");
        assert_eq!(p.required_parsed::<usize>("xi").unwrap(), 10);
        assert!(p.switch("json"));
        assert!(!p.switch("verbose"));
        assert_eq!(p.parsed_or("tau", 32usize).unwrap(), 32);
    }

    #[test]
    fn rejects_positional_and_reports_missing() {
        assert!(Parsed::parse(&argv(&["stray"])).is_err());
        let p = Parsed::parse(&argv(&[])).unwrap();
        assert!(p.required("n").unwrap_err().contains("--n"));
        assert!(p.required_parsed::<usize>("n").is_err());
    }

    #[test]
    fn bad_numeric_value() {
        let p = Parsed::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(p.required_parsed::<usize>("n").is_err());
    }
}
