//! Figure 18: response time vs trajectory length, all four methods on all
//! three datasets.
//!
//! The paper's headline result: GTM/GTM* beat BruteDP by three orders of
//! magnitude, BTM by two; BruteDP exceeds the 2-hour cut-off beyond
//! n ≈ 1000 (we pre-empt it beyond [`Scale::brute_cap`] instead of burning
//! the hours — reported as `>cap`).

use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

/// Measures one (dataset, n, algorithm) cell.
fn cell(dataset: Dataset, n: usize, xi: usize, alg: Algorithm, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(dataset, n, reps, 1800);
    let ms: Vec<Measurement> = ts.iter().map(|t| run_algorithm(alg, t, &cfg).0).collect();
    average(&ms)
}

/// Regenerates Figure 18 (one table per dataset).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let xi = scale.default_xi();
    let reps = scale.repetitions();
    let mut out = Vec::new();

    for dataset in Dataset::ALL {
        let mut table = Table::new(vec!["n", "GTM* (s)", "GTM (s)", "BTM (s)", "BruteDP (s)"]);
        for &n in scale.lengths() {
            let mut row = vec![n.to_string()];
            let mut motif_check: Option<f64> = None;
            for alg in Algorithm::ALL {
                if alg == Algorithm::BruteDp && n > scale.brute_cap() {
                    row.push(format!(">cap({})", scale.brute_cap()));
                    continue;
                }
                let m = cell(dataset, n, xi, alg, reps);
                if let (Some(prev), Some(d)) = (motif_check, m.distance) {
                    assert!(
                        (prev - d).abs() < 1e-6,
                        "{dataset}/{alg} disagrees at n={n}: {d} vs {prev}"
                    );
                }
                motif_check = motif_check.or(m.distance);
                row.push(fmt_secs(m.seconds));
            }
            table.row(row);
        }
        out.push((
            format!("Figure 18: response time vs n — {dataset} (xi={xi})"),
            table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advanced_methods_beat_brute_on_geolife() {
        let n = 220;
        let xi = 10;
        let brute = cell(Dataset::GeoLife, n, xi, Algorithm::BruteDp, 1);
        let btm = cell(Dataset::GeoLife, n, xi, Algorithm::Btm, 1);
        let gtm = cell(Dataset::GeoLife, n, xi, Algorithm::Gtm, 1);
        assert_eq!(
            brute.distance.map(|d| (d * 1e6) as i64),
            btm.distance.map(|d| (d * 1e6) as i64)
        );
        assert_eq!(
            brute.distance.map(|d| (d * 1e6) as i64),
            gtm.distance.map(|d| (d * 1e6) as i64)
        );
        assert!(
            btm.seconds < brute.seconds,
            "BTM ({}) not faster than BruteDP ({})",
            btm.seconds,
            brute.seconds
        );
    }
}
