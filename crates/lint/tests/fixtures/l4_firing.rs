// L4 firing fixture: unjustified Relaxed atomics and bare unsafe.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn check(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

pub fn set(flag: &AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Relaxed)
}

pub fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
