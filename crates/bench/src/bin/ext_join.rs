//! Regenerates the ext_join extension experiment.
use fremo_bench::experiments::{ext_join, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = ext_join::run(scale);
    print_all("ext_join", &tables);
}
