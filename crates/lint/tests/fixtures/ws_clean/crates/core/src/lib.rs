//! Mini workspace used by the integration tests: fully clean.

pub struct Engine;

impl Engine {
    pub fn execute(&self, xs: &mut [f64]) {
        xs.sort_by(|a, b| a.total_cmp(b));
    }
}
