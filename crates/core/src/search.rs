//! Shared best-first processing of a sorted candidate-subset list
//! (Algorithm 2 lines 3–13, also the final stage of Algorithm 3).

use fremo_trajectory::DistanceSource;

use crate::bounds::BoundTables;
use crate::config::{BoundKind, BoundSelection};
use crate::domain::Domain;
use crate::dp::{expand_subset, Bsf, DpBuffers};
use crate::stats::SearchStats;

/// One candidate subset in the sorted list `A` of Algorithm 2. 16 bytes.
#[derive(Debug, Clone, Copy)]
pub struct ListEntry {
    /// Combined lower bound `CS_{i,j}.LB`.
    pub lb: f64,
    /// Start index of the first half.
    pub i: u32,
    /// Start index of the second half.
    pub j: u32,
}

/// Heap bytes of an entry list.
#[must_use]
pub fn list_bytes(entries: &[ListEntry]) -> usize {
    std::mem::size_of_val(entries)
}

/// Builds list entries for the given start pairs using the combined bound.
pub fn build_entries<D: DistanceSource>(
    src: &D,
    tables: &BoundTables,
    sel: BoundSelection,
    starts: impl Iterator<Item = (usize, usize)>,
) -> Vec<ListEntry> {
    starts
        .map(|(i, j)| ListEntry {
            lb: tables.subset_bounds(src, sel, i, j).combined(),
            i: i as u32,
            j: j as u32,
        })
        .collect()
}

/// Sorts the list ascending by bound and processes it best-first: expand
/// while `bsf` cannot prune, then attribute everything after the stop point
/// to the first bound family that disqualifies it (Figure 15's accounting).
#[allow(clippy::too_many_arguments)]
pub fn process_sorted_subsets<D: DistanceSource>(
    src: &D,
    domain: Domain,
    xi: usize,
    sel: BoundSelection,
    tables: &BoundTables,
    entries: &mut [ListEntry],
    bsf: &mut Bsf,
    stats: &mut SearchStats,
    buf: &mut DpBuffers,
) {
    entries.sort_unstable_by(|a, b| a.lb.total_cmp(&b.lb));

    let mut stop = entries.len();
    let end_tables = if sel.end_cross { Some(tables) } else { None };
    for (idx, e) in entries.iter().enumerate() {
        if bsf.prunable(e.lb) {
            stop = idx;
            break;
        }
        let (i, j) = (e.i as usize, e.j as usize);
        stats.subsets_expanded += 1;
        stats.pairs_exact += domain.pairs_in_subset(i, j, xi);
        expand_subset(src, domain, xi, i, j, end_tables, true, bsf, stats, buf);
    }

    // Everything after `stop` is pruned; attribute each subset to the first
    // family whose component alone reaches the final bsf (cell → cross →
    // band, the paper's convention for Figure 15).
    for e in &entries[stop..] {
        let (i, j) = (e.i as usize, e.j as usize);
        let comps = tables.subset_bounds(src, sel, i, j);
        let pairs = domain.pairs_in_subset(i, j, xi);
        let kind = comps
            .attribute(|v| bsf.prunable(v))
            .unwrap_or(BoundKind::Band);
        stats.record_subset_pruned(kind, pairs);
        stats.subsets_skipped_sorted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::DenseMatrix;
    use fremo_trajectory::EuclideanPoint;

    fn pts(n: usize) -> Vec<EuclideanPoint> {
        // Deterministic pseudo-random walk.
        let mut x: u64 = 0xDEADBEEF;
        let mut out = Vec::with_capacity(n);
        let (mut px, mut py) = (0.0_f64, 0.0_f64);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            px += ((x % 100) as f64 - 49.5) / 50.0;
            py += (((x >> 8) % 100) as f64 - 49.5) / 50.0;
            out.push(EuclideanPoint::new(px, py));
        }
        out
    }

    #[test]
    fn sorted_processing_equals_exhaustive() {
        let points = pts(40);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 3;
        let sel = BoundSelection::all_relaxed();
        let tables = BoundTables::build(&src, domain, xi, sel);

        // Exhaustive reference with no pruning at all.
        let mut reference = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        for (i, j) in domain.subsets(xi) {
            expand_subset(
                &src,
                domain,
                xi,
                i,
                j,
                None,
                false,
                &mut reference,
                &mut stats,
                &mut buf,
            );
        }

        let mut entries = build_entries(&src, &tables, sel, domain.subsets(xi));
        let mut bsf = Bsf::new();
        let mut stats2 = SearchStats {
            pairs_total: domain.pairs_count(xi),
            ..SearchStats::default()
        };
        process_sorted_subsets(
            &src,
            domain,
            xi,
            sel,
            &tables,
            &mut entries,
            &mut bsf,
            &mut stats2,
            &mut buf,
        );

        let r = reference.motif.expect("reference found a motif");
        let b = bsf.motif.expect("sorted search found a motif");
        assert!(
            (r.distance - b.distance).abs() < 1e-12,
            "sorted={} exhaustive={}",
            b.distance,
            r.distance
        );

        // Accounting must be complete: pruned + exact == total pairs.
        let accounted = stats2.pairs_pruned_cell
            + stats2.pairs_pruned_cross
            + stats2.pairs_pruned_band
            + stats2.pairs_exact;
        assert_eq!(accounted, stats2.pairs_total);
        // And the bounds must prune something on this workload.
        assert!(
            stats2.subsets_skipped_sorted > 0,
            "no pruning at all is suspicious"
        );
    }

    #[test]
    fn works_with_no_bounds_selected() {
        let points = pts(24);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 2;
        let sel = BoundSelection::none();
        let tables = BoundTables::build(&src, domain, xi, sel);
        let mut entries = build_entries(&src, &tables, sel, domain.subsets(xi));
        let mut bsf = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        process_sorted_subsets(
            &src,
            domain,
            xi,
            sel,
            &tables,
            &mut entries,
            &mut bsf,
            &mut stats,
            &mut buf,
        );
        assert!(bsf.motif.is_some());
        assert_eq!(stats.subsets_skipped_sorted, 0); // nothing prunable
    }
}
