//! Table 3 reproduction: per-evaluation cost of each lower bound family.
//!
//! The paper's Table 3 lists `LB_cell` at `O(1)`, tight cross at `O(n)`,
//! tight band at `O(ξn)`, and every relaxed bound at amortized `O(1)`. We
//! measure (a) table construction cost and (b) per-subset evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_core::bounds::{BoundTables, RelaxedTables, TightTables};
use fremo_core::{BoundSelection, Domain};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::DenseMatrix;

fn bench_bounds(c: &mut Criterion) {
    let mut build = c.benchmark_group("bound_tables_build");
    for n in [500usize, 1000, 2000] {
        let t = Dataset::GeoLife.generate(n, 5);
        let src = DenseMatrix::within(t.points());
        let domain = Domain::Within { n };
        let xi = 50;
        build.bench_with_input(BenchmarkId::new("relaxed", n), &n, |b, _| {
            b.iter(|| RelaxedTables::build(std::hint::black_box(&src), domain, xi))
        });
        build.bench_with_input(BenchmarkId::new("tight", n), &n, |b, _| {
            b.iter(|| TightTables::build(std::hint::black_box(&src), domain, xi))
        });
    }
    build.finish();

    let mut eval = c.benchmark_group("bound_eval_per_subset");
    let n = 1000;
    let t = Dataset::GeoLife.generate(n, 5);
    let src = DenseMatrix::within(t.points());
    let domain = Domain::Within { n };
    let xi = 50;
    let sel = BoundSelection::all_relaxed();
    let relaxed = BoundTables::build(&src, domain, xi, sel);
    let tight = BoundTables::build(&src, domain, xi, BoundSelection::all_tight());
    let subsets: Vec<(usize, usize)> = domain.subsets(xi).step_by(97).collect();
    eval.bench_function("relaxed_combined", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &subsets {
                acc += relaxed.subset_bounds(&src, sel, i, j).combined();
            }
            acc
        })
    });
    eval.bench_function("tight_combined", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &subsets {
                acc += tight
                    .subset_bounds(&src, BoundSelection::all_tight(), i, j)
                    .combined();
            }
            acc
        })
    });
    eval.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
