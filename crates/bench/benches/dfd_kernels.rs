//! DFD kernel micro-benchmarks: full-matrix vs linear-space vs decision
//! variant (the `O(ℓ²)` cost column of Table 1, and the kernel every motif
//! search amortizes), plus the SIMD-vs-scalar verdict for the two hot
//! loops behind them.
//!
//! The `matrix_build` and `dp_row` legs time the active kernel layer
//! (SIMD rows + cache-blocked mirroring, see `docs/KERNELS.md`) against
//! the forced-scalar reference path. After the criterion sweep,
//! `verify_speedup` asserts on medians of interleaved cold repetitions
//! that both legs reach ≥1.3x over scalar — with a bit-for-bit
//! cross-check first, because a fast kernel that rounds differently is a
//! bug, not a win. Hosts whose detected kernel is already `scalar`
//! report numbers and skip the verdict, and `FREMO_KERNEL_TOLERATE=1`
//! downgrades a miss to a report for loaded shared machines (mirroring
//! `parallel_scaling` and its `FREMO_SCALING_TOLERATE`).

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use fremo_similarity::{dfd_decision, dfd_linear, dfd_with_coupling};
use fremo_trajectory::gen::planar;
use fremo_trajectory::kernel::{self, force_scalar};
use fremo_trajectory::{DenseMatrix, DistanceSource, Kernel};

/// Side length of the matrix-build verdict workload: large enough that
/// the scalar reference's strided mirror pass leaves the caches (the
/// cost the blocked tile layout removes) and the O(n²) row fills dwarf
/// the allocation.
const MATRIX_N: usize = 1024;

/// DP row width of the `dp_row` verdict: long enough that `min`
/// throughput dwarfs call overhead, short enough that the row pair stays
/// cache-resident — the regime real DP rows (one per subtrajectory
/// point) run in. Much longer rows degenerate into a DRAM bandwidth
/// test where no instruction set can win.
const DP_ROW_LEN: usize = 2_048;

fn bench_dfd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfd");
    for len in [64usize, 256, 1024] {
        let a = planar::random_walk(len, 0.4, 1);
        let b = planar::random_walk(len, 0.4, 2);
        group.bench_with_input(BenchmarkId::new("linear_space", len), &len, |bch, _| {
            bch.iter(|| {
                dfd_linear(
                    std::hint::black_box(a.points()),
                    std::hint::black_box(b.points()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("with_coupling", len), &len, |bch, _| {
            bch.iter(|| {
                dfd_with_coupling(
                    std::hint::black_box(a.points()),
                    std::hint::black_box(b.points()),
                )
            })
        });
        let eps = dfd_linear(a.points(), b.points());
        group.bench_with_input(
            BenchmarkId::new("decision_tight_eps", len),
            &len,
            |bch, _| {
                bch.iter(|| {
                    dfd_decision(
                        std::hint::black_box(a.points()),
                        std::hint::black_box(b.points()),
                        eps,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decision_small_eps", len),
            &len,
            |bch, _| {
                bch.iter(|| {
                    dfd_decision(
                        std::hint::black_box(a.points()),
                        std::hint::black_box(b.points()),
                        eps * 0.25,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let pts = planar::random_walk(MATRIX_N, 0.4, 7);
    let pts = pts.points();
    for (label, scalar) in [("matrix_build_simd", false), ("matrix_build_scalar", true)] {
        group.bench_function(label, |b| {
            force_scalar(scalar);
            b.iter(|| DenseMatrix::within(std::hint::black_box(pts)));
            force_scalar(false);
        });
    }

    // The DP pre-pass the row split vectorizes: mins[k] = prev[k].min(prev[k-1]).
    let prev: Vec<f64> = (0..DP_ROW_LEN as u64)
        .map(|i| ((i * 2_654_435_761) % 997) as f64)
        .collect();
    let mut mins = vec![0.0f64; DP_ROW_LEN];
    let active = Kernel::active();
    for (label, k) in [("dp_row_simd", active), ("dp_row_scalar", Kernel::Scalar)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                kernel::pairwise_min_with(
                    k,
                    std::hint::black_box(&prev[1..]),
                    std::hint::black_box(&prev[..prev.len() - 1]),
                    &mut mins[1..],
                );
                std::hint::black_box(&mut mins);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dfd, bench_kernels);

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Interleaved cold matrix builds under the active kernel and forced
/// scalar, bit-compared every repetition.
fn measure_matrix_medians(reps: usize) -> (f64, f64) {
    let traj = planar::random_walk(MATRIX_N, 0.4, 7);
    let pts = traj.points();
    let mut simd = Vec::with_capacity(reps);
    let mut scalar = Vec::with_capacity(reps);
    for _ in 0..reps {
        force_scalar(false);
        let s = Instant::now();
        let fast = DenseMatrix::within(std::hint::black_box(pts));
        simd.push(s.elapsed().as_secs_f64());

        force_scalar(true);
        let s = Instant::now();
        let slow = DenseMatrix::within(std::hint::black_box(pts));
        scalar.push(s.elapsed().as_secs_f64());
        force_scalar(false);

        for a in 0..MATRIX_N {
            for b in 0..MATRIX_N {
                assert_eq!(
                    fast.get(a, b).to_bits(),
                    slow.get(a, b).to_bits(),
                    "SIMD and scalar matrix builds must agree bitwise at ({a}, {b})"
                );
            }
        }
    }
    (median_seconds(simd), median_seconds(scalar))
}

/// Interleaved `pairwise_min` pre-passes under the active kernel and the
/// explicit scalar loop, bit-compared every repetition.
fn measure_dp_row_medians(reps: usize) -> (f64, f64) {
    let prev: Vec<f64> = (0..DP_ROW_LEN as u64)
        .map(|i| ((i * 2_654_435_761) % 997) as f64)
        .collect();
    let (a, b) = (&prev[1..], &prev[..prev.len() - 1]);
    let mut fast = vec![0.0f64; DP_ROW_LEN - 1];
    let mut slow = vec![0.0f64; DP_ROW_LEN - 1];
    let active = Kernel::active();
    let inner = 4096;
    let mut simd = Vec::with_capacity(reps);
    let mut scalar = Vec::with_capacity(reps);
    for _ in 0..reps {
        let s = Instant::now();
        for _ in 0..inner {
            kernel::pairwise_min_with(active, std::hint::black_box(a), b, &mut fast);
        }
        simd.push(s.elapsed().as_secs_f64());

        let s = Instant::now();
        for _ in 0..inner {
            kernel::pairwise_min_with(Kernel::Scalar, std::hint::black_box(a), b, &mut slow);
        }
        scalar.push(s.elapsed().as_secs_f64());

        for (f, sl) in fast.iter().zip(&slow) {
            assert_eq!(f.to_bits(), sl.to_bits(), "pairwise_min kernels must agree");
        }
    }
    (median_seconds(simd), median_seconds(scalar))
}

fn verdict(leg: &str, simd: f64, scalar: f64, kernel: Kernel) -> bool {
    let speedup = scalar / simd.max(1e-12);
    println!("  {leg}:");
    println!("    scalar          {:>10.3} ms", scalar * 1e3);
    println!(
        "    {:<10}      {:>10.3} ms  ({speedup:.2}x speedup)",
        kernel.name(),
        simd * 1e3
    );
    speedup >= 1.3
}

fn verify_speedup() {
    let detected = Kernel::detect();
    let active = Kernel::active();
    let reps = 7;
    let (m_simd, m_scalar) = measure_matrix_medians(reps);
    let (d_simd, d_scalar) = measure_dp_row_medians(reps);
    println!(
        "dfd_kernels verdict (medians of {reps} interleaved reps, matrix n={MATRIX_N}, \
         dp row len={DP_ROW_LEN}, kernel={}):",
        active.name()
    );
    let matrix_ok = verdict("matrix_build", m_simd, m_scalar, active);
    let dp_ok = verdict("dp_row", d_simd, d_scalar, active);
    if detected == Kernel::Scalar {
        println!("  (no SIMD kernel on this host: verdict reported, assertion skipped)");
        return;
    }
    if active == Kernel::Scalar {
        println!("  (FREMO_NO_SIMD forces scalar: verdict reported, assertion skipped)");
        return;
    }
    if std::env::var_os("FREMO_KERNEL_TOLERATE").is_some() {
        if !(matrix_ok && dp_ok) {
            eprintln!(
                "dfd_kernels: a leg misses the 1.3x floor (tolerated by FREMO_KERNEL_TOLERATE)"
            );
        }
        return;
    }
    assert!(
        matrix_ok,
        "{} matrix build misses the 1.3x floor over scalar; set FREMO_KERNEL_TOLERATE=1 \
         on loaded machines",
        active.name()
    );
    assert!(
        dp_ok,
        "{} dp_row pre-pass misses the 1.3x floor over scalar; set FREMO_KERNEL_TOLERATE=1 \
         on loaded machines",
        active.name()
    );
}

fn main() {
    benches();
    verify_speedup();
}
