//! GTM/GTM* across group sizes τ (the Figure 17 sweep at bench scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_bench::{run_algorithm, Algorithm};
use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

fn bench_gtm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtm_sweep");
    group.sample_size(10);
    let t = Dataset::GeoLife.generate(800, 13);
    for tau in [8usize, 16, 32, 64] {
        let cfg = MotifConfig::new(40).with_group_size(tau);
        group.bench_with_input(BenchmarkId::new("GTM", tau), &tau, |b, _| {
            b.iter(|| run_algorithm(Algorithm::Gtm, std::hint::black_box(&t), &cfg))
        });
        group.bench_with_input(BenchmarkId::new("GTM*", tau), &tau, |b, _| {
            b.iter(|| run_algorithm(Algorithm::GtmStar, std::hint::black_box(&t), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gtm);
criterion_main!(benches);
