//! Dynamic Time Warping (DTW) \[28\].
//!
//! Sum-of-matched-distances under an optimal monotone alignment. Because it
//! *adds up* point-to-point distances, DTW "requires each point to be
//! matched to another … thus being sensitive to non-uniform sampling"
//! (Section 2, Figure 3) — an oversampled stretch of one trajectory drags
//! many matches and inflates the total. This is precisely the failure mode
//! the paper's Figure 3 demonstrates and that DFD avoids; the bench harness
//! reproduces it in `fig03_dtw_vs_dfd`.

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// Dynamic Time Warping distance (unconstrained band, sum formulation).
///
/// Conventions: both empty → `0`, exactly one empty → `+∞`.
#[must_use]
pub fn dtw<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    let mut prev = vec![0.0_f64; m];
    let mut curr = vec![0.0_f64; m];

    let mut running = 0.0;
    for (j, q) in inner.iter().enumerate() {
        running += outer[0].distance(q);
        prev[j] = running;
    }
    for p in &outer[1..] {
        curr[0] = prev[0] + p.distance(&inner[0]);
        for j in 1..m {
            let best = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            curr[j] = best + p.distance(&inner[j]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// [`SimilarityMeasure`] wrapper for DTW.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dtw;

impl<P: GroundDistance> SimilarityMeasure<P> for Dtw {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        dtw(a, b)
    }

    fn name(&self) -> &'static str {
        "DTW"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        false
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines_sum_offsets() {
        // 4 points at constant offset 1 → DTW = 4 (sum), DFD would be 1.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]);
        assert_eq!(dtw(&a, &b), 4.0);
    }

    #[test]
    fn handles_unequal_lengths() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (2.0, 0.0)]);
        // (0,0)->(0,0): 0; (1,0) matches (0,0) or (2,0): 1; (2,0)->(2,0): 0.
        assert_eq!(dtw(&a, &b), 1.0);
        assert_eq!(dtw(&b, &a), 1.0);
    }

    #[test]
    fn sensitive_to_oversampling_unlike_dfd() {
        // Figure 3's phenomenon: Sc traces the same path as Sa but is
        // non-uniformly (over)sampled; DTW(a, c) blows up while DFD stays
        // put.
        let sa = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let sb = pts(&[(0.0, 0.6), (1.0, 0.6), (2.0, 0.6), (3.0, 0.6)]);
        // Sc: same path as Sa at offset 0.3, but 5x oversampled near x=0.
        let mut sc_coords = vec![(0.0, 0.3), (0.05, 0.3), (0.1, 0.3), (0.15, 0.3), (0.2, 0.3)];
        sc_coords.extend([(1.0, 0.3), (2.0, 0.3), (3.0, 0.3)]);
        let sc = pts(&sc_coords);

        let dfd_ab = crate::frechet::dfd(&sa, &sb);
        let dfd_ac = crate::frechet::dfd(&sa, &sc);
        assert!(dfd_ac < dfd_ab, "DFD correctly ranks Sc closer");

        let dtw_ab = dtw(&sa, &sb);
        let dtw_ac = dtw(&sa, &sc);
        assert!(
            dtw_ac > dtw_ab,
            "DTW misranks due to oversampling: {dtw_ac} vs {dtw_ab}"
        );
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[(0.0, 0.0)]);
        let empty: Vec<EuclideanPoint> = vec![];
        assert_eq!(dtw(&empty, &empty), 0.0);
        assert_eq!(dtw(&a, &empty), f64::INFINITY);
    }
}
