//! Buffer-manager contracts observed through the public `Engine` API:
//! eviction under a byte limit never changes results, spilled matrices
//! rehydrate bit-identically, and `CacheReport` deltas stay consistent
//! across warm → evicted → rewarmed query streams.

use std::path::PathBuf;

use fremo::prelude::*;
use fremo::trajectory::gen::planar;
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fremo-cache-buffer-{}-{tag}", std::process::id()))
}

/// Footprint of one trajectory's cached entries for the workload used
/// in these tests (measured, not assumed).
fn footprint(n: usize, xi: usize) -> usize {
    let engine = Engine::new();
    let id = engine.register(planar::random_walk(n, 0.4, 0));
    engine
        .execute(
            &Query::motif(id)
                .xi(xi)
                .algorithm(AlgorithmChoice::Btm)
                .build(),
        )
        .unwrap();
    engine.cache_bytes()
}

fn motif_query(id: TrajId, xi: usize) -> Query {
    Query::motif(id)
        .xi(xi)
        .algorithm(AlgorithmChoice::Btm)
        .build()
}

/// Evicting and rebuilding under a tight limit must not change any
/// answer: the motif indices and DFD bits match an unbounded engine's
/// across a query stream that repeatedly displaces entries.
#[test]
fn eviction_never_changes_results() {
    let (n, xi) = (80, 5);
    let limit = footprint(n, xi) * 3 / 2;

    let bounded = Engine::new().with_cache_limit(limit);
    let unbounded = Engine::new();
    let walks: Vec<_> = (0..4).map(|s| planar::random_walk(n, 0.4, s)).collect();
    let bounded_ids = bounded.register_all(walks.iter().cloned());
    let unbounded_ids = unbounded.register_all(walks);

    // Two passes over the corpus: the second pass re-queries evicted
    // trajectories.
    for _ in 0..2 {
        for (&bid, &uid) in bounded_ids.iter().zip(&unbounded_ids) {
            let b = bounded.execute(&motif_query(bid, xi)).unwrap();
            let u = unbounded.execute(&motif_query(uid, xi)).unwrap();
            let (bm, um) = (b.motif().unwrap(), u.motif().unwrap());
            assert_eq!(bm.first, um.first);
            assert_eq!(bm.second, um.second);
            assert_eq!(bm.distance.to_bits(), um.distance.to_bits());
            assert!(bounded.cache_bytes() <= limit);
        }
    }
    assert!(bounded.stats().cache.evictions > 0, "limit was never hit");
    assert_eq!(unbounded.stats().cache.evictions, 0);
}

/// A spilled matrix must come back from disk bit-identical: the warm
/// re-query reports a spill load, zero matrix builds, and the same DFD
/// bits as the cold run.
#[test]
fn spill_round_trip_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let (n, xi) = (80, 5);

    // Limit of 1 byte: everything is evicted (and matrices spilled) the
    // moment the query's pins are released.
    let engine = Engine::new()
        .with_cache_limit(1)
        .with_spill_dir(&dir)
        .unwrap();
    let id = engine.register(planar::random_walk(n, 0.4, 42));
    let query = motif_query(id, xi);

    let cold = engine.execute(&query).unwrap();
    assert!(cold.cache.spills >= 1, "matrix must spill on eviction");
    let warm = engine.execute(&query).unwrap();

    assert_eq!(warm.cache.matrices_built, 0, "rehydrate, don't rebuild");
    assert_eq!(warm.cache.spill_loads, 1);
    let (c, w) = (cold.motif().unwrap(), warm.motif().unwrap());
    assert_eq!(c.first, w.first);
    assert_eq!(c.second, w.second);
    assert_eq!(c.distance.to_bits(), w.distance.to_bits());

    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression for the per-query delta report: across a warm → evicted →
/// rewarmed stream the deltas must never go "negative" (the u64 fields
/// would wrap to huge values) and hits can never exceed lookups.
#[test]
fn deltas_stay_consistent_across_eviction_churn() {
    let dir = temp_dir("churn");
    let (n, xi) = (80, 5);
    let limit = footprint(n, xi) * 3 / 2;

    let engine = Engine::new()
        .with_cache_limit(limit)
        .with_spill_dir(&dir)
        .unwrap();
    let ids = engine.register_all((0..4).map(|s| planar::random_walk(n, 0.4, s)));

    let mut previous_totals = engine.stats().cache;
    // Warm pass, eviction churn pass, rewarm pass.
    for round in 0..3 {
        for &id in &ids {
            let outcome = engine.execute(&motif_query(id, xi)).unwrap();
            let delta = outcome.cache;

            // "Negative" deltas wrap: any counter near u64::MAX is a wrap.
            for (field, value) in [
                ("matrices_built", delta.matrices_built),
                ("matrices_reused", delta.matrices_reused),
                ("tables_built", delta.tables_built),
                ("tables_reused", delta.tables_reused),
                ("evictions", delta.evictions),
                ("spills", delta.spills),
                ("spill_loads", delta.spill_loads),
            ] {
                assert!(
                    value < 1 << 32,
                    "round {round}: delta {field}={value} looks like a wrapped subtraction"
                );
            }
            assert!(
                delta.hits() <= delta.lookups(),
                "round {round}: hits {} > lookups {}",
                delta.hits(),
                delta.lookups()
            );
            // Every lookup is exactly one of built / reused / rehydrated.
            assert_eq!(
                delta.lookups(),
                delta.recomputed() + delta.reused() + delta.spill_loads
            );
            let rate = delta.hit_rate();
            assert!((0.0..=1.0).contains(&rate));

            // Engine totals are monotonic snapshots of the same counters.
            let totals = engine.stats().cache;
            assert!(totals.matrices_built >= previous_totals.matrices_built);
            assert!(totals.matrices_reused >= previous_totals.matrices_reused);
            assert!(totals.tables_built >= previous_totals.tables_built);
            assert!(totals.tables_reused >= previous_totals.tables_reused);
            assert!(totals.evictions >= previous_totals.evictions);
            assert!(totals.spills >= previous_totals.spills);
            assert!(totals.spill_loads >= previous_totals.spill_loads);
            previous_totals = totals;

            // The gauge reflects the post-query resident set, within limit.
            assert_eq!(delta.resident_bytes as usize, engine.cache_bytes());
            assert!(engine.cache_bytes() <= limit);
        }
    }
    assert!(
        engine.stats().cache.evictions > 0 && engine.stats().cache.spill_loads > 0,
        "the stream must actually churn"
    );

    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter-sum invariants hold for arbitrary query streams over a
    /// corpus under a randomized cache limit: per-query lookups resolve
    /// to exactly one of built/reused/rehydrated, evictions dominate
    /// spills, and the resident set respects the limit after each query.
    #[test]
    fn counter_sums_are_consistent(
        seeds in proptest::collection::vec(0..4u64, 1..10),
        limit_fraction in 1..8usize,
    ) {
        let (n, xi) = (60, 4);
        let limit = footprint(n, xi) * limit_fraction / 2;
        let dir = temp_dir("prop");

        let engine = Engine::new().with_cache_limit(limit).with_spill_dir(&dir).unwrap();
        let ids = engine.register_all((0..4).map(|s| planar::random_walk(n, 0.4, s)));

        for &seed in &seeds {
            let outcome = engine.execute(&motif_query(ids[seed as usize], xi)).unwrap();
            let delta = outcome.cache;
            prop_assert_eq!(
                delta.lookups(),
                delta.matrices_built + delta.matrices_reused
                    + delta.tables_built + delta.tables_reused
                    + delta.spill_loads
            );
            prop_assert!(engine.cache_bytes() <= limit);
        }
        let totals = engine.stats().cache;
        prop_assert!(totals.evictions >= totals.spills, "only evicted matrices spill");
        // A spill file written once serves any number of later loads
        // (re-evicting an already-spilled matrix skips the rewrite), so
        // loads aren't bounded by spills — but they need at least one.
        prop_assert!(totals.spills > 0 || totals.spill_loads == 0);

        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }
}
