//! Search domain: motif discovery within one trajectory vs between two.
//!
//! The paper presents Problem 1 for a single trajectory and notes (Sections
//! 3–5) that every algorithm "is readily applicable" to the two-trajectory
//! variant by adjusting index ranges and dropping the non-overlap
//! constraint. [`Domain`] centralizes exactly those differences so the
//! algorithms are written once.

use fremo_trajectory::ValidRegion;

/// The index geometry of a motif search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Single trajectory of length `n`: candidates satisfy
    /// `i < ie < j < je ≤ n−1` (non-overlapping halves).
    Within {
        /// Trajectory length.
        n: usize,
    },
    /// Two trajectories of lengths `n` and `m`: the first half indexes the
    /// first trajectory, the second half the second; no ordering between
    /// them.
    Between {
        /// First trajectory length.
        n: usize,
        /// Second trajectory length.
        m: usize,
    },
}

impl Domain {
    /// Which distance-matrix cells motif paths can visit.
    #[must_use]
    pub fn region(&self) -> ValidRegion {
        match self {
            Domain::Within { .. } => ValidRegion::UpperTriangle,
            Domain::Between { .. } => ValidRegion::Full,
        }
    }

    /// Number of valid first indices (`a` axis of the distance matrix).
    #[must_use]
    pub fn len_a(&self) -> usize {
        match *self {
            Domain::Within { n } => n,
            Domain::Between { n, .. } => n,
        }
    }

    /// Number of valid second indices (`b` axis).
    #[must_use]
    pub fn len_b(&self) -> usize {
        match *self {
            Domain::Within { n } => n,
            Domain::Between { m, .. } => m,
        }
    }

    /// Largest `ie` (inclusive) a candidate starting at `(i, j)` may use:
    /// `j − 1` within one trajectory (non-overlap), `n − 1` between two.
    #[must_use]
    pub fn ie_max(&self, j: usize) -> usize {
        match *self {
            Domain::Within { .. } => j.saturating_sub(1),
            Domain::Between { n, .. } => n - 1,
        }
    }

    /// Largest `je` (inclusive): `n − 1` / `m − 1`.
    #[must_use]
    pub fn je_max(&self) -> usize {
        self.len_b() - 1
    }

    /// Whether candidate subset `CS_{i,j}` contains at least one candidate
    /// satisfying the length constraints for minimum motif length `xi`.
    #[must_use]
    pub fn subset_nonempty(&self, i: usize, j: usize, xi: usize) -> bool {
        self.pairs_in_subset(i, j, xi) > 0
    }

    /// Number of candidate pairs in `CS_{i,j}`:
    /// `ie ∈ [i+ξ+1, ie_max]` × `je ∈ [j+ξ+1, je_max]`.
    #[must_use]
    pub fn pairs_in_subset(&self, i: usize, j: usize, xi: usize) -> u128 {
        self.pairs_in_subset_capped(i, j, xi, (usize::MAX, usize::MAX))
    }

    /// [`Domain::pairs_in_subset`] with inclusive caps on `ie`/`je` — the
    /// masked rectangle the top-k search actually expands
    /// ([`crate::dp::expand_subset_capped`]).
    #[must_use]
    pub fn pairs_in_subset_capped(
        &self,
        i: usize,
        j: usize,
        xi: usize,
        (ie_cap, je_cap): (usize, usize),
    ) -> u128 {
        let ie_lo = i + xi + 1;
        let je_lo = j + xi + 1;
        let ie_hi = self.ie_max(j).min(ie_cap);
        let je_hi = self.je_max().min(je_cap);
        if ie_lo > ie_hi || je_lo > je_hi {
            return 0;
        }
        ((ie_hi - ie_lo + 1) as u128) * ((je_hi - je_lo + 1) as u128)
    }

    /// Enumerates the start pairs `(i, j)` of all non-empty candidate
    /// subsets, in row-major order.
    pub fn subsets(&self, xi: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        type JRange = Box<dyn Fn(usize) -> (usize, usize)>;
        let domain = *self;
        let (i_hi, j_of_i): (usize, JRange) = match domain {
            Domain::Within { n } => {
                // j ∈ [i+ξ+2, n−ξ−2] must be non-empty.
                let i_hi = n.saturating_sub(2 * xi + 4);
                (
                    i_hi,
                    Box::new(move |i| (i + xi + 2, n.saturating_sub(xi + 2))),
                )
            }
            Domain::Between { n, m } => {
                let i_hi = n.saturating_sub(xi + 2);
                (i_hi, Box::new(move |_| (0, m.saturating_sub(xi + 2))))
            }
        };
        let feasible = match domain {
            Domain::Within { n } => n >= 2 * xi + 4,
            Domain::Between { n, m } => n >= xi + 2 && m >= xi + 2,
        };
        (0..=i_hi).filter(move |_| feasible).flat_map(move |i| {
            let (j_lo, j_hi) = j_of_i(i);
            (j_lo..=j_hi).map(move |j| (i, j))
        })
    }

    /// Total number of non-empty candidate subsets.
    #[must_use]
    pub fn subsets_count(&self, xi: usize) -> u64 {
        self.subsets(xi).count() as u64
    }

    /// Total number of candidate pairs across all subsets (the Figure 15
    /// denominator).
    #[must_use]
    pub fn pairs_count(&self, xi: usize) -> u128 {
        self.subsets(xi)
            .map(|(i, j)| self.pairs_in_subset(i, j, xi))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_minimal_case() {
        // n = 2ξ+4 with ξ=1 → n=6: exactly one subset (i=0, j=3) with one
        // candidate (0,2,3,5).
        let d = Domain::Within { n: 6 };
        let subsets: Vec<_> = d.subsets(1).collect();
        assert_eq!(subsets, vec![(0, 3)]);
        assert_eq!(d.pairs_in_subset(0, 3, 1), 1);
        assert_eq!(d.pairs_count(1), 1);
    }

    #[test]
    fn within_too_short_is_empty() {
        let d = Domain::Within { n: 5 };
        assert_eq!(d.subsets(1).count(), 0);
        assert_eq!(d.pairs_count(1), 0);
        let d = Domain::Within { n: 0 };
        assert_eq!(d.subsets(3).count(), 0);
    }

    #[test]
    fn within_subsets_are_all_nonempty_and_complete() {
        let d = Domain::Within { n: 20 };
        let xi = 3;
        let listed: std::collections::HashSet<_> = d.subsets(xi).collect();
        // Cross-check against brute-force enumeration of valid candidates.
        let mut expected = std::collections::HashSet::new();
        for i in 0..20 {
            for ie in (i + xi + 1)..20 {
                for j in (ie + 1)..20 {
                    for je in (j + xi + 1)..20 {
                        expected.insert((i, j));
                        let _ = (ie, je);
                    }
                }
            }
        }
        assert_eq!(listed, expected);
        // Pair counts agree with brute force too.
        let mut pair_total: u128 = 0;
        for i in 0..20_usize {
            for ie in (i + xi + 1)..20 {
                for j in (ie + 1)..20 {
                    for je in (j + xi + 1)..20 {
                        let _ = (ie, je);
                        pair_total += 1;
                    }
                }
            }
        }
        assert_eq!(d.pairs_count(xi), pair_total);
    }

    #[test]
    fn between_subsets_complete() {
        let d = Domain::Between { n: 10, m: 8 };
        let xi = 2;
        let listed: Vec<_> = d.subsets(xi).collect();
        // i ∈ [0, 10-4], j ∈ [0, 8-4]
        assert_eq!(listed.len(), 7 * 5);
        assert!(listed.contains(&(0, 0)));
        assert!(listed.contains(&(6, 4)));
        // Every listed subset is non-empty; none beyond.
        for &(i, j) in &listed {
            assert!(d.subset_nonempty(i, j, xi));
        }
        assert!(!d.subset_nonempty(7, 0, xi));
        assert!(!d.subset_nonempty(0, 5, xi));
    }

    #[test]
    fn ie_ranges_respect_overlap_rule() {
        let within = Domain::Within { n: 30 };
        assert_eq!(within.ie_max(10), 9);
        let between = Domain::Between { n: 30, m: 20 };
        assert_eq!(between.ie_max(10), 29);
        assert_eq!(between.je_max(), 19);
        assert_eq!(within.je_max(), 29);
    }

    #[test]
    fn regions() {
        assert_eq!(Domain::Within { n: 4 }.region(), ValidRegion::UpperTriangle);
        assert_eq!(Domain::Between { n: 4, m: 4 }.region(), ValidRegion::Full);
    }
}
