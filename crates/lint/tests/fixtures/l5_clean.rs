// L5 clean fixture: every allow records why the warning is wrong here.

// lint: kept as an extension seam for the next PR's wiring.
#[allow(dead_code)]
fn helper() {}

// lint: kernel entry threading prepared state; a struct would churn call
// sites.
#[allow(clippy::too_many_arguments)]
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}
