//! End-to-end flows through the umbrella crate's public API: data
//! generation → serialization → reload → discovery → verification, plus
//! dataset-loader behaviour on representative inputs.

use fremo::prelude::*;
use fremo::trajectory::gen::Dataset;
use fremo::trajectory::io::{csv::read_csv_from, write_csv};
use fremo::trajectory::TrajectoryStats;

#[test]
fn generate_roundtrip_discover() {
    let original = Dataset::GeoLife.generate(180, 77);

    // Serialize to CSV and re-read.
    let mut buf = Vec::new();
    write_csv(&mut buf, &original).expect("write");
    let reloaded = read_csv_from(buf.as_slice()).expect("read");
    assert_eq!(reloaded.len(), original.len());

    // Discovery on original and reloaded data must agree (up to the CSV's
    // 1e-8-degree rounding — far below GPS noise).
    let cfg = MotifConfig::new(10);
    let a = Gtm.discover(&original, &cfg).expect("motif");
    let b = Gtm.discover(&reloaded, &cfg).expect("motif");
    assert_eq!(a.first, b.first);
    assert_eq!(a.second, b.second);
    assert!((a.distance - b.distance).abs() < 1e-3);
}

#[test]
fn stats_describe_generated_data() {
    for dataset in Dataset::ALL {
        let t = dataset.generate(400, 5);
        let s = TrajectoryStats::compute(&t);
        assert_eq!(s.len, 400);
        assert!(s.path_length > 0.0);
        assert!(s.mean_dt.unwrap() > 0.0);
        match dataset {
            Dataset::Baboon => assert!(s.dt_cv.unwrap() < 1e-9, "baboon is 1 Hz uniform"),
            Dataset::GeoLife => assert!(s.dt_cv.unwrap() > 0.3, "geolife is non-uniform"),
            Dataset::Truck => assert!(s.mean_dt.unwrap() > 25.0, "trucks sample coarsely"),
        }
    }
}

#[test]
fn prelude_supports_the_documented_quickstart() {
    let trajectory = fremo::trajectory::gen::geolife_like(300, 42);
    let config = MotifConfig::new(20);
    let motif = Gtm.discover(&trajectory, &config).expect("found a motif");
    assert!(motif.is_valid_within(trajectory.len(), 20));
    assert!(motif.distance.is_finite());
}

#[test]
fn subtrajectory_views_match_motif_indices() {
    let t = Dataset::Truck.generate(160, 12);
    let cfg = MotifConfig::new(8);
    let m = Btm.discover(&t, &cfg).expect("motif");
    let first = t.sub(m.first.0, m.first.1).expect("valid range");
    let second = t.sub(m.second.0, m.second.1).expect("valid range");
    assert_eq!(first.len(), m.first_len());
    assert_eq!(second.len(), m.second_len());
    assert!(!first.overlaps(&second));
    // Materialized halves reproduce the reported DFD via the standalone
    // kernel.
    let d = dfd(first.points(), second.points());
    assert!((d - m.distance).abs() < 1e-9);
}

#[test]
fn between_variant_accepts_unequal_lengths() {
    let a = Dataset::GeoLife.generate(140, 1);
    let b = Dataset::GeoLife.generate(90, 2);
    let cfg = MotifConfig::new(8);
    let m = GtmStar.discover_between(&a, &b, &cfg).expect("motif");
    assert!(m.is_valid_between(a.len(), b.len(), 8));
    assert!(m.first.1 < a.len());
    assert!(m.second.1 < b.len());
}

#[test]
fn search_stats_are_plausible() {
    let t = Dataset::GeoLife.generate(200, 3);
    let cfg = MotifConfig::new(10);
    let (motif, stats) = Btm.discover_with_stats(&t, &cfg);
    assert!(motif.is_some());
    assert!(stats.subsets_total > 0);
    assert!(stats.pairs_total > 0);
    assert!(stats.total_seconds > 0.0);
    assert!(stats.total_seconds >= stats.precompute_seconds);
    assert!(stats.peak_bytes() >= 200 * 200 * 8); // at least the dG matrix
    assert!(stats.pruned_fraction() >= 0.0 && stats.pruned_fraction() <= 1.0);
}
