//! Figure 20: response time vs minimum motif length ξ (BTM, GTM, GTM*).
//!
//! Response time increases with ξ — a large ξ disqualifies short
//! small-DFD motifs, delaying a good `bsf` and weakening pruning (the
//! paper ties this back to Figure 14(a)).

use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

fn cell(dataset: Dataset, n: usize, xi: usize, alg: Algorithm, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(dataset, n, reps, 2000);
    let ms: Vec<Measurement> = ts.iter().map(|t| run_algorithm(alg, t, &cfg).0).collect();
    average(&ms)
}

/// Regenerates Figure 20 (one table per dataset, n fixed).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let reps = scale.repetitions();
    let mut out = Vec::new();

    for dataset in Dataset::ALL {
        let mut table = Table::new(vec!["xi", "GTM* (s)", "GTM (s)", "BTM (s)"]);
        for &xi in scale.motif_lengths() {
            let mut row = vec![xi.to_string()];
            for alg in Algorithm::ADVANCED {
                row.push(fmt_secs(cell(dataset, n, xi, alg, reps).seconds));
            }
            table.row(row);
        }
        out.push((
            format!("Figure 20: response time vs xi — {dataset} (n={n})"),
            table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_agree_across_xi() {
        for xi in [8, 16] {
            let btm = cell(Dataset::Truck, 160, xi, Algorithm::Btm, 1);
            let gtm = cell(Dataset::Truck, 160, xi, Algorithm::Gtm, 1);
            let star = cell(Dataset::Truck, 160, xi, Algorithm::GtmStar, 1);
            let d = btm.distance.unwrap();
            assert!((gtm.distance.unwrap() - d).abs() < 1e-9);
            assert!((star.distance.unwrap() - d).abs() < 1e-9);
        }
    }
}
