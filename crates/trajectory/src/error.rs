//! Error types shared across the trajectory substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by trajectory construction, parsing and validation.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A latitude was outside `[-90, 90]` or a longitude outside `[-180, 180]`.
    CoordinateOutOfRange {
        /// Human-readable description of the offending coordinate.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Timestamps must be strictly ascending (Definition 1 of the paper).
    NonAscendingTimestamps {
        /// Index at which the violation occurred.
        index: usize,
    },
    /// The number of timestamps does not match the number of points.
    TimestampLengthMismatch {
        /// Number of points.
        points: usize,
        /// Number of timestamps.
        timestamps: usize,
    },
    /// A trajectory was too short for the requested operation.
    TooShort {
        /// Number of points available.
        len: usize,
        /// Number of points required.
        required: usize,
    },
    /// A subtrajectory range `[start..=end]` was invalid for the trajectory.
    InvalidRange {
        /// Requested start index.
        start: usize,
        /// Requested (inclusive) end index.
        end: usize,
        /// Length of the trajectory.
        len: usize,
    },
    /// A non-finite coordinate (NaN or infinity) was encountered.
    NonFiniteCoordinate {
        /// Index of the offending point.
        index: usize,
    },
    /// An I/O error occurred while reading or writing a dataset.
    Io(std::io::Error),
    /// A dataset file could not be parsed.
    Parse {
        /// 1-based line number of the offending record, if known.
        line: usize,
        /// Description of the parse failure.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::CoordinateOutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            Error::NonAscendingTimestamps { index } => {
                write!(
                    f,
                    "timestamps must be strictly ascending (violation at index {index})"
                )
            }
            Error::TimestampLengthMismatch { points, timestamps } => write!(
                f,
                "timestamp count {timestamps} does not match point count {points}"
            ),
            Error::TooShort { len, required } => {
                write!(f, "trajectory has {len} points but {required} are required")
            }
            Error::InvalidRange { start, end, len } => {
                write!(
                    f,
                    "invalid subtrajectory range [{start}..={end}] for length {len}"
                )
            }
            Error::NonFiniteCoordinate { index } => {
                write!(f, "non-finite coordinate at index {index}")
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::CoordinateOutOfRange {
            what: "latitude",
            value: 91.0,
        };
        assert!(e.to_string().contains("latitude"));
        assert!(e.to_string().contains("91"));

        let e = Error::InvalidRange {
            start: 3,
            end: 2,
            len: 10,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('2') && s.contains("10"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn parse_error_reports_line() {
        let e = Error::Parse {
            line: 42,
            message: "bad latitude".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("bad latitude"));
    }
}
