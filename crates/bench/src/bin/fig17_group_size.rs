//! Regenerates Figure 17 (GTM group size tau).
use fremo_bench::experiments::{fig17_group_size, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig17_group_size::run(scale);
    print_all("Figure 17 (GTM group size tau)", &tables);
}
