//! Differential suite: parallel execution ≡ serial execution
//! **bit-for-bit** — DFD values compared by bit pattern and motif indices
//! by value — for BTM, GTM, GTM*, similarity join, top-k, and clustering,
//! across worker counts {1, 2, 4, 8}, in the Within and Between variants,
//! both through the direct APIs and through the engine facade.
//!
//! This is the teeth behind the snapshot-pruning exactness argument (see
//! `fremo_core::parallel`): parallelism may change scheduling and wasted
//! work, never results.

use std::time::Duration;

use fremo::motif::engine::ExecutionMode;
use fremo::motif::{
    cluster_subtrajectories, cluster_subtrajectories_parallel, similarity_join,
    similarity_join_parallel, similarity_self_join, similarity_self_join_parallel, top_k_motifs,
    top_k_motifs_parallel, ClusterConfig, JoinResult, ParallelBtm,
};
use fremo::prelude::*;
use fremo::trajectory::gen::planar;
use fremo::trajectory::Trajectory;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn assert_motif_bits(label: &str, serial: Option<Motif>, parallel: Option<Motif>) {
    match (serial, parallel) {
        (None, None) => {}
        (Some(s), Some(p)) => {
            assert_eq!(
                s.distance.to_bits(),
                p.distance.to_bits(),
                "{label}: DFD differs ({} vs {})",
                s.distance,
                p.distance
            );
            assert_eq!(s.first, p.first, "{label}: first interval differs");
            assert_eq!(s.second, p.second, "{label}: second interval differs");
        }
        (s, p) => panic!("{label}: serial={s:?} parallel={p:?}"),
    }
}

#[test]
fn parallel_btm_matches_serial_within_and_between() {
    for seed in 0..3 {
        let t = planar::random_walk(110, 0.4, seed);
        let b = planar::random_walk(90, 0.4, seed + 40);
        let cfg = MotifConfig::new(5);
        let serial_within = Btm.discover(&t, &cfg);
        let serial_between = Btm.discover_between(&t, &b, &cfg);
        for threads in THREADS {
            let p = ParallelBtm::new(threads);
            assert_motif_bits(
                &format!("btm within seed {seed} threads {threads}"),
                serial_within,
                p.discover(&t, &cfg),
            );
            assert_motif_bits(
                &format!("btm between seed {seed} threads {threads}"),
                serial_between,
                p.discover_between(&t, &b, &cfg),
            );
        }
    }
}

/// Engine facade: Serial vs Parallel{t} for every exact algorithm, in
/// both scopes.
#[test]
fn engine_parallel_matches_serial_for_every_algorithm() {
    let engine = Engine::new();
    let a = engine.register(planar::random_walk(130, 0.4, 7));
    let b = engine.register(planar::random_walk(100, 0.4, 8));

    for algorithm in [
        AlgorithmChoice::BruteDp,
        AlgorithmChoice::Btm,
        AlgorithmChoice::Gtm,
        AlgorithmChoice::GtmStar,
    ] {
        for (label, builder) in [
            ("within", Query::motif(a)),
            ("between", Query::motif_between(a, b)),
        ] {
            let base = builder.clone().xi(4).group_size(8).algorithm(algorithm);
            let serial = engine
                .execute(&base.clone().execution(ExecutionMode::Serial).build())
                .unwrap();
            for threads in THREADS {
                let parallel = engine
                    .execute(&base.clone().threads(threads).build())
                    .unwrap();
                assert_motif_bits(
                    &format!("engine {algorithm} {label} threads {threads}"),
                    serial.motif(),
                    parallel.motif(),
                );
                assert_eq!(parallel.algorithm, serial.algorithm);
                // BruteDP deliberately ignores the execution mode; every
                // scanning algorithm must report its worker count.
                if algorithm != AlgorithmChoice::BruteDp {
                    assert_eq!(
                        parallel.stats.threads_used, threads,
                        "engine {algorithm} {label}"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_auto_mode_stays_exact() {
    // Below the crossover Auto runs serial; the point is that plumbing a
    // mode through never changes results.
    let engine = Engine::new();
    let id = engine.register(planar::random_walk(90, 0.4, 3));
    let auto = engine.execute(&Query::motif(id).xi(4).build()).unwrap();
    let serial = engine
        .execute(
            &Query::motif(id)
                .xi(4)
                .execution(ExecutionMode::Serial)
                .build(),
        )
        .unwrap();
    assert_motif_bits("auto vs serial", serial.motif(), auto.motif());
}

#[test]
fn top_k_parallel_matches_serial() {
    let t = planar::random_walk(150, 0.4, 11);
    let cfg = MotifConfig::new(4);
    let serial = top_k_motifs(&t, &cfg, 4);
    assert!(serial.len() >= 2, "workload should yield disjoint motifs");
    for threads in THREADS {
        let parallel = top_k_motifs_parallel(&t, &cfg, 4, threads);
        assert_eq!(parallel.len(), serial.len(), "threads {threads}");
        for (rank, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_motif_bits(
                &format!("top-k rank {rank} threads {threads}"),
                Some(*s),
                Some(*p),
            );
        }
    }

    // Same through the engine facade.
    let engine = Engine::new();
    let id = engine.register(t);
    let base = Query::top_k(id, 4).xi(4);
    let serial = engine
        .execute(&base.clone().execution(ExecutionMode::Serial).build())
        .unwrap();
    for threads in THREADS {
        let parallel = engine
            .execute(&base.clone().threads(threads).build())
            .unwrap();
        let (s, p) = (serial.motifs(), parallel.motifs());
        assert_eq!(s.len(), p.len());
        for (rank, (s, p)) in s.iter().zip(&p).enumerate() {
            assert_motif_bits(
                &format!("engine top-k rank {rank} threads {threads}"),
                Some(*s),
                Some(*p),
            );
        }
        assert_eq!(parallel.stats.threads_used, threads);
    }
}

fn assert_join_eq(label: &str, serial: &JoinResult, parallel: &JoinResult) {
    assert_eq!(serial.pairs, parallel.pairs, "{label}: matched pairs");
    assert_eq!(
        serial.pruned_endpoints, parallel.pruned_endpoints,
        "{label}: endpoint counter"
    );
    assert_eq!(
        serial.pruned_hausdorff, parallel.pruned_hausdorff,
        "{label}: hausdorff counter"
    );
    assert_eq!(serial.verified, parallel.verified, "{label}: verified");
}

#[test]
fn join_parallel_matches_serial() {
    let set: Vec<Trajectory<EuclideanPoint>> = (0..8)
        .map(|k| planar::random_walk(30, 0.4, 300 + k))
        .collect();
    let other: Vec<Trajectory<EuclideanPoint>> = (0..6)
        .map(|k| planar::random_walk(26, 0.4, 500 + k))
        .collect();
    for eps in [1.0, 5.0, 20.0] {
        let self_serial = similarity_self_join(&set, eps);
        let cross_serial = similarity_join(&set, &other, eps);
        for threads in THREADS {
            assert_join_eq(
                &format!("self-join eps {eps} threads {threads}"),
                &self_serial,
                &similarity_self_join_parallel(&set, eps, threads),
            );
            assert_join_eq(
                &format!("cross-join eps {eps} threads {threads}"),
                &cross_serial,
                &similarity_join_parallel(&set, &other, eps, threads),
            );
        }
    }

    // And through the engine facade.
    let engine = Engine::new();
    let ids = engine.register_all(set);
    let base = Query::join(ids, 5.0);
    let serial = engine
        .execute(&base.clone().execution(ExecutionMode::Serial).build())
        .unwrap();
    for threads in THREADS {
        let parallel = engine
            .execute(&base.clone().threads(threads).build())
            .unwrap();
        assert_join_eq(
            &format!("engine join threads {threads}"),
            serial.join().unwrap(),
            parallel.join().unwrap(),
        );
    }
}

/// A trajectory tracing the same loop several times, so clustering forms
/// clusters of genuinely similar windows (plus a random walk for the
/// mostly-singleton regime).
fn looping(laps: usize, per_lap: usize, jitter: f64) -> Trajectory<EuclideanPoint> {
    let mut pts = Vec::new();
    for lap in 0..laps {
        let off = jitter * lap as f64;
        for k in 0..per_lap {
            let a = std::f64::consts::TAU * k as f64 / per_lap as f64;
            pts.push(EuclideanPoint::new(10.0 * a.cos() + off, 10.0 * a.sin()));
        }
    }
    Trajectory::new(pts)
}

#[test]
fn cluster_parallel_matches_serial() {
    let workloads: Vec<(Trajectory<EuclideanPoint>, ClusterConfig)> = vec![
        (looping(6, 24, 0.05), ClusterConfig::new(24, 12, 1.0)),
        (
            planar::random_walk(240, 0.4, 9),
            ClusterConfig::new(16, 4, 4.0),
        ),
    ];
    for (wi, (t, cfg)) in workloads.iter().enumerate() {
        let serial = cluster_subtrajectories(t, cfg);
        assert!(!serial.is_empty());
        for threads in THREADS {
            let parallel = cluster_subtrajectories_parallel(t, cfg, threads);
            assert_eq!(
                serial.len(),
                parallel.len(),
                "workload {wi} threads {threads}: cluster count"
            );
            for (ci, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.representative, p.representative,
                    "workload {wi} threads {threads} cluster {ci}"
                );
                assert_eq!(
                    s.members, p.members,
                    "workload {wi} threads {threads} cluster {ci}"
                );
            }
        }
    }

    // And through the engine facade.
    let engine = Engine::new();
    let id = engine.register(looping(5, 20, 0.1));
    let base = Query::cluster(id, 20, 10, 2.0);
    let serial = engine
        .execute(&base.clone().execution(ExecutionMode::Serial).build())
        .unwrap();
    for threads in THREADS {
        let parallel = engine
            .execute(&base.clone().threads(threads).build())
            .unwrap();
        let (s, p) = (serial.clusters().unwrap(), parallel.clusters().unwrap());
        assert_eq!(s.len(), p.len());
        for (sc, pc) in s.iter().zip(p) {
            assert_eq!(sc.representative, pc.representative);
            assert_eq!(sc.members, pc.members);
        }
    }
}

/// Regression for the budget fix: the parallel workers must honor
/// expansion caps and deadlines instead of over-running, and report the
/// truncation.
#[test]
fn parallel_workers_honor_budgets_and_report_truncation() {
    let t = planar::random_walk(120, 0.4, 5);
    let engine = Engine::new();
    let id = engine.register(t);

    // Expansion cap: exactly `cap` expansion slots exist across all
    // workers, and the unexamined remainder is budget-skipped.
    for threads in [2, 4, 8] {
        let q = Query::motif(id)
            .xi(3)
            .algorithm(AlgorithmChoice::Btm)
            .threads(threads)
            .candidate_budget(2)
            .build();
        let outcome = engine.execute(&q).unwrap();
        assert!(outcome.truncated, "threads {threads}: truncation reported");
        assert!(
            outcome.stats.subsets_expanded <= 2,
            "threads {threads}: cap over-run ({} expansions)",
            outcome.stats.subsets_expanded
        );
        assert!(outcome.stats.subsets_skipped_budget > 0);
        assert_eq!(outcome.stats.pairs_accounted(), outcome.stats.pairs_total);
        assert_eq!(
            outcome.stats.subsets_expanded
                + outcome.stats.subsets_skipped_sorted
                + outcome.stats.subsets_skipped_budget,
            outcome.stats.subsets_total,
            "threads {threads}"
        );
        assert_eq!(outcome.stats.pruned_fraction(), 0.0);
    }

    // Expired deadline: workers stop before expanding anything.
    let q = Query::motif(id)
        .xi(3)
        .algorithm(AlgorithmChoice::Btm)
        .threads(4)
        .time_budget(Duration::ZERO)
        .build();
    let outcome = engine.execute(&q).unwrap();
    assert!(outcome.truncated);
    assert_eq!(outcome.stats.subsets_expanded, 0);
    assert!(outcome.motif().is_none());
    assert_eq!(outcome.stats.pairs_accounted(), outcome.stats.pairs_total);

    // An unbudgeted parallel query on the same engine still completes
    // exactly (the cached matrix/tables are shared with budgeted runs).
    let full = engine
        .execute(
            &Query::motif(id)
                .xi(3)
                .algorithm(AlgorithmChoice::Btm)
                .threads(4)
                .build(),
        )
        .unwrap();
    let serial = engine
        .execute(
            &Query::motif(id)
                .xi(3)
                .algorithm(AlgorithmChoice::Btm)
                .execution(ExecutionMode::Serial)
                .build(),
        )
        .unwrap();
    assert!(!full.truncated);
    assert_motif_bits("post-budget full query", serial.motif(), full.motif());
}
