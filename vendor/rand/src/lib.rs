//! Minimal, API-compatible subset of the `rand` crate, vendored so the
//! workspace builds in offline environments (no crates.io access).
//!
//! Only the surface the `fremo` workspace uses is provided: [`SeedableRng`]
//! with `seed_from_u64`, [`rngs::StdRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, which is all
//! the synthetic-workload generators require. Swap this path dependency for
//! the real crates.io `rand = "0.8"` once network access is available; no
//! source changes are needed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++ under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }
}

/// Raw 64-bit output (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that `Rng::gen` can produce (stand-in for `Standard` sampling).
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32, i16, i8, u16, u8, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over its natural domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-15..=15);
            assert!((-15..=15).contains(&x));
            let f = rng.gen_range(0.25..4.0_f64);
            assert!((0.25..4.0).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
