//! Workload construction for the experiments.
//!
//! The paper reports "average measurements over 10 different trajectories
//! of the same length", concatenating raw trajectories to reach each
//! target length (Section 6.1). We mirror that: each repetition uses a
//! different seed, and trajectories come from the synthetic stand-ins for
//! GeoLife / Truck / Wild-Baboon (`DESIGN.md` §5). Generation of the
//! per-repetition trajectories fans out over crossbeam scoped threads —
//! generation only; timed searches always run sequentially.

use fremo_core::engine::{Engine, TrajId};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::{GeoPoint, Trajectory};

/// Builds `reps` trajectories of exactly `n` points from `dataset`,
/// deterministically seeded (`base_seed + rep`).
#[must_use]
pub fn trajectories(
    dataset: Dataset,
    n: usize,
    reps: usize,
    base_seed: u64,
) -> Vec<Trajectory<GeoPoint>> {
    let mut out: Vec<Option<Trajectory<GeoPoint>>> = (0..reps).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (rep, slot) in out.iter_mut().enumerate() {
            scope.spawn(move |_| {
                *slot = Some(dataset.generate(n, base_seed + rep as u64));
            });
        }
    })
    .expect("generator threads do not panic");
    out.into_iter().map(|t| t.expect("filled")).collect()
}

/// Builds a workload and registers it with a fresh [`Engine`] session —
/// the corpus form for session-style measurements (used by
/// `benches/engine_overhead.rs`; the seam future serving frontends plug
/// into).
#[must_use]
pub fn corpus(
    dataset: Dataset,
    n: usize,
    reps: usize,
    base_seed: u64,
) -> (Engine<GeoPoint>, Vec<TrajId>) {
    let engine = Engine::new();
    let ids = engine.register_all(trajectories(dataset, n, reps, base_seed));
    (engine, ids)
}

/// Builds `reps` *pairs* of trajectories for the two-trajectory variant
/// (Figure 21: "randomly select 10 pairs of input trajectories").
#[must_use]
pub fn trajectory_pairs(
    dataset: Dataset,
    n: usize,
    reps: usize,
    base_seed: u64,
) -> Vec<(Trajectory<GeoPoint>, Trajectory<GeoPoint>)> {
    let firsts = trajectories(dataset, n, reps, base_seed);
    let seconds = trajectories(dataset, n, reps, base_seed + 10_000);
    firsts.into_iter().zip(seconds).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_generation_matches_sequential() {
        let par = trajectories(Dataset::Truck, 200, 3, 7);
        for (rep, t) in par.iter().enumerate() {
            let seq = Dataset::Truck.generate(200, 7 + rep as u64);
            assert_eq!(t.points(), seq.points());
        }
    }

    #[test]
    fn corpus_registers_every_repetition() {
        let (engine, ids) = corpus(Dataset::Baboon, 120, 4, 9);
        assert_eq!(engine.len(), 4);
        assert_eq!(ids.len(), 4);
        for (rep, id) in ids.iter().enumerate() {
            let t = engine.trajectory(*id).expect("registered");
            let seq = Dataset::Baboon.generate(120, 9 + rep as u64);
            assert_eq!(t.points(), seq.points());
        }
    }

    #[test]
    fn pairs_are_independent() {
        let pairs = trajectory_pairs(Dataset::GeoLife, 150, 2, 3);
        assert_eq!(pairs.len(), 2);
        for (a, b) in &pairs {
            assert_eq!(a.len(), 150);
            assert_eq!(b.len(), 150);
            assert_ne!(a.points(), b.points());
        }
    }
}
