//! Small planar workloads for unit tests, doc examples and figures.
//!
//! These generate [`EuclideanPoint`] trajectories with easily reasoned-about
//! geometry: straight lines, zigzags, circles, and uniform random scatter.
//! Used throughout the test suites of `fremo-similarity` and `fremo-core`
//! where hand-checkable distances matter more than realism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::point::EuclideanPoint;
use crate::trajectory::Trajectory;

/// `n` points evenly spaced on the segment from `from` to `to`.
///
/// # Panics
///
/// Panics when `n < 2`.
#[must_use]
pub fn line(from: (f64, f64), to: (f64, f64), n: usize) -> Trajectory<EuclideanPoint> {
    assert!(n >= 2, "a line needs at least two points");
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            EuclideanPoint::new(from.0 + f * (to.0 - from.0), from.1 + f * (to.1 - from.1))
        })
        .collect()
}

/// A horizontal zigzag of `n` points with unit step in x and amplitude `amp`
/// in y — alternating `(0,0), (1,amp), (2,0), (3,amp), …`.
#[must_use]
pub fn zigzag(n: usize, amp: f64) -> Trajectory<EuclideanPoint> {
    (0..n)
        .map(|i| EuclideanPoint::new(i as f64, if i % 2 == 0 { 0.0 } else { amp }))
        .collect()
}

/// `n` points evenly spaced on a circle of radius `r` centred at `c`,
/// starting at angle 0 and travelling counter-clockwise (not closed: the
/// last point is one step short of the first).
#[must_use]
pub fn circle(c: (f64, f64), r: f64, n: usize) -> Trajectory<EuclideanPoint> {
    (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            EuclideanPoint::new(c.0 + r * a.cos(), c.1 + r * a.sin())
        })
        .collect()
}

/// `n` i.i.d. uniform points in the axis-aligned box `[0, w] × [0, h]`.
#[must_use]
pub fn uniform_box(n: usize, w: f64, h: f64, seed: u64) -> Trajectory<EuclideanPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| EuclideanPoint::new(rng.gen::<f64>() * w, rng.gen::<f64>() * h))
        .collect()
}

/// A planar correlated random walk with `n` points, unit mean step length
/// and turning-angle noise `kappa` (radians std-dev per step).
#[must_use]
pub fn random_walk(n: usize, kappa: f64, seed: u64) -> Trajectory<EuclideanPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let (mut x, mut y) = (0.0_f64, 0.0_f64);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(EuclideanPoint::new(x, y));
        heading += kappa * super::randn(&mut rng);
        x += heading.cos();
        y += heading.sin();
    }
    Trajectory::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GroundDistance;

    #[test]
    fn line_endpoints_and_spacing() {
        let t = line((0.0, 0.0), (10.0, 0.0), 11);
        assert_eq!(t.len(), 11);
        assert_eq!(t[0], EuclideanPoint::new(0.0, 0.0));
        assert_eq!(t[10], EuclideanPoint::new(10.0, 0.0));
        for i in 1..11 {
            assert!((t.dist(i - 1, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zigzag_alternates() {
        let t = zigzag(4, 2.0);
        assert_eq!(t[0].y, 0.0);
        assert_eq!(t[1].y, 2.0);
        assert_eq!(t[2].y, 0.0);
        assert_eq!(t[3].y, 2.0);
    }

    #[test]
    fn circle_points_on_radius() {
        let t = circle((1.0, -1.0), 5.0, 16);
        let c = EuclideanPoint::new(1.0, -1.0);
        for p in t.points() {
            assert!((p.distance(&c) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_box_in_bounds_and_deterministic() {
        let a = uniform_box(100, 3.0, 7.0, 5);
        let b = uniform_box(100, 3.0, 7.0, 5);
        assert_eq!(a.points(), b.points());
        for p in a.points() {
            assert!((0.0..=3.0).contains(&p.x));
            assert!((0.0..=7.0).contains(&p.y));
        }
    }

    #[test]
    fn random_walk_has_unit_steps() {
        let t = random_walk(50, 0.3, 9);
        for i in 1..t.len() {
            assert!((t.dist(i - 1, i) - 1.0).abs() < 1e-9);
        }
    }
}
