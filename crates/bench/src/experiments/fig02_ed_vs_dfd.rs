//! Figure 2: the most similar pair by ED vs by DFD.
//!
//! The paper shows that on GeoLife the pair minimizing (lock-step) ED has
//! a *higher* DFD than the pair minimizing DFD — ED "measures spatial
//! proximity only, and dismisses the movement pattern". We reproduce the
//! phenomenon quantitatively: on a GeoLife-like trajectory we find (a) the
//! fixed-length subtrajectory pair minimizing mean lock-step ED by
//! exhaustive scan, and (b) the DFD motif via BTM, and report both pairs
//! under both measures (the figure's caption numbers).

use fremo_core::{Btm, MotifConfig, MotifDiscovery};
use fremo_similarity::{dfd, lockstep_euclidean};
use fremo_trajectory::gen;

use crate::experiments::Titled;
use crate::scale::Scale;
use crate::table::Table;

/// Finds the non-overlapping fixed-length window pair minimizing lock-step
/// ED (the natural "motif by ED").
fn ed_motif(points: &[fremo_trajectory::GeoPoint], len: usize) -> (usize, usize, f64) {
    let n = points.len();
    let mut best = (0, 0, f64::INFINITY);
    for i in 0..n.saturating_sub(2 * len) {
        for j in (i + len)..n.saturating_sub(len) {
            let d = lockstep_euclidean(&points[i..i + len], &points[j..j + len]);
            if d < best.2 {
                best = (i, j, d);
            }
        }
    }
    best
}

/// Regenerates Figure 2's comparison.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = match scale {
        Scale::Smoke => 200,
        _ => 600,
    };
    let xi = match scale {
        Scale::Smoke => 10,
        _ => 30,
    };
    let t = gen::geolife_like(n, 2017);
    let pts = t.points();

    // (a) most similar pair by ED (windows of length ξ+2, the minimum
    // motif size).
    let wlen = xi + 2;
    let (ei, ej, ed_val) = ed_motif(pts, wlen);
    let ed_pair_dfd = dfd(&pts[ei..ei + wlen], &pts[ej..ej + wlen]);

    // (b) most similar pair by DFD (the actual motif).
    let cfg = MotifConfig::new(xi);
    let motif = Btm.discover(&t, &cfg).expect("motif exists");
    let dfd_pair_ed = lockstep_euclidean(
        &pts[motif.first.0..=motif.first.1],
        &pts[motif.second.0..=motif.second.1],
    );

    let mut table = Table::new(vec!["selected by", "pair", "ED (m)", "DFD (m)"]);
    table.row(vec![
        "ED".to_string(),
        format!("[{ei}..{}] ~ [{ej}..{}]", ei + wlen - 1, ej + wlen - 1),
        format!("{ed_val:.2}"),
        format!("{ed_pair_dfd:.2}"),
    ]);
    table.row(vec![
        "DFD".to_string(),
        format!(
            "[{}..{}] ~ [{}..{}]",
            motif.first.0, motif.first.1, motif.second.0, motif.second.1
        ),
        format!(
            "{}",
            if dfd_pair_ed.is_finite() {
                format!("{dfd_pair_ed:.2}")
            } else {
                "n/a (lengths differ)".into()
            }
        ),
        format!("{:.2}", motif.distance),
    ]);

    vec![(
        "Figure 2: most similar pair by ED vs by DFD (GeoLife-like)".to_string(),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfd_motif_beats_ed_pair_on_dfd() {
        // The defining inequality behind Figure 2: the DFD-selected pair
        // has (weakly) smaller DFD than the ED-selected pair.
        let t = gen::geolife_like(200, 2017);
        let pts = t.points();
        let xi = 10;
        let wlen = xi + 2;
        let (ei, ej, _) = ed_motif(pts, wlen);
        let ed_pair_dfd = dfd(&pts[ei..ei + wlen], &pts[ej..ej + wlen]);
        let motif = Btm.discover(&t, &MotifConfig::new(xi)).unwrap();
        assert!(motif.distance <= ed_pair_dfd + 1e-9);
    }

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.render().contains("DFD"));
    }
}
