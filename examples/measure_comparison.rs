//! Why DFD? A hands-on comparison of the similarity measures of Table 1.
//!
//! Reproduces the paper's two motivating phenomena on small constructed
//! inputs: (1) lock-step ED ignores the movement pattern (Figure 2), and
//! (2) DTW is fooled by non-uniform sampling while DFD is not (Figure 3).
//!
//! ```bash
//! cargo run --release --example measure_comparison
//! ```

use fremo::prelude::*;
use fremo::similarity::{dtw, hausdorff, lcss_distance, lockstep_euclidean};

fn path(n: usize, offset: f64) -> Vec<EuclideanPoint> {
    (0..n)
        .map(|k| {
            let s = k as f64 / (n - 1) as f64;
            EuclideanPoint::new(s * 100.0, offset + 8.0 * (4.0 * s).sin())
        })
        .collect()
}

fn main() {
    // --- Phenomenon 1: ED ignores the movement pattern -------------------
    let forward = path(50, 0.0);
    let mut backward = forward.clone();
    backward.reverse();
    println!("same points, opposite direction:");
    println!(
        "  ED  = {:8.2}  (small: points coincide)",
        lockstep_euclidean(&forward, &backward)
    );
    println!(
        "  DFD = {:8.2}  (large: movement reversed)",
        dfd(&forward, &backward)
    );
    println!(
        "  Hausdorff = {:.2} (zero: it is set-based)",
        hausdorff(&forward, &backward)
    );

    // --- Phenomenon 2: DTW vs non-uniform sampling -----------------------
    let sa = path(50, 0.0);
    let sb = path(50, 4.0); // genuinely different path
    let mut sc = Vec::new(); // almost Sa, but heavily oversampled up front
    for k in 0..160 {
        let s = 0.2 * k as f64 / 159.0;
        sc.push(EuclideanPoint::new(s * 100.0, 1.5 + 8.0 * (4.0 * s).sin()));
    }
    for k in 0..40 {
        let s = 0.2 + 0.8 * k as f64 / 39.0;
        sc.push(EuclideanPoint::new(s * 100.0, 1.5 + 8.0 * (4.0 * s).sin()));
    }

    println!("\nnon-uniform sampling (Sc follows Sa's path, oversampled):");
    println!(
        "  DTW(Sa,Sb) = {:9.1}   DTW(Sa,Sc) = {:9.1}",
        dtw(&sa, &sb),
        dtw(&sa, &sc)
    );
    println!(
        "  DFD(Sa,Sb) = {:9.2}   DFD(Sa,Sc) = {:9.2}",
        dfd(&sa, &sb),
        dfd(&sa, &sc)
    );
    println!(
        "  LCSS(Sa,Sb)= {:9.2}   LCSS(Sa,Sc)= {:9.2}",
        lcss_distance(&sa, &sb, 2.0),
        lcss_distance(&sa, &sc, 2.0)
    );

    let dtw_wrong = dtw(&sa, &sc) > dtw(&sa, &sb);
    let dfd_right = dfd(&sa, &sc) < dfd(&sa, &sb);
    println!(
        "\n  DTW ranks the resampled copy as LESS similar: {dtw_wrong} (the Figure 3 failure)"
    );
    println!("  DFD ranks it as MORE similar:              {dfd_right}");
    assert!(dtw_wrong && dfd_right);
}
