//! Top-k motif discovery: the k best *index-disjoint* motifs.
//!
//! A natural extension of Problem 1 (motifs are "used as a building block
//! for other trajectory mining and analysis methods", Section 1): report
//! not just the single best pair but the `k` best, subject to a diversity
//! rule — no reported subtrajectory may overlap a previously reported one,
//! otherwise the top-k collapses into k one-index shifts of the same pair.
//!
//! Implementation: `k` rounds of the BTM machinery. After each round the
//! winning intervals become *forbidden*; because subtrajectories are
//! contiguous, forbidding an interval clamps how far a candidate may start
//! or extend, which maps onto per-subset caps on `ie`/`je`
//! ([`crate::dp::expand_subset_capped`]) plus skipping subsets whose start
//! lies inside a forbidden interval. Each round is exact for its masked
//! search space, so the result is the greedy-optimal diverse top-k.

use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};

use crate::bounds::BoundTables;
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::dp::{expand_subset_capped, Bsf, DpBuffers};
use crate::result::Motif;
use crate::search::{build_entries, SearchBudget};
use crate::stats::SearchStats;

/// A set of forbidden index intervals (kept sorted and disjoint).
#[derive(Debug, Clone, Default)]
pub struct ForbiddenIntervals {
    /// Sorted, disjoint, inclusive intervals.
    intervals: Vec<(usize, usize)>,
}

impl ForbiddenIntervals {
    /// Empty set.
    #[must_use]
    pub fn new() -> Self {
        ForbiddenIntervals::default()
    }

    /// Adds an inclusive interval, merging overlaps.
    pub fn add(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi);
        self.intervals.push((lo, hi));
        self.intervals.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.intervals.len());
        for &(lo, hi) in &self.intervals {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.intervals = merged;
    }

    /// Whether `p` lies inside a forbidden interval.
    #[must_use]
    pub fn contains(&self, p: usize) -> bool {
        self.intervals
            // fremo-lint: allow(L1) -- the comparator orders usize interval
            // bounds, where raw </> is already a total order; no floats here.
            .binary_search_by(|&(lo, hi)| {
                if p < lo {
                    std::cmp::Ordering::Greater
                } else if p > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Largest inclusive end `e` such that `[start, e]` avoids all
    /// intervals, or `None` when `start` itself is forbidden. `usize::MAX`
    /// means unbounded.
    #[must_use]
    pub fn free_run_from(&self, start: usize) -> Option<usize> {
        if self.contains(start) {
            return None;
        }
        let next = self
            .intervals
            .iter()
            .map(|&(lo, _)| lo)
            .filter(|&lo| lo > start)
            .min();
        Some(next.map_or(usize::MAX, |lo| lo - 1))
    }
}

/// Finds the `k` best index-disjoint motifs within one trajectory.
///
/// Results are in non-decreasing DFD order; fewer than `k` are returned
/// when the trajectory runs out of disjoint candidates.
#[must_use]
pub fn top_k_motifs<P: GroundDistance>(
    trajectory: &Trajectory<P>,
    config: &MotifConfig,
    k: usize,
) -> Vec<Motif> {
    top_k_motifs_with_stats(trajectory, config, k).0
}

/// [`top_k_motifs`] with full search statistics (aggregated over the `k`
/// rounds).
#[must_use]
pub fn top_k_motifs_with_stats<P: GroundDistance>(
    trajectory: &Trajectory<P>,
    config: &MotifConfig,
    k: usize,
) -> (Vec<Motif>, SearchStats) {
    let started = Instant::now();
    let domain = Domain::Within {
        n: trajectory.len(),
    };
    let src = DenseMatrix::within(trajectory.points());
    let tables = BoundTables::build(&src, domain, config.min_length, config.bounds);
    let mut buf = DpBuffers::with_width(domain.len_b());
    let (motifs, stats, _) =
        top_k_prepared(&src, &tables, domain, config, k, started, &mut buf, None, 0);
    (motifs, stats)
}

/// [`top_k_motifs`] with each masked round's candidate scan running on
/// the parallel execution layer ([`crate::parallel`]). The rounds stay
/// sequential (round `r+1`'s mask depends on round `r`'s winner), but the
/// per-round winner is merged deterministically, so the result is
/// bit-for-bit identical to [`top_k_motifs`]. `threads == 0` resolves
/// through the global budget ([`crate::pool::global_threads`]).
#[must_use]
pub fn top_k_motifs_parallel<P: GroundDistance + Sync>(
    trajectory: &Trajectory<P>,
    config: &MotifConfig,
    k: usize,
    threads: usize,
) -> Vec<Motif> {
    let threads = crate::pool::resolve_threads(threads);
    let started = Instant::now();
    let domain = Domain::Within {
        n: trajectory.len(),
    };
    let src = DenseMatrix::within_parallel(trajectory.points(), threads);
    let tables = BoundTables::build(&src, domain, config.min_length, config.bounds);
    let mut buf = DpBuffers::with_width(domain.len_b());
    let (motifs, _, _) = top_k_prepared(
        &src, &tables, domain, config, k, started, &mut buf, None, threads,
    );
    motifs
}

/// The `k`-round masked BTM search over prebuilt tables and an external DP
/// buffer — the entry point used by [`crate::engine::Engine`]. The third
/// return value is `false` when `budget` cut the search short (checked
/// before every subset expansion; a mid-round truncation still reports
/// that round's best-so-far motif).
///
/// Statistics aggregate over all rounds: later rounds may re-expand a
/// subset an earlier round already paid for, so `pairs_exact` and
/// `subsets_expanded` count work done (either can exceed the one-round
/// totals for large `k`), and `pruned_fraction` is a per-search work
/// ratio rather than Figure 13/14's single-round pruning ratio.
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_prepared<D: DistanceSource + Sync>(
    src: &D,
    tables: &BoundTables,
    domain: Domain,
    config: &MotifConfig,
    k: usize,
    started: Instant,
    buf: &mut DpBuffers,
    budget: Option<&SearchBudget>,
    threads: usize,
) -> (Vec<Motif>, SearchStats, bool) {
    let xi = config.min_length;

    let mut stats = SearchStats {
        bytes_distance_matrix: src.bytes(),
        bytes_bounds: tables.bytes(),
        subsets_total: domain.subsets_count(xi),
        pairs_total: domain.pairs_count(xi),
        precompute_seconds: started.elapsed().as_secs_f64(),
        ..SearchStats::default()
    };

    let mut forbidden = ForbiddenIntervals::new();
    let mut results = Vec::with_capacity(k);
    let completed = top_k_rounds(
        src,
        tables,
        domain,
        config,
        k,
        buf,
        budget,
        threads,
        &mut forbidden,
        &mut results,
        &mut stats,
    );

    if !completed {
        // Every pair not yet accounted counts as budget-skipped, not
        // pruned — conservative for the masked rounds, and O(1).
        stats.pairs_skipped_budget += stats.pairs_total.saturating_sub(stats.pairs_accounted());
    }
    stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
    stats.total_seconds = started.elapsed().as_secs_f64();
    (results, stats, completed)
}

/// The masked BTM rounds of [`top_k_prepared`], resumable: rounds run
/// from `results.len()` (each successful round pushes exactly one motif)
/// up to `k`, extending `forbidden`/`results`/`stats` in place. The batch
/// executor's fused scan answers round 0 inside the shared candidate
/// walk and continues rounds 1..k through this exact code, which is what
/// keeps fused top-k bit-identical to solo execution. Returns `false`
/// when `budget` cut a round short (the caller settles the pair
/// remainder and the bytes/timing epilogue).
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_rounds<D: DistanceSource + Sync>(
    src: &D,
    tables: &BoundTables,
    domain: Domain,
    config: &MotifConfig,
    k: usize,
    buf: &mut DpBuffers,
    budget: Option<&SearchBudget>,
    threads: usize,
    forbidden: &mut ForbiddenIntervals,
    results: &mut Vec<Motif>,
    stats: &mut SearchStats,
) -> bool {
    let xi = config.min_length;
    let sel = config.bounds;
    let mut completed = true;

    for _round in results.len()..k {
        let mut bsf = Bsf::new();

        // Masked candidate-subset list: skip subsets whose start index is
        // forbidden; caps come from the free run at each start.
        let starts: Vec<(usize, usize, usize, usize)> = domain
            .subsets(xi)
            .filter_map(|(i, j)| {
                let ie_cap = forbidden.free_run_from(i)?;
                let je_cap = forbidden.free_run_from(j)?;
                // The halves must still fit under the caps.
                if i + xi + 1 > ie_cap || j + xi + 1 > je_cap {
                    return None;
                }
                Some((i, j, ie_cap, je_cap))
            })
            .collect();

        let mut entries =
            build_entries(src, tables, sel, starts.iter().map(|&(i, j, _, _)| (i, j)));
        // Re-attach the caps after the sort by pairing on (i, j).
        let caps: std::collections::HashMap<(u32, u32), (usize, usize)> = starts
            .iter()
            .map(|&(i, j, ic, jc)| ((i as u32, j as u32), (ic, jc)))
            .collect();

        if threads > 0 {
            // Parallel round: the deterministic merge yields the same
            // round winner as the serial loop below, so the masks — and
            // with them every later round — stay identical.
            completed = crate::parallel::process_sorted_subsets_parallel(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                Some(&caps),
                &mut bsf,
                stats,
                budget,
                threads,
                false,
            );
        } else {
            stats.threads_used = 1;
            crate::search::sort_entries(&mut entries);

            let mut truncated_at = None;
            for (idx, e) in entries.iter().enumerate() {
                if bsf.prunable(e.lb) {
                    break;
                }
                if budget.is_some_and(|b| b.exceeded(stats.subsets_expanded)) {
                    completed = false;
                    truncated_at = Some(idx);
                    break;
                }
                let (i, j) = (e.i as usize, e.j as usize);
                let cap = caps[&(e.i, e.j)];
                let end_tables = if sel.end_cross { Some(tables) } else { None };
                stats.subsets_expanded += 1;
                stats.pairs_exact += domain.pairs_in_subset_capped(i, j, xi, cap);
                expand_subset_capped(
                    src, domain, xi, i, j, cap, end_tables, true, &mut bsf, stats, buf,
                );
            }
            // Keep pruning statistics honest under truncation (subset
            // count here; the pair remainder is settled arithmetically
            // below so a blown deadline is not followed by an O(n²)
            // accounting walk).
            if let Some(start) = truncated_at {
                stats.subsets_skipped_budget += (entries.len() - start) as u64;
            }
        }

        let Some(motif) = bsf.motif else { break };
        forbidden.add(motif.first.0, motif.first.1);
        forbidden.add(motif.second.0, motif.second.1);
        results.push(motif);
        if !completed {
            break;
        }
    }

    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::MotifDiscovery;
    use crate::btm::Btm;
    use fremo_trajectory::gen::planar;

    #[test]
    fn forbidden_intervals_merge_and_query() {
        let mut f = ForbiddenIntervals::new();
        f.add(10, 20);
        f.add(30, 40);
        assert!(f.contains(10) && f.contains(15) && f.contains(20));
        assert!(!f.contains(9) && !f.contains(21));
        assert_eq!(f.free_run_from(0), Some(9));
        assert_eq!(f.free_run_from(21), Some(29));
        assert_eq!(f.free_run_from(41), Some(usize::MAX));
        assert_eq!(f.free_run_from(35), None);
        // Adjacent intervals merge.
        f.add(21, 29);
        assert_eq!(f.free_run_from(0), Some(9));
        assert!(f.contains(25));
        assert_eq!(f.free_run_from(41), Some(usize::MAX));
    }

    #[test]
    fn first_motif_matches_btm() {
        let t = planar::random_walk(70, 0.4, 5);
        let cfg = MotifConfig::new(4);
        let top = top_k_motifs(&t, &cfg, 3);
        let single = Btm.discover(&t, &cfg).unwrap();
        assert!(!top.is_empty());
        assert!((top[0].distance - single.distance).abs() < 1e-9);
    }

    #[test]
    fn results_are_disjoint_and_ordered() {
        let t = planar::random_walk(90, 0.4, 6);
        let cfg = MotifConfig::new(3);
        let top = top_k_motifs(&t, &cfg, 4);
        assert!(top.len() >= 2, "expected at least two disjoint motifs");
        // Non-decreasing distances.
        for w in top.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-9);
        }
        // Pairwise disjoint intervals.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        for m in &top {
            intervals.push(m.first);
            intervals.push(m.second);
        }
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(
                w[0].1 < w[1].0,
                "intervals {:?} and {:?} overlap",
                w[0],
                w[1]
            );
        }
        // Every reported motif satisfies the validity rules.
        for m in &top {
            assert!(m.is_valid_within(t.len(), 3));
        }
    }

    #[test]
    fn budget_truncation_accounts_skipped_pairs() {
        let t = planar::random_walk(80, 0.4, 8);
        let cfg = MotifConfig::new(3);
        let domain = Domain::Within { n: t.len() };
        let src = DenseMatrix::within(t.points());
        let tables = BoundTables::build(&src, domain, 3, cfg.bounds);
        let mut buf = DpBuffers::with_width(domain.len_b());
        let budget = SearchBudget {
            deadline: None,
            max_subsets: Some(1),
        };
        let (_, stats, completed) = top_k_prepared(
            &src,
            &tables,
            domain,
            &cfg,
            2,
            Instant::now(),
            &mut buf,
            Some(&budget),
            0,
        );
        assert!(!completed);
        assert_eq!(stats.subsets_expanded, 1);
        // The unexamined remainder is budget-skipped, not "pruned".
        assert!(stats.pairs_skipped_budget > 0);
        assert!(stats.pruned_fraction() < 1.0);
    }

    #[test]
    fn exhausts_gracefully() {
        // Tiny trajectory: only one disjoint motif fits.
        let t = planar::random_walk(12, 0.4, 7);
        let cfg = MotifConfig::new(2);
        let top = top_k_motifs(&t, &cfg, 5);
        assert_eq!(top.len(), 1);
    }
}
