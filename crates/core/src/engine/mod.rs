//! The query engine: one shared, concurrently-usable facade over every
//! workload.
//!
//! [`Engine`] owns a corpus of registered trajectories (lightweight
//! [`TrajId`] handles) and executes typed [`Query`] values — motif
//! discovery within or between trajectories, diverse top-k, similarity
//! join, subtrajectory clustering, and whole-trajectory measure profiles
//! — through one entry point, [`Engine::execute`]. Every query returns a
//! [`QueryOutcome`] bundling results, [`crate::SearchStats`], the
//! resolved algorithm name, wall time, and cache activity.
//!
//! Three things make the facade more than plumbing:
//!
//! * **Memoization, buffer-managed.** The `O(n²)` distance matrix and the
//!   bound tables of a trajectory depend only on `(trajectory, ξ, bounds)`
//!   — never on the algorithm, k, or budget — so the engine caches them
//!   per corpus entry. Repeated traffic on the same trajectory skips
//!   precomputation entirely ([`QueryOutcome::cache`] shows what was
//!   reused). Under a byte limit ([`Engine::with_cache_limit`]) the cache
//!   behaves like a database buffer pool: entries are sized and evicted
//!   individually (exact LRU), entries in use by an executing query are
//!   pinned, and with [`Engine::with_spill_dir`] evicted matrices spill
//!   to disk and rehydrate bit-identically instead of being rebuilt.
//! * **Sessions.** The engine itself is an immutable shared core:
//!   `execute` takes `&self`, so any number of [`Session`] handles (one
//!   per thread, tenant, or connection) can query **the same engine
//!   concurrently**, sharing the corpus and the warm cache. Per-query
//!   mutable state — DP scratch buffers and the cache pin log — lives in
//!   the session, not the engine. Results are bit-for-bit identical to
//!   running the same queries serially; see `docs/SERVING.md` for the
//!   locking argument.
//! * **Selection.** [`AlgorithmChoice::Auto`] picks
//!   BruteDP/BTM/GTM/GTM* from `n` and ξ using the crossovers measured in
//!   the paper's Section 6 (see [`AlgorithmChoice::resolve`]).
//!
//! ```
//! use fremo_core::engine::{AlgorithmChoice, Engine, Query};
//! use fremo_trajectory::gen::planar;
//!
//! let engine = Engine::new();
//! let id = engine.register(planar::random_walk(200, 0.4, 7));
//!
//! let query = Query::motif(id).xi(10).build();
//! let first = engine.execute(&query).unwrap();
//! let again = engine.execute(&query).unwrap();
//!
//! assert_eq!(first.motif(), again.motif());
//! // The second query recomputed nothing: matrix and tables were cached.
//! assert_eq!(again.cache.recomputed(), 0);
//! assert!(again.cache.reused() > 0);
//! ```
//!
//! Concurrent sessions over one shared engine:
//!
//! ```
//! use fremo_core::engine::{Engine, Query};
//! use fremo_trajectory::gen::planar;
//!
//! let engine = Engine::new();
//! let id = engine.register(planar::random_walk(120, 0.4, 7));
//! let query = Query::motif(id).xi(6).build();
//! let baseline = engine.execute(&query).unwrap();
//!
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|| {
//!             let mut session = engine.session();
//!             let outcome = session.execute(&query).unwrap();
//!             assert_eq!(outcome.motif(), baseline.motif());
//!         });
//!     }
//! });
//! ```

mod batch;
mod buffer;
mod cache;
mod query;

pub use batch::{BatchOutcome, BatchStats};
pub use cache::CacheReport;
pub use query::{
    AlgorithmChoice, EngineError, ExecutionMode, MatrixPrecision, MeasureProfile, MotifScope,
    ParseAlgorithmError, Query, QueryBudget, QueryBuilder, QueryKind, QueryOutcome, QueryResults,
    ResolvedAlgorithm, AUTO_BRUTE_MAX_N, AUTO_BTM_MAX_N, AUTO_GTM_MAX_N, PARALLEL_AUTO_MIN_N,
};

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use fremo_trajectory::{DenseMatrixF32, GroundDistance, LazyDistances, Trajectory};

use crate::bounds::BoundTables;
use crate::brute::BruteDp;
use crate::btm::Btm;
use crate::cluster::{cluster_subtrajectories, cluster_subtrajectories_parallel, ClusterConfig};
use crate::domain::Domain;
use crate::dp::DpBuffers;
use crate::gtm::Gtm;
use crate::gtm_star::GtmStar;
use crate::join::{
    similarity_join, similarity_join_parallel, similarity_self_join, similarity_self_join_parallel,
};
use crate::stats::SearchStats;
use crate::topk::top_k_prepared;

use buffer::ScopeKey;
use cache::{CorpusCache, QueryCtx};

/// Opaque handle to a trajectory registered with an [`Engine`].
///
/// Handles carry the issuing engine's identity: passing a handle to a
/// *different* engine fails with [`EngineError::UnknownTrajectory`] even
/// when the index happens to be in range there.
// lint: the PartialOrd derive is required by Ord and lexicographic over
// integers — a total order; the workspace ban targets ad-hoc float calls.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrajId {
    engine: u64,
    index: usize,
}

impl TrajId {
    /// The corpus index (stable for the issuing engine's lifetime).
    #[must_use]
    pub const fn index(&self) -> usize {
        self.index
    }

    /// A handle no engine ever issues (engine ids start at 1) — foreign
    /// by construction, for negative tests.
    #[cfg(test)]
    pub(crate) const fn from_index(index: usize) -> Self {
        TrajId { engine: 0, index }
    }
}

/// Engine identities, so [`TrajId`]s cannot cross engines (ids start
/// at 1; see [`TrajId::from_index`]).
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// Lifetime counters of an [`Engine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Queries executed (successful or not), across all sessions.
    pub queries: u64,
    /// Cumulative cache activity, across all sessions.
    pub cache: CacheReport,
}

/// A query engine over a corpus of trajectories, shareable across
/// threads (`&Engine` executes queries; see [`Engine::session`]).
///
/// The engine is an immutable shared core: the corpus sits behind a
/// `parking_lot::RwLock` (registration appends under a brief write lock,
/// queries clone `Arc` handles out under a read lock), and the cache is
/// internally synchronized by its sharded buffer pool. The **lock
/// order** is `corpus → meta → shard`: a corpus lock is never held
/// across a cache call, the cache's residency ledger (`meta`) is
/// acquired before any frame shard, and at most one shard lock is held
/// at a time. See the [module docs](self) and `docs/SERVING.md`.
pub struct Engine<P> {
    id: u64,
    corpus: RwLock<Vec<Arc<Trajectory<P>>>>,
    cache: CorpusCache,
    queries: AtomicU64,
}

impl<P: GroundDistance> Default for Engine<P> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<P: GroundDistance> Engine<P> {
    /// An engine with an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            // relaxed: the id only needs uniqueness, which fetch_add's
            // atomicity provides; it orders nothing.
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            corpus: RwLock::new(Vec::new()),
            cache: CorpusCache::default(),
            queries: AtomicU64::new(0),
        }
    }

    /// A session handle for running queries against this engine: it
    /// owns the per-query mutable state (DP scratch buffers, cache pin
    /// log), so each thread, tenant, or connection gets its own while
    /// all of them share this engine's corpus and warm cache. Sessions
    /// are cheap (two empty `Vec`s) but reusing one across queries
    /// keeps its scratch allocations warm.
    #[must_use]
    pub fn session(&self) -> Session<'_, P> {
        Session {
            engine: self,
            buffers: DpBuffers::default(),
            ctx: QueryCtx::default(),
        }
    }

    /// Caps resident cache memory at `bytes`, with **per-entry LRU
    /// eviction**: when an insert pushes the resident set over the
    /// limit, the least recently used unpinned matrices and bound
    /// tables are evicted one by one until it fits again, so the hot
    /// working set stays warm instead of being dropped wholesale.
    /// Entries in use by an executing query are pinned and never
    /// evicted mid-query (the limit is re-enforced as each query
    /// completes). Takes effect immediately — lowering the limit evicts
    /// right away. `None` (the default) means unbounded: a long-lived
    /// engine over a large corpus should set a limit (see
    /// `docs/CACHING.md` for how to size it) or call
    /// [`Engine::clear_cache`] periodically.
    pub fn set_cache_limit(&self, bytes: Option<usize>) {
        self.cache.set_limit(bytes);
    }

    /// Builder form of [`Engine::set_cache_limit`].
    ///
    /// ```
    /// use fremo_core::engine::{Engine, Query};
    /// use fremo_trajectory::gen::planar;
    ///
    /// // Room for two 100-point trajectories' matrices + tables (~81 KiB
    /// // each): caching a third evicts the least recently used entries,
    /// // not the whole cache.
    /// let engine = Engine::new().with_cache_limit(192 * 1024);
    /// let ids = engine.register_all((0..3).map(|s| planar::random_walk(100, 0.4, s)));
    /// for id in ids {
    ///     engine.execute(&Query::motif(id).xi(5).build()).unwrap();
    ///     assert!(engine.cache_bytes() <= 192 * 1024);
    /// }
    /// assert!(engine.stats().cache.evictions > 0);
    /// ```
    #[must_use]
    pub fn with_cache_limit(self, bytes: usize) -> Self {
        self.cache.set_limit(Some(bytes));
        self
    }

    /// Enables the disk spill tier: matrices evicted under the cache
    /// limit are written to a private subdirectory of `dir` in a
    /// length-prefixed binary format and **rehydrated bit-identically**
    /// on the next miss — a sequential read instead of an `O(n²)`
    /// rebuild. Spill files are scratch state scoped to this engine:
    /// they are removed when the engine is dropped (or on
    /// [`Engine::clear_cache`]). Bound tables are never spilled
    /// (rebuilding them from a resident matrix is cheap), and GTM*
    /// keeps its space guarantee — it reads a *resident* matrix but
    /// never triggers an `O(n²)` rehydrate. A failed spill *write*
    /// degrades to a plain drop, so a configured engine never errors on
    /// I/O mid-query.
    ///
    /// # Errors
    ///
    /// Fails if the engine's private spill directory cannot be created,
    /// or already exists — each live engine claims its directory
    /// exclusively rather than silently sharing write-once spill files.
    pub fn set_spill_dir(&self, dir: Option<&std::path::Path>) -> io::Result<()> {
        self.cache.set_spill(dir, self.id)
    }

    /// Builder form of [`Engine::set_spill_dir`].
    ///
    /// ```
    /// use fremo_core::engine::{Engine, Query};
    /// use fremo_trajectory::gen::planar;
    ///
    /// let dir = std::env::temp_dir().join(format!("fremo-spill-doc-{}", std::process::id()));
    /// // A 1-byte limit forces every entry out after each query; with a
    /// // spill dir the matrix comes back from disk, not a rebuild.
    /// let engine = Engine::new().with_cache_limit(1).with_spill_dir(&dir).unwrap();
    /// let id = engine.register(planar::random_walk(60, 0.4, 7));
    /// let query = Query::motif(id).xi(4).build();
    ///
    /// let cold = engine.execute(&query).unwrap();
    /// let warm = engine.execute(&query).unwrap();
    /// assert_eq!(warm.motif(), cold.motif());
    /// assert_eq!(warm.cache.matrices_built, 0);
    /// assert_eq!(warm.cache.spill_loads, 1);
    /// ```
    ///
    /// # Errors
    ///
    /// See [`Engine::set_spill_dir`].
    pub fn with_spill_dir(self, dir: impl AsRef<std::path::Path>) -> io::Result<Self> {
        self.set_spill_dir(Some(dir.as_ref()))?;
        Ok(self)
    }

    /// Registers a trajectory, returning its handle. Registration is
    /// safe while sessions are querying (handles index an append-only
    /// corpus).
    pub fn register(&self, trajectory: Trajectory<P>) -> TrajId {
        let mut corpus = self.corpus.write();
        corpus.push(Arc::new(trajectory));
        TrajId {
            engine: self.id,
            index: corpus.len() - 1,
        }
    }

    /// Registers every trajectory of an iterator, returning the handles
    /// in order.
    pub fn register_all(
        &self,
        trajectories: impl IntoIterator<Item = Trajectory<P>>,
    ) -> Vec<TrajId> {
        trajectories.into_iter().map(|t| self.register(t)).collect()
    }

    /// The trajectory behind a handle (a shared `Arc`, cloned out of a
    /// brief corpus read lock).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTrajectory`] when the handle is not from
    /// this engine.
    pub fn trajectory(&self, id: TrajId) -> Result<Arc<Trajectory<P>>, EngineError> {
        if id.engine != self.id {
            return Err(EngineError::UnknownTrajectory(id));
        }
        self.corpus
            .read()
            .get(id.index)
            .cloned()
            .ok_or(EngineError::UnknownTrajectory(id))
    }

    /// Number of registered trajectories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.corpus.read().len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.corpus.read().is_empty()
    }

    /// Lifetime counters (queries executed, cache hits/builds/evictions)
    /// across all sessions.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            // relaxed: a monotonic counter read for reporting; it
            // synchronizes nothing.
            queries: self.queries.load(Ordering::Relaxed),
            cache: self.cache.report(),
        }
    }

    /// Heap bytes currently held by resident matrices and bound tables
    /// (spilled matrices live on disk and are not counted).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Drops every cached structure and spill file (registered
    /// trajectories are kept). Safe while sessions run: their in-flight
    /// queries keep using the structures they already pinned.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// Query execution. `P: Sync` because the parallel execution layer
/// shares point slices across worker threads (every concrete point type
/// in the workspace is `Sync`).
impl<P: GroundDistance + Sync> Engine<P> {
    /// Executes one query against the corpus, on a transient session.
    ///
    /// This is the one-shot convenience form: each call builds (and
    /// drops) a [`Session`], so repeated callers — and anything
    /// latency-sensitive — should hold their own session via
    /// [`Engine::session`] to keep its scratch buffers warm. Because it
    /// takes `&self`, any number of threads may call it (or run their
    /// own sessions) concurrently; results are bit-identical to serial
    /// execution.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTrajectory`] for foreign handles,
    /// [`EngineError::InvalidParameter`] for out-of-range parameters
    /// (ξ = 0, τ = 0, k = 0, negative ε, window < 2, stride = 0).
    pub fn execute(&self, query: &Query) -> Result<QueryOutcome, EngineError> {
        self.session().execute(query)
    }
}

impl<P: GroundDistance + Send + Sync> Engine<P> {
    /// Executes a batch of queries, sharing work across them: duplicate
    /// queries execute once, queries over the same `(scope, ξ, bounds)`
    /// build and pin their matrix/bound precomputation once, compatible
    /// serial motif/top-k scans fuse into one pass over the shared
    /// candidate list, and groups are scheduled across the worker pool
    /// hottest-first. Per-query results and scan statistics are
    /// **bit-identical** to calling [`Engine::execute`] once per query
    /// in isolation (cache counters and wall times reflect the
    /// sharing); outcomes come back index-aligned with the input.
    ///
    /// `P: Send` is required (beyond [`Engine::execute`]) because
    /// groups run on pool workers that share `&self` across threads.
    ///
    /// See `docs/BATCHING.md` for grouping and fusion rules.
    #[must_use]
    pub fn execute_batch(&self, queries: &[Query]) -> BatchOutcome {
        batch::execute(self, queries)
    }
}

/// One query stream over a shared [`Engine`]: the engine's view plus
/// the per-query mutable state (DP scratch buffers and the cache pin
/// log) that used to force `execute` to take `&mut Engine`.
///
/// Create one per thread/tenant/connection with [`Engine::session`];
/// sessions are independent — each runs one query at a time
/// (`execute(&mut self)`), while the engine serves all of them
/// concurrently.
pub struct Session<'e, P> {
    engine: &'e Engine<P>,
    buffers: DpBuffers,
    ctx: QueryCtx,
}

impl<'e, P> Session<'e, P> {
    /// The shared engine this session queries.
    #[must_use]
    pub fn engine(&self) -> &'e Engine<P> {
        self.engine
    }
}

impl<P> Drop for Session<'_, P> {
    /// A session dropped mid-query (a panicking kernel unwound through
    /// `execute`) still holds cache pins; release them so the shared
    /// pool never leaks pinned frames.
    fn drop(&mut self) {
        if !self.ctx.is_clean() {
            let _ = self.engine.cache.finish_query(&mut self.ctx);
        }
    }
}

impl<P: GroundDistance + Sync> Session<'_, P> {
    /// Executes one query. See [`Engine::execute`] for the error
    /// contract; outcomes are identical — a session only adds reusable
    /// scratch state.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTrajectory`] for foreign handles,
    /// [`EngineError::InvalidParameter`] for out-of-range parameters.
    pub fn execute(&mut self, query: &Query) -> Result<QueryOutcome, EngineError> {
        let started = Instant::now();
        // relaxed: a monotonic counter; nothing is ordered by it.
        self.engine.queries.fetch_add(1, Ordering::Relaxed);

        let result = self.dispatch(query, started);
        // Pins are scoped to one query: release exactly this session's
        // pins whether the query succeeded or not, fold its tallies
        // into the engine totals, and let the pool evict down to the
        // byte limit now that this query holds nothing.
        let report = self.engine.cache.finish_query(&mut self.ctx);

        let mut outcome = result?;
        outcome.cache = report;
        outcome.wall_seconds = started.elapsed().as_secs_f64();
        Ok(outcome)
    }

    fn dispatch(&mut self, query: &Query, started: Instant) -> Result<QueryOutcome, EngineError> {
        // Narrowed matrices are admissible only where the answer already
        // carries an error bound, i.e. the approx motif regime; every other
        // workload promises exactness and must not see rounded distances.
        if query.precision != MatrixPrecision::F64 && !matches!(query.kind, QueryKind::Motif { .. })
        {
            return Err(EngineError::InvalidParameter(
                "f32 matrix precision applies to motif queries only (and only with \
                 algorithm approx{ε}); see docs/KERNELS.md"
                    .into(),
            ));
        }
        let outcome = match &query.kind {
            QueryKind::Motif { scope } => self.execute_motif(*scope, query, started)?,
            QueryKind::TopK { id, k } => self.execute_top_k(*id, *k, query, started)?,
            kind => {
                // Join/cluster/measures have no subset scan to truncate;
                // reject a budget instead of silently blowing through it.
                if !query.budget.is_unlimited() {
                    return Err(EngineError::InvalidParameter(
                        "budgets apply to motif and top-k queries only; this workload \
                         cannot honor one"
                            .into(),
                    ));
                }
                let threads = query.execution.resolve_explicit();
                match kind {
                    QueryKind::Join {
                        probe,
                        base,
                        epsilon,
                    } => self.execute_join(probe, base.as_deref(), *epsilon, threads)?,
                    QueryKind::Cluster {
                        id,
                        window,
                        stride,
                        epsilon,
                    } => self.execute_cluster(*id, *window, *stride, *epsilon, threads)?,
                    QueryKind::Measures { a, b, epsilon } => {
                        self.execute_measures(*a, *b, *epsilon)?
                    }
                    QueryKind::Motif { .. } | QueryKind::TopK { .. } => {
                        unreachable!("handled above")
                    }
                }
            }
        };
        Ok(outcome)
    }

    fn validate_motif_params(&self, query: &Query) -> Result<(), EngineError> {
        if query.min_length == 0 {
            return Err(EngineError::InvalidParameter(
                "minimum motif length ξ must be at least 1".into(),
            ));
        }
        if query.group_size == 0 {
            return Err(EngineError::InvalidParameter(
                "group size τ must be at least 1".into(),
            ));
        }
        Ok(())
    }

    fn execute_motif(
        &mut self,
        scope: MotifScope,
        query: &Query,
        started: Instant,
    ) -> Result<QueryOutcome, EngineError> {
        self.validate_motif_params(query)?;
        let config = query.motif_config();
        let budget = query.budget.to_search_budget(started);
        let budget = budget.as_ref();

        let (key, a_id, b_id) = match scope {
            MotifScope::Within(id) => (ScopeKey::Within(id.index), id, None),
            MotifScope::Between(a, b) => (ScopeKey::Between(a.index, b.index), a, Some(b)),
        };
        // Clone Arc handles out of the corpus lock: algorithm execution
        // must never run under it.
        let a = self.engine.trajectory(a_id)?;
        let b = match b_id {
            None => None,
            Some(id) => Some(self.engine.trajectory(id)?),
        };
        let n = a.len();
        let (domain, m) = match &b {
            None => (Domain::Within { n }, None),
            Some(b) => (Domain::Between { n, m: b.len() }, Some(b.len())),
        };
        let longest = n.max(m.unwrap_or(0));
        let resolved = query.algorithm.resolve(longest, query.min_length);
        let threads = query.execution.resolve(longest);

        let pa = a.points();
        let pb = b.as_deref().map(Trajectory::points);

        // Opt-in single-precision matrix regime: only the approximate
        // search may trade one f32 rounding step per cell for half the
        // matrix bytes. The narrowed matrix and its bound tables are
        // query-local — the shared cache stores f64 artifacts only, so a
        // later exact query can never observe rounded distances.
        if query.precision == MatrixPrecision::F32 {
            let ResolvedAlgorithm::Approx(epsilon) = resolved else {
                return Err(EngineError::InvalidParameter(
                    "f32 matrix precision is admissible only under algorithm approx{ε}; \
                     exact algorithms keep f64 matrices (see docs/KERNELS.md)"
                        .into(),
                ));
            };
            if !(epsilon >= 0.0 && epsilon.is_finite()) {
                return Err(EngineError::InvalidParameter(
                    "approximation ε must be finite and ≥ 0".into(),
                ));
            }
            let src = match pb {
                None => DenseMatrixF32::within(pa),
                Some(pb) => DenseMatrixF32::between(pa, pb),
            };
            let tables = BoundTables::build(&src, domain, config.min_length, config.bounds);
            // GTM's group pattern bounds always read relaxed arrays; when
            // the selection asked for tight tables, build the relaxed set
            // alongside, exactly as the cache does for the f64 path.
            let relaxed_tables = config.bounds.tight.then(|| {
                BoundTables::build(
                    &src,
                    domain,
                    config.min_length,
                    config.bounds.with_tight(false),
                )
            });
            let relaxed = relaxed_tables.as_ref().unwrap_or(&tables).as_relaxed();
            let (motif, mut stats, completed) = Gtm::run_prepared(
                &src,
                &tables,
                relaxed,
                domain,
                &config,
                epsilon,
                started,
                &mut self.buffers,
                budget,
                threads,
            );
            stats.threads_used = stats.threads_used.max(1);
            return Ok(outcome_skeleton(
                QueryResults::Motif(motif),
                resolved.name(),
                stats,
                !completed,
            ));
        }

        // GTM* exists to avoid allocating the O(n²) matrix, so it never
        // *builds* one — but a matrix another algorithm already paid for
        // is free to read, and its relaxed bound tables are cached like
        // everyone else's, so warm queries skip precomputation.
        if let ResolvedAlgorithm::GtmStar = resolved {
            let (dense, tables) = self.engine.cache.gtm_star_prepared(
                key,
                pa,
                pb,
                domain,
                config.min_length,
                &mut self.ctx,
            );
            let tables = Some(tables.as_ref());
            let (motif, mut stats, completed) = match &dense {
                Some(src) => GtmStar::run(
                    src.as_ref(),
                    domain,
                    &config,
                    started,
                    &mut self.buffers,
                    budget,
                    tables,
                    threads,
                ),
                None => match pb {
                    None => GtmStar::run(
                        &LazyDistances::within(pa),
                        domain,
                        &config,
                        started,
                        &mut self.buffers,
                        budget,
                        tables,
                        threads,
                    ),
                    Some(pb) => GtmStar::run(
                        &LazyDistances::between(pa, pb),
                        domain,
                        &config,
                        started,
                        &mut self.buffers,
                        budget,
                        tables,
                        threads,
                    ),
                },
            };
            stats.threads_used = stats.threads_used.max(1);
            return Ok(outcome_skeleton(
                QueryResults::Motif(motif),
                resolved.name(),
                stats,
                !completed,
            ));
        }

        let (motif, mut stats, completed) = match resolved {
            ResolvedAlgorithm::BruteDp => {
                // The exhaustive baseline deliberately ignores the
                // execution mode (Algorithm 1 is measured serial), but a
                // parallel query still benefits from the parallel matrix
                // build.
                let src = self
                    .engine
                    .cache
                    .matrix(key, pa, pb, threads, &mut self.ctx);
                let pre = started.elapsed().as_secs_f64();
                BruteDp::run_prepared(
                    src.as_ref(),
                    domain,
                    &config,
                    pre,
                    started,
                    &mut self.buffers,
                    budget,
                )
            }
            ResolvedAlgorithm::Btm => {
                let (src, tables) = self.engine.cache.prepared(
                    key,
                    pa,
                    pb,
                    domain,
                    config.min_length,
                    config.bounds,
                    threads,
                    &mut self.ctx,
                );
                Btm::run_prepared(
                    src.as_ref(),
                    tables.as_ref(),
                    domain,
                    &config,
                    0.0,
                    started,
                    &mut self.buffers,
                    budget,
                    threads,
                )
            }
            ResolvedAlgorithm::Gtm => {
                let (src, tables, relaxed) = self.engine.cache.prepared_with_relaxed(
                    key,
                    pa,
                    pb,
                    domain,
                    config.min_length,
                    config.bounds,
                    true,
                    threads,
                    &mut self.ctx,
                );
                Gtm::run_prepared(
                    src.as_ref(),
                    tables.as_ref(),
                    relaxed.as_deref().and_then(|t| t.as_relaxed()),
                    domain,
                    &config,
                    0.0,
                    started,
                    &mut self.buffers,
                    budget,
                    threads,
                )
            }
            ResolvedAlgorithm::Approx(epsilon) => {
                if !(epsilon >= 0.0 && epsilon.is_finite()) {
                    return Err(EngineError::InvalidParameter(
                        "approximation ε must be finite and ≥ 0".into(),
                    ));
                }
                let (src, tables, relaxed) = self.engine.cache.prepared_with_relaxed(
                    key,
                    pa,
                    pb,
                    domain,
                    config.min_length,
                    config.bounds,
                    true,
                    threads,
                    &mut self.ctx,
                );
                Gtm::run_prepared(
                    src.as_ref(),
                    tables.as_ref(),
                    relaxed.as_deref().and_then(|t| t.as_relaxed()),
                    domain,
                    &config,
                    epsilon,
                    started,
                    &mut self.buffers,
                    budget,
                    threads,
                )
            }
            ResolvedAlgorithm::GtmStar => unreachable!("handled above"),
        };

        stats.threads_used = stats.threads_used.max(1);
        Ok(outcome_skeleton(
            QueryResults::Motif(motif),
            resolved.name(),
            stats,
            !completed,
        ))
    }

    fn execute_top_k(
        &mut self,
        id: TrajId,
        k: usize,
        query: &Query,
        started: Instant,
    ) -> Result<QueryOutcome, EngineError> {
        self.validate_motif_params(query)?;
        if k == 0 {
            return Err(EngineError::InvalidParameter("k must be at least 1".into()));
        }
        // Diverse top-k is defined on the BTM machinery (masked rounds);
        // reject explicit choices it cannot honor rather than silently
        // running something else.
        match query.algorithm {
            AlgorithmChoice::Auto | AlgorithmChoice::Btm => {}
            other => {
                return Err(EngineError::InvalidParameter(format!(
                    "top-k queries run on the BTM machinery; algorithm \"{other}\" is not \
                     supported (use auto or btm)"
                )))
            }
        }
        let config = query.motif_config();
        let budget = query.budget.to_search_budget(started);
        let traj = self.engine.trajectory(id)?;
        let n = traj.len();
        let threads = query.execution.resolve(n);
        let domain = Domain::Within { n };
        let (src, tables) = self.engine.cache.prepared(
            ScopeKey::Within(id.index),
            traj.points(),
            None,
            domain,
            config.min_length,
            config.bounds,
            threads,
            &mut self.ctx,
        );
        let (motifs, mut stats, completed) = top_k_prepared(
            src.as_ref(),
            tables.as_ref(),
            domain,
            &config,
            k,
            started,
            &mut self.buffers,
            budget.as_ref(),
            threads,
        );
        stats.threads_used = stats.threads_used.max(1);
        Ok(outcome_skeleton(
            QueryResults::TopK(motifs),
            "BTM(top-k)",
            stats,
            !completed,
        ))
    }

    fn execute_join(
        &mut self,
        probe: &[TrajId],
        base: Option<&[TrajId]>,
        epsilon: f64,
        threads: usize,
    ) -> Result<QueryOutcome, EngineError> {
        if epsilon.is_nan() || epsilon < 0.0 {
            return Err(EngineError::InvalidParameter(
                "join threshold ε must be non-negative".into(),
            ));
        }
        let resolve = |ids: &[TrajId]| -> Result<Vec<Arc<Trajectory<P>>>, EngineError> {
            ids.iter().map(|&id| self.engine.trajectory(id)).collect()
        };
        // The join kernels take plain `&Trajectory` slices (Sync needs
        // only `P: Sync` that way); the Arcs just keep them alive.
        let a_arcs = resolve(probe)?;
        let a: Vec<&Trajectory<P>> = a_arcs.iter().map(Arc::as_ref).collect();
        let result = match (base, threads) {
            (None, 0) => similarity_self_join(&a, epsilon),
            (None, t) => similarity_self_join_parallel(&a, epsilon, t),
            (Some(base), t) => {
                let b_arcs = resolve(base)?;
                let b: Vec<&Trajectory<P>> = b_arcs.iter().map(Arc::as_ref).collect();
                if t == 0 {
                    similarity_join(&a, &b, epsilon)
                } else {
                    similarity_join_parallel(&a, &b, epsilon, t)
                }
            }
        };
        Ok(outcome_skeleton(
            QueryResults::Join(result),
            "FILTER-JOIN",
            SearchStats::default(),
            false,
        ))
    }

    fn execute_cluster(
        &mut self,
        id: TrajId,
        window: usize,
        stride: usize,
        epsilon: f64,
        threads: usize,
    ) -> Result<QueryOutcome, EngineError> {
        if window < 2 {
            return Err(EngineError::InvalidParameter(
                "cluster window must have at least 2 points".into(),
            ));
        }
        if stride == 0 {
            return Err(EngineError::InvalidParameter(
                "cluster stride must be at least 1".into(),
            ));
        }
        if epsilon.is_nan() || epsilon < 0.0 {
            return Err(EngineError::InvalidParameter(
                "cluster threshold ε must be non-negative".into(),
            ));
        }
        let t = self.engine.trajectory(id)?;
        let cfg = ClusterConfig::new(window, stride, epsilon);
        let clusters = if threads == 0 {
            cluster_subtrajectories(t.as_ref(), &cfg)
        } else {
            cluster_subtrajectories_parallel(t.as_ref(), &cfg, threads)
        };
        Ok(outcome_skeleton(
            QueryResults::Cluster(clusters),
            "LEADER",
            SearchStats::default(),
            false,
        ))
    }

    fn execute_measures(
        &mut self,
        a: TrajId,
        b: TrajId,
        epsilon: f64,
    ) -> Result<QueryOutcome, EngineError> {
        if epsilon.is_nan() || epsilon < 0.0 {
            return Err(EngineError::InvalidParameter(
                "measure threshold ε must be non-negative".into(),
            ));
        }
        let ta = self.engine.trajectory(a)?;
        let tb = self.engine.trajectory(b)?;
        let (pa, pb) = (ta.points(), tb.points());
        let profile = MeasureProfile {
            euclidean: fremo_similarity::lockstep_euclidean(pa, pb),
            dtw: fremo_similarity::dtw(pa, pb),
            lcss: fremo_similarity::lcss_distance(pa, pb, epsilon),
            edr: fremo_similarity::edr(pa, pb, epsilon),
            dfd: fremo_similarity::dfd(pa, pb),
            hausdorff: fremo_similarity::hausdorff(pa, pb),
            epsilon,
        };
        Ok(outcome_skeleton(
            QueryResults::Measures(profile),
            "MEASURES",
            SearchStats::default(),
            false,
        ))
    }
}

/// An outcome with cache/wall fields left for [`Session::execute`] to fill.
fn outcome_skeleton(
    results: QueryResults,
    algorithm: &'static str,
    mut stats: SearchStats,
    truncated: bool,
) -> QueryOutcome {
    // Stamp the distance-kernel variant this query dispatched under so
    // bench JSON and `fremo serve` responses can attribute timings.
    stats.kernel = fremo_trajectory::Kernel::active().name();
    QueryOutcome {
        results,
        algorithm,
        stats,
        wall_seconds: 0.0,
        cache: CacheReport::default(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::MotifDiscovery;
    use crate::config::MotifConfig;
    use fremo_trajectory::gen::planar;

    #[test]
    fn register_and_lookup() {
        let engine = Engine::new();
        assert!(engine.is_empty());
        let ids = engine.register_all((0..3).map(|s| planar::random_walk(30, 0.4, s)));
        assert_eq!(engine.len(), 3);
        assert_eq!(ids[2].index(), 2);
        assert!(engine.trajectory(ids[1]).is_ok());
        let foreign = TrajId::from_index(99);
        assert!(matches!(
            engine.trajectory(foreign),
            Err(EngineError::UnknownTrajectory(f)) if f == foreign
        ));
    }

    #[test]
    fn motif_matches_direct_btm_and_reuses_cache() {
        let t = planar::random_walk(60, 0.4, 11);
        let direct = crate::Btm.discover(&t, &MotifConfig::new(4)).unwrap();

        let engine = Engine::new();
        let id = engine.register(t);
        let q = Query::motif(id)
            .xi(4)
            .algorithm(AlgorithmChoice::Btm)
            .build();
        let first = engine.execute(&q).unwrap();
        let m = first.motif().expect("motif");
        assert_eq!(m.first, direct.first);
        assert_eq!(m.second, direct.second);
        assert_eq!(m.distance.to_bits(), direct.distance.to_bits());
        assert_eq!(first.algorithm, "BTM");
        assert_eq!(first.cache.matrices_built, 1);
        assert_eq!(first.cache.tables_built, 1);

        let second = engine.execute(&q).unwrap();
        assert_eq!(second.motif(), first.motif());
        assert_eq!(second.cache.recomputed(), 0);
        assert_eq!(second.cache.reused(), 2);
        assert_eq!(engine.stats().queries, 2);
        assert!(engine.cache_bytes() > 0);
        engine.clear_cache();
        assert_eq!(engine.cache_bytes(), 0);
    }

    #[test]
    fn invalid_parameters_are_rejected_not_panicked() {
        let engine = Engine::new();
        let id = engine.register(planar::random_walk(40, 0.4, 1));
        for q in [
            Query::motif(id).xi(0).build(),
            Query::motif(id).group_size(0).build(),
            Query::top_k(id, 0).build(),
            Query::cluster(id, 1, 1, 1.0).build(),
            Query::cluster(id, 10, 0, 1.0).build(),
            Query::cluster(id, 10, 5, -1.0).build(),
            Query::join(vec![id], -0.5).build(),
            Query::measures(id, id, f64::NAN).build(),
            Query::top_k(id, 2).algorithm(AlgorithmChoice::Gtm).build(),
            Query::top_k(id, 2)
                .algorithm(AlgorithmChoice::Approx { epsilon: 0.5 })
                .build(),
            Query::join(vec![id], 1.0).candidate_budget(5).build(),
            Query::cluster(id, 10, 5, 1.0).candidate_budget(5).build(),
            Query::measures(id, id, 1.0).candidate_budget(5).build(),
        ] {
            assert!(
                matches!(engine.execute(&q), Err(EngineError::InvalidParameter(_))),
                "{q:?} should be rejected"
            );
        }
        let foreign = TrajId::from_index(7);
        assert!(matches!(
            engine.execute(&Query::motif(foreign).xi(2).build()),
            Err(EngineError::UnknownTrajectory(_))
        ));
    }

    #[test]
    fn handles_do_not_cross_engines() {
        let a = Engine::new();
        let b = Engine::new();
        let id_a = a.register(planar::random_walk(30, 0.4, 1));
        let _id_b = b.register(planar::random_walk(30, 0.4, 2));
        // Same in-range index, wrong engine: must be rejected, not
        // silently resolved to b's trajectory.
        assert!(matches!(
            b.execute(&Query::motif(id_a).xi(2).build()),
            Err(EngineError::UnknownTrajectory(_))
        ));
        assert!(a.execute(&Query::motif(id_a).xi(2).build()).is_ok());
    }

    #[test]
    fn cache_limit_bounds_memory() {
        let engine = Engine::new().with_cache_limit(1);
        let ids = engine.register_all((0..3).map(|s| planar::random_walk(40, 0.4, s)));
        for id in &ids {
            let outcome = engine.execute(&Query::motif(*id).xi(3).build()).unwrap();
            assert!(outcome.motif().is_some());
            // Every entry overflows the 1-byte limit once its query-end
            // unpin lands, so nothing stays resident — memory is bounded.
            assert_eq!(engine.cache_bytes(), 0);
        }
        // Unbounded engines keep the cache.
        let engine = Engine::new();
        let id = engine.register(planar::random_walk(40, 0.4, 9));
        engine.execute(&Query::motif(id).xi(3).build()).unwrap();
        assert!(engine.cache_bytes() > 0);
        engine.set_cache_limit(Some(1));
        engine.execute(&Query::motif(id).xi(3).build()).unwrap();
        assert_eq!(engine.cache_bytes(), 0);
    }

    #[test]
    fn gtm_star_caches_relaxed_tables_and_reuses_dense_matrix() {
        let t = planar::random_walk(70, 0.4, 33);
        let direct = crate::GtmStar
            .discover(&t, &MotifConfig::new(4).with_group_size(8))
            .unwrap();
        let engine = Engine::new();
        let id = engine.register(t);
        let q = Query::motif(id)
            .xi(4)
            .group_size(8)
            .algorithm(AlgorithmChoice::GtmStar)
            .build();

        // Cold: builds relaxed tables (never a dense matrix).
        let first = engine.execute(&q).unwrap();
        assert_eq!(first.cache.matrices_built, 0);
        assert_eq!(first.cache.tables_built, 1);
        assert_eq!(first.motif().unwrap().distance, direct.distance);

        // Warm: everything reused.
        let second = engine.execute(&q).unwrap();
        assert_eq!(second.cache.recomputed(), 0);
        assert_eq!(second.cache.tables_reused, 1);
        assert_eq!(second.motif(), first.motif());

        // After a BTM query pays for the dense matrix, GTM* reads it.
        engine
            .execute(
                &Query::motif(id)
                    .xi(4)
                    .algorithm(AlgorithmChoice::Btm)
                    .build(),
            )
            .unwrap();
        let third = engine.execute(&q).unwrap();
        assert_eq!(third.cache.matrices_reused, 1);
        assert_eq!(third.cache.recomputed(), 0);
        assert_eq!(third.motif().unwrap().distance, direct.distance);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let t = planar::random_walk(90, 0.4, 5);
        let engine = Engine::new();
        let id = engine.register(t);
        let q = Query::motif(id)
            .xi(3)
            .algorithm(AlgorithmChoice::BruteDp)
            .candidate_budget(2)
            .build();
        let outcome = engine.execute(&q).unwrap();
        assert!(outcome.truncated);
        assert_eq!(outcome.stats.subsets_expanded, 2);
        // Unexamined subsets are budget-skipped, not "pruned": BruteDP
        // prunes nothing, so the pruned fraction must stay 0.
        assert!(outcome.stats.subsets_skipped_budget > 0);
        assert_eq!(outcome.stats.pruned_fraction(), 0.0);
        assert_eq!(
            outcome.stats.pairs_exact + outcome.stats.pairs_skipped_budget,
            outcome.stats.pairs_total
        );
    }

    #[test]
    fn tight_gtm_caches_relaxed_tables_for_warm_queries() {
        let t = planar::random_walk(70, 0.4, 21);
        let engine = Engine::new();
        let id = engine.register(t);
        let q = Query::motif(id)
            .xi(4)
            .bounds(crate::BoundSelection::all_tight())
            .algorithm(AlgorithmChoice::Gtm)
            .build();
        let first = engine.execute(&q).unwrap();
        // Matrix + tight tables + the relaxed arrays the grouping needs.
        assert_eq!(first.cache.matrices_built, 1);
        assert_eq!(first.cache.tables_built, 2);
        let second = engine.execute(&q).unwrap();
        assert_eq!(second.cache.recomputed(), 0);
        assert_eq!(second.cache.reused(), 3);
        assert_eq!(second.motif(), first.motif());
    }

    #[test]
    fn mixed_workloads_share_one_engine() {
        let engine = Engine::new();
        let ids = engine.register_all((0..4).map(|s| planar::random_walk(50, 0.4, s)));
        let mut session = engine.session();

        let motif = session
            .execute(&Query::motif(ids[0]).xi(3).build())
            .unwrap();
        assert!(motif.motif().is_some());

        let topk = session
            .execute(&Query::top_k(ids[0], 2).xi(3).build())
            .unwrap();
        assert!(!topk.motifs().is_empty());
        // Top-k reuses the motif query's matrix and tables.
        assert_eq!(topk.cache.matrices_built, 0);
        // And its stats account real work: some pairs were evaluated
        // exactly, so the pruned fraction cannot sit at 1.0.
        assert!(topk.stats.pairs_exact > 0);
        assert!(topk.stats.pruned_fraction() < 1.0);

        let join = engine
            .execute(&Query::join(ids.clone(), 5.0).build())
            .unwrap();
        assert!(join.join().is_some());

        let cluster = engine
            .execute(&Query::cluster(ids[1], 10, 10, 2.0).build())
            .unwrap();
        assert!(cluster.clusters().is_some());

        let measures = engine
            .execute(&Query::measures(ids[0], ids[1], 1.0).build())
            .unwrap();
        let p = measures.measures().unwrap();
        assert!(p.dfd >= 0.0 && p.hausdorff <= p.dfd + 1e-9);
        assert_eq!(engine.stats().queries, 5);
    }

    #[test]
    fn concurrent_sessions_match_serial_and_leak_no_pins() {
        let trajectories: Vec<_> = (0..3).map(|s| planar::random_walk(50, 0.4, s)).collect();

        // Serial baseline on a private engine.
        let serial = Engine::new();
        let sids = serial.register_all(trajectories.iter().cloned());
        let queries: Vec<Query> = (0..3)
            .flat_map(|i| {
                [
                    Query::motif(sids[i]).xi(3).build(),
                    Query::top_k(sids[i], 2).xi(3).build(),
                ]
            })
            .collect();
        let baseline: Vec<_> = queries.iter().map(|q| serial.execute(q).unwrap()).collect();

        // The same queries, raced from four sessions on one shared
        // engine (handles are index-compatible: same registration order).
        let shared = Engine::new();
        let ids = shared.register_all(trajectories.iter().cloned());
        assert_eq!(ids.len(), sids.len());
        let rebased: Vec<Query> = (0..3)
            .flat_map(|i| {
                [
                    Query::motif(ids[i]).xi(3).build(),
                    Query::top_k(ids[i], 2).xi(3).build(),
                ]
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut session = shared.session();
                    for (q, want) in rebased.iter().zip(&baseline) {
                        let got = session.execute(q).unwrap();
                        assert_eq!(got.motif(), want.motif());
                        assert_eq!(got.motifs(), want.motifs());
                    }
                });
            }
        });

        // No pinned-frame leaks: with every session finished, a zero
        // limit can evict the whole resident set.
        shared.set_cache_limit(Some(0));
        assert_eq!(shared.cache_bytes(), 0);
    }
}
