//! Wild-Baboon-like animal trajectory generator.
//!
//! The Wild-Baboon dataset \[23\] was recorded by GPS collars "that recorded
//! a location every second" — uniform, high-frequency sampling of smooth,
//! strongly autocorrelated movement. Consecutive points are centimetres to
//! a couple of metres apart, so the group-level distance bounds
//! (`dminG`/`dmaxG`) of GTM are very tight: this is the workload where the
//! grouping framework shines.
//!
//! Model: the troop centroid follows an Ornstein–Uhlenbeck (OU) process
//! attracted to a slowly rotating set of foraging anchors (sleeping grove,
//! waterhole, fig stands); the focal individual follows its own OU process
//! around the centroid. Daily returns to the grove create motif structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{randn, step_m};
use crate::point::GeoPoint;
use crate::trajectory::{Trajectory, TrajectoryBuilder};

/// Mpala Research Centre, Kenya.
const BASE_LAT: f64 = 0.2921;
const BASE_LON: f64 = 36.8986;

/// Generates a Wild-Baboon-like trajectory with exactly `n` points at 1 Hz.
#[must_use]
pub fn baboon_like(n: usize, seed: u64) -> Trajectory<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x424142); // "BAB"
    let mut builder = TrajectoryBuilder::with_capacity(n);

    // Foraging anchors within ~1.5 km of the sleeping grove (the base).
    let n_anchors = rng.gen_range(3..=5);
    let anchors: Vec<(f64, f64)> = (0..n_anchors)
        .map(|_| (randn(&mut rng) * 700.0, randn(&mut rng) * 700.0))
        .collect();

    // State in metres relative to the base: troop centroid and the focal
    // individual's offset from the centroid.
    let (mut cx, mut cy) = (0.0_f64, 0.0_f64);
    let (mut ox, mut oy) = (0.0_f64, 0.0_f64);
    let (mut cvx, mut cvy) = (0.0_f64, 0.0_f64);

    let mut anchor_idx = 0usize;
    // Switch anchors every ~20 minutes of the 1 Hz trace; the grove
    // (index wrapping to 0) recurs, creating repeated approach paths.
    let dwell = 1200;

    for i in 0..n {
        if i % dwell == 0 {
            anchor_idx = if (i / dwell) % 2 == 0 {
                0 // return towards the grove / first anchor
            } else {
                rng.gen_range(0..anchors.len())
            };
        }
        let (ax, ay) = anchors[anchor_idx];

        // Smooth centroid dynamics: velocity OU with attraction.
        let attraction = 0.0004;
        let damping = 0.05;
        cvx += attraction * (ax - cx) - damping * cvx + 0.05 * randn(&mut rng);
        cvy += attraction * (ay - cy) - damping * cvy + 0.05 * randn(&mut rng);
        // Baboons walk at ≲1.5 m/s.
        let speed = (cvx * cvx + cvy * cvy).sqrt();
        if speed > 1.5 {
            let k = 1.5 / speed;
            cvx *= k;
            cvy *= k;
        }
        cx += cvx;
        cy += cvy;

        // Individual offset OU around the centroid (troop spread ~15 m).
        ox += -0.02 * ox + 0.35 * randn(&mut rng);
        oy += -0.02 * oy + 0.35 * randn(&mut rng);

        let (lat, lon) = step_m(BASE_LAT, BASE_LON, cy + oy, cx + ox);
        builder
            .push(GeoPoint::new_unchecked(lat, lon).with_alt(1700.0), i as f64)
            .expect("1 Hz timestamps are strictly ascending");
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GroundDistance;

    #[test]
    fn sampling_is_uniform_1hz() {
        let t = baboon_like(500, 21);
        let ts = t.timestamps().unwrap();
        for w in ts.windows(2) {
            assert_eq!(w[1] - w[0], 1.0);
        }
    }

    #[test]
    fn movement_is_smooth() {
        let t = baboon_like(2000, 22);
        for i in 1..t.len() {
            let d = t.dist(i - 1, i);
            assert!(d < 4.0, "step of {d} m at 1 Hz is not baboon-like (i={i})");
        }
    }

    #[test]
    fn stays_home_range_scale() {
        let t = baboon_like(5000, 23);
        let base = GeoPoint::new_unchecked(BASE_LAT, BASE_LON);
        for p in t.points() {
            assert!(p.distance(&base) < 10_000.0);
        }
    }

    #[test]
    fn high_autocorrelation_means_tight_groups() {
        // The diameter of any 32-point window should be small relative to
        // the whole trace — the property GTM's group bounds exploit.
        let t = baboon_like(4000, 24);
        let mut max_group_diam: f64 = 0.0;
        for chunk in t.points().chunks(32) {
            let mut diam: f64 = 0.0;
            for a in chunk {
                for b in chunk {
                    diam = diam.max(a.distance(b));
                }
            }
            max_group_diam = max_group_diam.max(diam);
        }
        let mut total_diam: f64 = 0.0;
        for a in t.points().iter().step_by(40) {
            for b in t.points().iter().step_by(40) {
                total_diam = total_diam.max(a.distance(b));
            }
        }
        assert!(
            max_group_diam < total_diam / 3.0,
            "groups not tight: {max_group_diam} vs trace diameter {total_diam}"
        );
    }
}
