//! Synthetic workload generators.
//!
//! The paper evaluates on three real datasets — GeoLife (pedestrians,
//! varying sampling rate), Truck (concrete trucks in Athens) and Wild-Baboon
//! (1 Hz GPS collars in Kenya). Those datasets are not redistributable here,
//! so each generator below synthesizes trajectories reproducing the
//! *behavioural properties the algorithms are sensitive to* (see DESIGN.md
//! §5):
//!
//! * [`geolife_like`] — anchor-based pedestrian movement with heading
//!   persistence, speed regimes, **non-uniform sampling** and dropped
//!   samples. Repeated home–work trips create natural motifs.
//! * [`truck_like`] — depot-to-site shuttles on a jittered road grid:
//!   strongly repeated routes, near-duplicate subtrajectories.
//! * [`baboon_like`] — group-correlated smooth movement at uniform 1 Hz,
//!   high autocorrelation (tight group bounds for GTM).
//! * [`planted()`] — a random walk with an explicitly planted pair of similar
//!   subtrajectories, for ground-truth testing.
//! * [`planar`] — small planar shapes used by unit tests and examples.
//!
//! All generators are deterministic given a seed and produce exactly the
//! requested number of points.

pub mod animal;
pub mod noise;
pub mod planar;
pub mod planted;
pub mod vehicle;
pub mod walk;

pub use animal::baboon_like;
pub use noise::{with_dropped_samples, with_gps_noise, with_outliers};
pub use planted::{planted, PlantedMotif};
pub use vehicle::truck_like;
pub use walk::geolife_like;

use rand::Rng;

use crate::point::GeoPoint;
use crate::trajectory::Trajectory;

/// The three dataset families of the paper's evaluation (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// GeoLife-like pedestrian data (non-uniform sampling).
    GeoLife,
    /// Truck-like vehicle data (repeated depot routes).
    Truck,
    /// Wild-Baboon-like animal data (1 Hz, group-correlated).
    Baboon,
}

impl Dataset {
    /// All dataset families, in the order the paper plots them.
    pub const ALL: [Dataset; 3] = [Dataset::GeoLife, Dataset::Truck, Dataset::Baboon];

    /// Short human-readable name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::GeoLife => "GeoLife",
            Dataset::Truck => "Truck",
            Dataset::Baboon => "Wild-Baboon",
        }
    }

    /// Generates a trajectory of exactly `n` points from this family.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Trajectory<GeoPoint> {
        match self {
            Dataset::GeoLife => geolife_like(n, seed),
            Dataset::Truck => truck_like(n, seed),
            Dataset::Baboon => baboon_like(n, seed),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "geolife" => Ok(Dataset::GeoLife),
            "truck" => Ok(Dataset::Truck),
            "baboon" | "wild-baboon" => Ok(Dataset::Baboon),
            other => Err(format!(
                "unknown dataset {other:?} (expected geolife|truck|baboon)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared numeric helpers (kept here so the sub-generators stay focused).
// ---------------------------------------------------------------------------

/// Metres per degree of latitude (approximately constant on the sphere).
pub(crate) const M_PER_DEG_LAT: f64 = 111_132.0;

/// Metres per degree of longitude at latitude `lat_deg`.
pub(crate) fn m_per_deg_lon(lat_deg: f64) -> f64 {
    111_320.0 * lat_deg.to_radians().cos()
}

/// Standard normal sample via the Box–Muller transform (the pre-approved
/// `rand` crate alone provides only uniform primitives).
pub(crate) fn randn<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Log-normal sample: `exp(mu + sigma * N(0,1))`.
pub(crate) fn rand_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * randn(rng)).exp()
}

/// Moves `(lat, lon)` by `(north_m, east_m)` metres, clamping latitude away
/// from the poles so longitude scaling stays sane.
pub(crate) fn step_m(lat: f64, lon: f64, north_m: f64, east_m: f64) -> (f64, f64) {
    let new_lat = (lat + north_m / M_PER_DEG_LAT).clamp(-89.0, 89.0);
    let new_lon = lon + east_m / m_per_deg_lon(new_lat);
    // Wrap longitude into [-180, 180].
    let wrapped = (new_lon + 180.0).rem_euclid(360.0) - 180.0;
    (new_lat, wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_roundtrip_parse() {
        for d in Dataset::ALL {
            let parsed: Dataset = d.name().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed, d);
        }
        assert!("mars-rover".parse::<Dataset>().is_err());
    }

    #[test]
    fn generators_are_deterministic_and_exact_length() {
        for d in Dataset::ALL {
            let a = d.generate(257, 42);
            let b = d.generate(257, 42);
            let c = d.generate(257, 43);
            assert_eq!(a.len(), 257, "{d}");
            assert_eq!(a.points(), b.points(), "{d} not deterministic");
            assert_ne!(a.points(), c.points(), "{d} ignores seed");
            let ts = a.timestamps().expect("generators attach timestamps");
            assert!(
                ts.windows(2).all(|w| w[1] > w[0]),
                "{d} timestamps not ascending"
            );
            for (i, p) in a.points().iter().enumerate() {
                assert!(
                    p.lat.is_finite() && p.lon.is_finite(),
                    "{d} point {i} not finite"
                );
                assert!((-90.0..=90.0).contains(&p.lat), "{d} lat out of range");
                assert!((-180.0..=180.0).contains(&p.lon), "{d} lon out of range");
            }
        }
    }

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rand_lognormal(&mut rng, 1.0, 0.8) > 0.0);
        }
    }

    #[test]
    fn step_m_moves_as_expected() {
        let (lat, lon) = step_m(40.0, 116.0, 111_132.0, 0.0);
        assert!((lat - 41.0).abs() < 1e-9);
        assert!((lon - 116.0).abs() < 1e-9);
        // Clamps near poles and wraps longitude.
        let (lat, _lon) = step_m(88.9, 0.0, 1e9, 0.0);
        assert!(lat <= 89.0);
        let (_, lon) = step_m(0.0, 179.9, 0.0, 50_000.0);
        assert!((-180.0..=180.0).contains(&lon));
    }
}
