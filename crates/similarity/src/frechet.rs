//! Discrete Fréchet distance (DFD).
//!
//! The "dog-man" distance of Eiter & Mannila \[8\]: the minimum over all
//! monotone couplings of the two point sequences of the maximum coupled
//! ground distance. Section 3 of the paper defines it by the recurrence
//!
//! ```text
//! dF(i, ie, j, je) = max( dG(ie, je),
//!                         min( dF(i, ie−1, j, je),
//!                              dF(i, ie,   j, je−1),
//!                              dF(i, ie−1, j, je−1) ) )
//! ```
//!
//! with `dF(i, i, j, j) = dG(i, j)`.
//!
//! Three implementations are provided:
//!
//! * [`dfd`] / [`dfd_linear`] — `O(n·m)` time, `O(min(n,m))` space.
//! * [`dfd_with_coupling`] — also recovers an optimal coupling (the "path
//!   in the dG matrix" of the paper's Observation 1).
//! * [`dfd_decision`] — the threshold variant `DFD(a,b) ≤ ε?` with early
//!   row abandoning, cheaper than computing the exact value when only a
//!   comparison is needed.

use fremo_trajectory::kernel;
use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// Discrete Fréchet distance between `a` and `b`.
///
/// Conventions: both empty → `0`, exactly one empty → `+∞`.
#[must_use]
pub fn dfd<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    dfd_linear(a, b)
}

/// Linear-space DFD: rolls two rows of the DP matrix (the same trick GTM*
/// uses in Section 5.5, Idea ii).
#[must_use]
pub fn dfd_linear<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    // Roll over the shorter side to minimize the buffer.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();

    let mut prev = vec![0.0_f64; m];
    let mut curr = vec![0.0_f64; m];
    let mut mins = vec![0.0_f64; m];
    let mut dists = vec![0.0_f64; m];

    // First row: dF(0, j) = max(dG(0, 0..=j)), over a vectorized
    // distance row.
    outer[0].distance_row(inner, &mut dists);
    let mut running = 0.0_f64;
    for (slot, &d) in prev.iter_mut().zip(&dists) {
        running = running.max(d);
        *slot = running;
    }

    for p in &outer[1..] {
        // Vectorizable pre-pass (same split as `expand_subset` in
        // fremo-core): gather the distance row, fold the two prev-row
        // predecessors, then run the irreducible scalar scan.
        // `mins[j].min(curr[j-1])` associates exactly like the
        // historical `prev[j].min(prev[j-1]).min(curr[j-1])`, so the
        // result is bit-identical.
        p.distance_row(inner, &mut dists);
        kernel::pairwise_min(&prev[1..], &prev[..m - 1], &mut mins[1..]);
        curr[0] = prev[0].max(dists[0]);
        for j in 1..m {
            let reach = mins[j].min(curr[j - 1]);
            curr[j] = reach.max(dists[j]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// DFD plus one optimal coupling: the monotone sequence of index pairs
/// `(i, j)` from `(0,0)` to `(n−1, m−1)` whose worst ground distance equals
/// the returned value (Observation 1's minimax path).
///
/// Uses the full `O(n·m)` matrix; prefer [`dfd`] when the path is not
/// needed.
#[must_use]
pub fn dfd_with_coupling<P: GroundDistance>(a: &[P], b: &[P]) -> (f64, Vec<(usize, usize)>) {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return (0.0, vec![]),
        (true, false) | (false, true) => return (f64::INFINITY, vec![]),
        _ => {}
    }
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0.0_f64; n * m];
    let idx = |i: usize, j: usize| i * m + j;

    dp[idx(0, 0)] = a[0].distance(&b[0]);
    for j in 1..m {
        dp[idx(0, j)] = dp[idx(0, j - 1)].max(a[0].distance(&b[j]));
    }
    for i in 1..n {
        dp[idx(i, 0)] = dp[idx(i - 1, 0)].max(a[i].distance(&b[0]));
        for j in 1..m {
            let reach = dp[idx(i - 1, j)]
                .min(dp[idx(i, j - 1)])
                .min(dp[idx(i - 1, j - 1)]);
            dp[idx(i, j)] = reach.max(a[i].distance(&b[j]));
        }
    }
    let value = dp[idx(n - 1, m - 1)];

    // Backtrack: from (n-1, m-1) follow any predecessor whose DP value does
    // not exceed the final value; such a predecessor always exists on an
    // optimal path because DP values are non-decreasing along it.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n - 1, m - 1);
    path.push((i, j));
    while i > 0 || j > 0 {
        let candidates: [(isize, isize); 3] = [(-1, -1), (-1, 0), (0, -1)];
        let mut best: Option<(usize, usize, f64)> = None;
        for (di, dj) in candidates {
            let (pi, pj) = (i as isize + di, j as isize + dj);
            if pi < 0 || pj < 0 {
                continue;
            }
            let (pi, pj) = (pi as usize, pj as usize);
            let v = dp[idx(pi, pj)];
            if best.is_none_or(|(_, _, bv)| v < bv) {
                best = Some((pi, pj, v));
            }
        }
        // fremo-lint: allow(L3) -- the loop guard `i > 0 || j > 0` makes at
        // least one of (-1,0)/(0,-1) land in bounds, so `best` is Some.
        let (pi, pj, _) = best.expect("interior cell always has a predecessor");
        i = pi;
        j = pj;
        path.push((i, j));
    }
    path.reverse();
    (value, path)
}

/// Decision variant: is `DFD(a, b) ≤ eps`?
///
/// Runs the same DP but clamps cells above `eps` to `+∞` and abandons as
/// soon as an entire row is infeasible (DP values never decrease along the
/// dependency order, so no later cell can become feasible again).
#[must_use]
pub fn dfd_decision<P: GroundDistance>(a: &[P], b: &[P], eps: f64) -> bool {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return true,
        (true, false) | (false, true) => return false,
        _ => {}
    }
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];
    let mut mins = vec![f64::INFINITY; m];
    let mut dists = vec![0.0_f64; m];

    outer[0].distance_row(inner, &mut dists);
    let mut running = 0.0_f64;
    for (j, &d) in dists.iter().enumerate() {
        running = running.max(d);
        prev[j] = if running <= eps {
            running
        } else {
            f64::INFINITY
        };
        if prev[j].is_infinite() {
            // Everything to the right of an infeasible first-row cell is
            // infeasible too (`prev` already starts at `+∞`).
            break;
        }
    }
    if prev.iter().all(|v| v.is_infinite()) {
        return false;
    }

    for p in &outer[1..] {
        // Same vectorized row-gather + min pre-pass as `dfd_linear`;
        // the clamp logic below is unchanged. `+∞` cells pass through
        // both kernels exactly (no NaN is ever produced).
        p.distance_row(inner, &mut dists);
        kernel::pairwise_min(&prev[1..], &prev[..m - 1], &mut mins[1..]);
        let d0 = dists[0];
        curr[0] = if d0 <= eps && prev[0].is_finite() {
            prev[0].max(d0)
        } else {
            f64::INFINITY
        };
        let mut any_feasible = curr[0].is_finite();
        for j in 1..m {
            let reach = mins[j].min(curr[j - 1]);
            let v = reach.max(dists[j]);
            curr[j] = if v <= eps { v } else { f64::INFINITY };
            any_feasible |= curr[j].is_finite();
        }
        if !any_feasible {
            return false;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1].is_finite()
}

/// [`SimilarityMeasure`] wrapper for the discrete Fréchet distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscreteFrechet;

impl<P: GroundDistance> SimilarityMeasure<P> for DiscreteFrechet {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        dfd(a, b)
    }

    fn name(&self) -> &'static str {
        "DFD"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        true
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    /// Exponential-time reference: tries every monotone coupling.
    fn dfd_reference(a: &[EuclideanPoint], b: &[EuclideanPoint]) -> f64 {
        fn rec(a: &[EuclideanPoint], b: &[EuclideanPoint], i: usize, j: usize) -> f64 {
            let d = a[i].distance(&b[j]);
            if i == 0 && j == 0 {
                return d;
            }
            let mut best = f64::INFINITY;
            if i > 0 {
                best = best.min(rec(a, b, i - 1, j));
            }
            if j > 0 {
                best = best.min(rec(a, b, i, j - 1));
            }
            if i > 0 && j > 0 {
                best = best.min(rec(a, b, i - 1, j - 1));
            }
            best.max(d)
        }
        rec(a, b, a.len() - 1, b.len() - 1)
    }

    #[test]
    fn matches_reference_on_small_inputs() {
        let cases = [
            (
                pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]),
                pts(&[(0.0, 1.0), (2.0, 1.0)]),
            ),
            (pts(&[(0.0, 0.0)]), pts(&[(3.0, 4.0)])),
            (
                pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, -1.0), (3.0, 0.5)]),
                pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 0.0), (3.5, 0.0), (4.0, 1.0)]),
            ),
            (
                pts(&[(0.0, 0.0), (5.0, 5.0)]),
                pts(&[(0.0, 0.0), (5.0, 5.0)]),
            ),
        ];
        for (a, b) in cases {
            let expected = dfd_reference(&a, &b);
            assert!((dfd(&a, &b) - expected).abs() < 1e-12);
            assert!((dfd_linear(&a, &b) - expected).abs() < 1e-12);
            let (v, _) = dfd_with_coupling(&a, &b);
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn single_points_reduce_to_ground_distance() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(3.0, 4.0)]);
        assert_eq!(dfd(&a, &b), 5.0);
    }

    #[test]
    fn dog_man_classic_example() {
        // Man on a straight line, dog zigzagging: DFD is the zigzag
        // amplitude offset, not the sum of detours (unlike DTW).
        let man = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let dog = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]);
        assert_eq!(dfd(&man, &dog), 1.0);
    }

    #[test]
    fn insensitive_to_resampling_density() {
        // The same path sampled at 5 vs 50 points: DFD stays small. This is
        // the paper's core argument for DFD over DTW (Figure 3).
        let coarse: Vec<EuclideanPoint> = (0..5)
            .map(|i| EuclideanPoint::new(i as f64 * 2.5, 0.0))
            .collect();
        let fine: Vec<EuclideanPoint> = (0..50)
            .map(|i| EuclideanPoint::new(i as f64 * 10.0 / 49.0, 0.0))
            .collect();
        let d = dfd(&coarse, &fine);
        assert!(d < 1.3, "DFD should be small under resampling, got {d}");
    }

    #[test]
    fn coupling_is_valid_and_achieves_value() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, -1.0), (3.0, 0.5), (4.0, 0.0)]);
        let b = pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 0.0), (4.5, 0.5)]);
        let (v, path) = dfd_with_coupling(&a, &b);
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(4, 3)));
        let mut worst = 0.0_f64;
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "not monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "skips cells");
            assert!((i1, j1) != (i0, j0), "stalls");
        }
        for &(i, j) in &path {
            worst = worst.max(a[i].distance(&b[j]));
        }
        assert!(
            (worst - v).abs() < 1e-12,
            "path achieves {worst}, dfd is {v}"
        );
    }

    #[test]
    fn decision_variant_agrees_with_exact() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, -1.0), (3.0, 0.5)]);
        let b = pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 0.0), (3.5, 0.0)]);
        let exact = dfd(&a, &b);
        assert!(dfd_decision(&a, &b, exact));
        assert!(dfd_decision(&a, &b, exact + 0.1));
        assert!(!dfd_decision(&a, &b, exact - 1e-9));
        assert!(!dfd_decision(&a, &b, 0.0));
        // Empty conventions.
        let empty: Vec<EuclideanPoint> = vec![];
        assert!(dfd_decision(&empty, &empty, 0.0));
        assert!(!dfd_decision(&a, &empty, f64::MAX));
    }

    #[test]
    fn swapping_arguments_is_symmetric() {
        let a = pts(&[(0.0, 0.0), (2.0, 3.0), (4.0, 0.0), (6.0, -2.0)]);
        let b = pts(&[(0.0, 1.0), (3.0, 2.0), (6.0, 1.0)]);
        assert_eq!(dfd(&a, &b), dfd(&b, &a));
    }

    #[test]
    fn triangle_inequality_holds() {
        // DFD is a metric on sequences (up to indiscernibles).
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 2.0), (1.0, 2.0), (2.0, 3.0)]);
        let c = pts(&[(0.0, 5.0), (2.0, 5.0)]);
        let ab = dfd(&a, &b);
        let bc = dfd(&b, &c);
        let ac = dfd(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn lower_bounded_by_endpoint_distances() {
        // Any coupling matches first-with-first and last-with-last.
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (9.0, 0.0)]);
        let b = pts(&[(0.0, 3.0), (9.0, 4.0)]);
        let lb = a[0].distance(&b[0]).max(a[2].distance(&b[1]));
        assert!(dfd(&a, &b) >= lb - 1e-12);
    }
}
