//! Figure 14: BTM with tight vs relaxed bounds, varying minimum motif
//! length `ξ` (n fixed).

use fremo_core::{BoundSelection, MotifConfig};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_pct, fmt_secs, Table};
use crate::workload::trajectories;

fn measure(n: usize, xi: usize, sel: BoundSelection, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi).with_bounds(sel);
    let ts = trajectories(Dataset::GeoLife, n, reps, 1400);
    let ms: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Btm, t, &cfg).0)
        .collect();
    average(&ms)
}

/// Regenerates Figure 14 (GeoLife-like, n fixed).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let reps = scale.repetitions();

    let mut prune = Table::new(vec!["xi", "Tight", "Relaxed"]);
    let mut time = Table::new(vec!["xi", "Tight (s)", "Relaxed (s)"]);
    for &xi in scale.motif_lengths() {
        let tight = measure(n, xi, BoundSelection::all_tight(), reps);
        let relaxed = measure(n, xi, BoundSelection::all_relaxed(), reps);
        assert_eq!(tight.distance, relaxed.distance, "disagreement at xi={xi}");
        prune.row(vec![
            xi.to_string(),
            fmt_pct(tight.pruned_fraction),
            fmt_pct(relaxed.pruned_fraction),
        ]);
        time.row(vec![
            xi.to_string(),
            fmt_secs(tight.seconds),
            fmt_secs(relaxed.seconds),
        ]);
    }

    vec![
        (
            format!("Figure 14(a): pruning ratio vs xi (n={n}, GeoLife-like)"),
            prune,
        ),
        (
            format!("Figure 14(b): response time vs xi (n={n}, GeoLife-like)"),
            time,
        ),
    ]
}
