//! Mini workspace used by the integration tests: one L1 violation.

pub struct Engine;

impl Engine {
    pub fn execute(&self, xs: &mut [f64]) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }
}
