//! End-to-end CLI flows through the `fremo_cli` library: generate →
//! inspect → discover → compare, against real temp files.

use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fremo-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_then_discover() {
    let file = temp_path("walk.csv");
    let file_str = file.to_str().unwrap();

    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "geolife",
        "--n",
        "150",
        "--seed",
        "7",
        "--out",
        file_str,
    ]))
    .expect("generate");
    assert!(file.exists());

    fremo_cli::run(&argv(&["inspect", "--input", file_str])).expect("inspect");
    fremo_cli::run(&argv(&["discover", "--input", file_str, "--xi", "10"])).expect("discover");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        file_str,
        "--xi",
        "10",
        "--algorithm",
        "btm",
        "--json",
    ]))
    .expect("discover json");
    fremo_cli::run(&argv(&[
        "discover", "--input", file_str, "--xi", "10", "--k", "2",
    ]))
    .expect("top-k");
    fremo_cli::run(&argv(&[
        "discover",
        "--input",
        file_str,
        "--xi",
        "10",
        "--epsilon",
        "0.5",
    ]))
    .expect("approximate");

    std::fs::remove_file(&file).ok();
}

#[test]
fn discover_pair_and_compare() {
    let fa = temp_path("a.csv");
    let fb = temp_path("b.csv");
    let (sa, sb) = (fa.to_str().unwrap(), fb.to_str().unwrap());
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "truck",
        "--n",
        "120",
        "--seed",
        "1",
        "--out",
        sa,
    ]))
    .unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "truck",
        "--n",
        "100",
        "--seed",
        "2",
        "--out",
        sb,
    ]))
    .unwrap();

    fremo_cli::run(&argv(&["discover-pair", "--a", sa, "--b", sb, "--xi", "8"])).expect("pair");
    fremo_cli::run(&argv(&["compare", "--a", sa, "--b", sb, "--epsilon", "50"])).expect("compare");

    std::fs::remove_file(&fa).ok();
    std::fs::remove_file(&fb).ok();
}

#[test]
fn error_paths_are_reported() {
    assert!(fremo_cli::run(&argv(&[])).is_err());
    assert!(fremo_cli::run(&argv(&["frobnicate"]))
        .unwrap_err()
        .contains("unknown subcommand"));
    assert!(fremo_cli::run(&argv(&["generate", "--dataset", "mars", "--n", "10"])).is_err());
    assert!(fremo_cli::run(&argv(&[
        "discover",
        "--input",
        "/nonexistent.csv",
        "--xi",
        "5"
    ]))
    .unwrap_err()
    .contains("cannot read"));
    let file = temp_path("short.csv");
    let s = file.to_str().unwrap();
    fremo_cli::run(&argv(&[
        "generate",
        "--dataset",
        "baboon",
        "--n",
        "20",
        "--seed",
        "1",
        "--out",
        s,
    ]))
    .unwrap();
    // ξ = 0 is rejected before any search.
    assert!(fremo_cli::run(&argv(&["discover", "--input", s, "--xi", "0"])).is_err());
    assert!(fremo_cli::run(&argv(&["experiment", "nope"])).is_err());
    assert!(fremo_cli::run(&argv(&["experiment"])).is_err());
    std::fs::remove_file(&file).ok();
}

#[test]
fn help_succeeds() {
    assert!(fremo_cli::run(&argv(&["help"])).is_ok());
    assert!(fremo_cli::run(&argv(&["--help"])).is_ok());
}
