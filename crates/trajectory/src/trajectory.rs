//! The trajectory data model.
//!
//! Definition 1 of the paper: *"A spatial trajectory `S = ⟨…, s_i, …⟩` is a
//! sequence of points. … Let `T(S) = ⟨…, t_i, …⟩` be a sequence of ascending
//! timestamps, where `t_i` is the timestamp of location `s_i` in `S`. The
//! timestamps may be non-uniform."*
//!
//! [`Trajectory`] stores the point sequence plus optional timestamps;
//! [`SubTrajectory`] is the paper's `S_{i,ie} = S[i..ie]` — a borrowed,
//! inclusive-range view.

use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::point::{GeoPoint, GroundDistance};

/// An ordered sequence of spatial points with optional strictly-ascending
/// timestamps (in seconds; any epoch).
///
/// The type parameter defaults to [`GeoPoint`] (the paper's setting) but any
/// [`GroundDistance`] point works.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory<P = GeoPoint> {
    points: Vec<P>,
    /// `None` means "timestamps unknown"; algorithms that only need the
    /// sequence order (all of the motif machinery) work either way.
    timestamps: Option<Vec<f64>>,
}

impl<P> Trajectory<P> {
    /// Creates a trajectory from points without timestamps.
    #[must_use]
    pub fn new(points: Vec<P>) -> Self {
        Trajectory {
            points,
            timestamps: None,
        }
    }

    /// Creates a trajectory with timestamps, validating that the counts match
    /// and the timestamps are strictly ascending and finite.
    ///
    /// # Errors
    ///
    /// [`Error::TimestampLengthMismatch`] or
    /// [`Error::NonAscendingTimestamps`].
    pub fn with_timestamps(points: Vec<P>, timestamps: Vec<f64>) -> Result<Self> {
        if points.len() != timestamps.len() {
            return Err(Error::TimestampLengthMismatch {
                points: points.len(),
                timestamps: timestamps.len(),
            });
        }
        for (idx, w) in timestamps.windows(2).enumerate() {
            if w[1] <= w[0] || w[1].is_nan() {
                return Err(Error::NonAscendingTimestamps { index: idx + 1 });
            }
        }
        if let Some(first) = timestamps.first() {
            if !first.is_finite() {
                return Err(Error::NonAscendingTimestamps { index: 0 });
            }
        }
        Ok(Trajectory {
            points,
            timestamps: Some(timestamps),
        })
    }

    /// Number of points `n = |S|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point sequence.
    #[inline]
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The timestamp sequence, if known.
    #[inline]
    #[must_use]
    pub fn timestamps(&self) -> Option<&[f64]> {
        self.timestamps.as_deref()
    }

    /// The `i`-th point, or `None` when out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&P> {
        self.points.get(i)
    }

    /// Borrowed view of the subtrajectory `S_{start,end} = S[start..=end]`
    /// (inclusive on both sides, matching the paper's notation).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRange`] unless `start <= end < len`.
    pub fn sub(&self, start: usize, end: usize) -> Result<SubTrajectory<'_, P>> {
        if start > end || end >= self.points.len() {
            return Err(Error::InvalidRange {
                start,
                end,
                len: self.points.len(),
            });
        }
        Ok(SubTrajectory {
            trajectory: self,
            start,
            end,
        })
    }

    /// Consumes the trajectory and returns its parts.
    #[must_use]
    pub fn into_parts(self) -> (Vec<P>, Option<Vec<f64>>) {
        (self.points, self.timestamps)
    }

    /// Appends another trajectory, shifting its timestamps so they continue
    /// strictly after this trajectory's last timestamp (the paper
    /// concatenates raw trajectories "in order to build longer trajectories",
    /// Section 6.1).
    ///
    /// When either side lacks timestamps the result has none.
    pub fn concat(mut self, other: Trajectory<P>) -> Trajectory<P> {
        let (mut pts, ts) = other.into_parts();
        self.timestamps = match (self.timestamps.take(), ts) {
            (Some(mut a), Some(b)) => {
                let last = a.last().copied().unwrap_or(0.0);
                let first = b.first().copied().unwrap_or(0.0);
                // Leave a 1-second artificial gap between the stitched parts.
                let shift = last - first + 1.0;
                a.extend(b.iter().map(|t| t + shift));
                Some(a)
            }
            _ => None,
        };
        self.points.append(&mut pts);
        self
    }

    /// Keeps only every `k`-th point (1 keeps everything). Used to thin
    /// high-frequency traces; timestamps are thinned consistently.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn thin(&self, k: usize) -> Trajectory<P>
    where
        P: Clone,
    {
        assert!(k > 0, "thinning factor must be positive");
        let points = self.points.iter().step_by(k).cloned().collect();
        let timestamps = self
            .timestamps
            .as_ref()
            .map(|ts| ts.iter().copied().step_by(k).collect());
        Trajectory { points, timestamps }
    }

    /// Truncates to the first `n` points (no-op when already shorter).
    #[must_use]
    pub fn truncated(&self, n: usize) -> Trajectory<P>
    where
        P: Clone,
    {
        let n = n.min(self.points.len());
        Trajectory {
            points: self.points[..n].to_vec(),
            timestamps: self.timestamps.as_ref().map(|ts| ts[..n].to_vec()),
        }
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, P> {
        self.points.iter()
    }
}

impl<P: GroundDistance> Trajectory<P> {
    /// Ground distance `dG(i, j)` between the `i`-th and `j`-th points.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range (this is a hot inner-loop
    /// primitive; use [`Trajectory::get`] for checked access).
    #[inline]
    #[must_use]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.points[i].distance(&self.points[j])
    }

    /// Total path length: the sum of consecutive ground distances.
    #[must_use]
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }
}

impl<P> Index<usize> for Trajectory<P> {
    type Output = P;

    #[inline]
    fn index(&self, i: usize) -> &P {
        &self.points[i]
    }
}

impl<P> FromIterator<P> for Trajectory<P> {
    fn from_iter<I: IntoIterator<Item = P>>(iter: I) -> Self {
        Trajectory::new(iter.into_iter().collect())
    }
}

impl<'a, P> IntoIterator for &'a Trajectory<P> {
    type Item = &'a P;
    type IntoIter = std::slice::Iter<'a, P>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// The paper's `S_{i,ie}`: a borrowed inclusive-range view of a trajectory.
#[derive(Debug, Clone, Copy)]
pub struct SubTrajectory<'a, P = GeoPoint> {
    trajectory: &'a Trajectory<P>,
    start: usize,
    end: usize,
}

impl<'a, P> SubTrajectory<'a, P> {
    /// Start index `i` into the parent trajectory.
    #[inline]
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// End index `ie` (inclusive) into the parent trajectory.
    #[inline]
    #[must_use]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of points, `ie - i + 1`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// A subtrajectory always has at least one point.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying points as a slice.
    #[inline]
    #[must_use]
    pub fn points(&self) -> &'a [P] {
        &self.trajectory.points()[self.start..=self.end]
    }

    /// Timestamps covering this view, if the parent has them.
    #[must_use]
    pub fn timestamps(&self) -> Option<&'a [f64]> {
        self.trajectory
            .timestamps()
            .map(|ts| &ts[self.start..=self.end])
    }

    /// The parent trajectory.
    #[inline]
    #[must_use]
    pub fn parent(&self) -> &'a Trajectory<P> {
        self.trajectory
    }

    /// Materializes the view as an owned trajectory.
    #[must_use]
    pub fn to_trajectory(&self) -> Trajectory<P>
    where
        P: Clone,
    {
        Trajectory {
            points: self.points().to_vec(),
            timestamps: self.timestamps().map(<[f64]>::to_vec),
        }
    }

    /// Whether this view's timestamp interval overlaps another view from the
    /// same parent (Problem 1 requires motif halves not to overlap).
    #[must_use]
    pub fn overlaps(&self, other: &SubTrajectory<'_, P>) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Incremental builder validating timestamps as they are appended.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryBuilder<P = GeoPoint> {
    points: Vec<P>,
    timestamps: Vec<f64>,
}

impl<P> TrajectoryBuilder<P> {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        TrajectoryBuilder {
            points: Vec::new(),
            timestamps: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `n` points.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        TrajectoryBuilder {
            points: Vec::with_capacity(n),
            timestamps: Vec::with_capacity(n),
        }
    }

    /// Number of points appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point with its timestamp.
    ///
    /// # Errors
    ///
    /// [`Error::NonAscendingTimestamps`] when `t` does not strictly exceed
    /// the previous timestamp (or is non-finite).
    pub fn push(&mut self, point: P, t: f64) -> Result<()> {
        if !t.is_finite() || self.timestamps.last().is_some_and(|&prev| t <= prev) {
            return Err(Error::NonAscendingTimestamps {
                index: self.timestamps.len(),
            });
        }
        self.points.push(point);
        self.timestamps.push(t);
        Ok(())
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Trajectory<P> {
        Trajectory {
            points: self.points,
            timestamps: Some(self.timestamps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::EuclideanPoint;

    fn planar(coords: &[(f64, f64)]) -> Trajectory<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn construction_and_access() {
        let t = planar(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t[1], EuclideanPoint::new(1.0, 0.0));
        assert_eq!(t.get(2), Some(&EuclideanPoint::new(2.0, 0.0)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.timestamps(), None);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn timestamps_must_ascend_strictly() {
        let pts = vec![EuclideanPoint::new(0.0, 0.0); 3];
        assert!(Trajectory::with_timestamps(pts.clone(), vec![0.0, 1.0, 2.0]).is_ok());
        assert!(matches!(
            Trajectory::with_timestamps(pts.clone(), vec![0.0, 1.0, 1.0]),
            Err(Error::NonAscendingTimestamps { index: 2 })
        ));
        assert!(matches!(
            Trajectory::with_timestamps(pts.clone(), vec![0.0, 1.0]),
            Err(Error::TimestampLengthMismatch {
                points: 3,
                timestamps: 2
            })
        ));
        assert!(Trajectory::with_timestamps(pts, vec![f64::NAN, 1.0, 2.0]).is_err());
    }

    #[test]
    fn subtrajectory_views() {
        let t = planar(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let s = t.sub(1, 2).unwrap();
        assert_eq!(s.start(), 1);
        assert_eq!(s.end(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points(), &t.points()[1..=2]);
        assert!(t.sub(2, 1).is_err());
        assert!(t.sub(0, 4).is_err());
        // Single-point subtrajectory is allowed (dF(i,i,j,j) = dG(i,j)).
        assert_eq!(t.sub(3, 3).unwrap().len(), 1);
    }

    #[test]
    fn subtrajectory_overlap_detection() {
        let t = planar(&[(0.0, 0.0); 10]);
        let a = t.sub(0, 3).unwrap();
        let b = t.sub(3, 6).unwrap();
        let c = t.sub(4, 9).unwrap();
        assert!(a.overlaps(&b)); // share index 3
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn concat_shifts_timestamps() {
        let a = Trajectory::with_timestamps(
            vec![EuclideanPoint::new(0.0, 0.0), EuclideanPoint::new(1.0, 0.0)],
            vec![10.0, 20.0],
        )
        .unwrap();
        let b = Trajectory::with_timestamps(
            vec![EuclideanPoint::new(2.0, 0.0), EuclideanPoint::new(3.0, 0.0)],
            vec![5.0, 6.0],
        )
        .unwrap();
        let c = a.concat(b);
        assert_eq!(c.len(), 4);
        let ts = c.timestamps().unwrap();
        assert_eq!(ts, &[10.0, 20.0, 21.0, 22.0]);
        // Still strictly ascending end-to-end.
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn concat_without_timestamps_drops_them() {
        let a = planar(&[(0.0, 0.0)]);
        let b =
            Trajectory::with_timestamps(vec![EuclideanPoint::new(1.0, 0.0)], vec![0.0]).unwrap();
        assert!(a.concat(b).timestamps().is_none());
    }

    #[test]
    fn thin_and_truncate() {
        let t = planar(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let thinned = t.thin(2);
        assert_eq!(thinned.len(), 3);
        assert_eq!(thinned[1], EuclideanPoint::new(2.0, 0.0));
        let trunc = t.truncated(2);
        assert_eq!(trunc.len(), 2);
        assert_eq!(t.truncated(99).len(), 5);
    }

    #[test]
    fn path_length_and_dist() {
        let t = planar(&[(0.0, 0.0), (3.0, 4.0), (3.0, 5.0)]);
        assert_eq!(t.dist(0, 1), 5.0);
        assert_eq!(t.path_length(), 6.0);
    }

    #[test]
    fn builder_validates() {
        let mut b = TrajectoryBuilder::with_capacity(4);
        assert!(b.is_empty());
        b.push(EuclideanPoint::new(0.0, 0.0), 0.0).unwrap();
        b.push(EuclideanPoint::new(1.0, 0.0), 1.5).unwrap();
        assert!(b.push(EuclideanPoint::new(2.0, 0.0), 1.5).is_err());
        assert!(b
            .push(EuclideanPoint::new(2.0, 0.0), f64::INFINITY)
            .is_err());
        b.push(EuclideanPoint::new(2.0, 0.0), 2.0).unwrap();
        assert_eq!(b.len(), 3);
        let t = b.build();
        assert_eq!(t.len(), 3);
        assert_eq!(t.timestamps().unwrap().len(), 3);
    }

    #[test]
    fn to_trajectory_materializes_view() {
        let t = Trajectory::with_timestamps(
            vec![
                EuclideanPoint::new(0.0, 0.0),
                EuclideanPoint::new(1.0, 0.0),
                EuclideanPoint::new(2.0, 0.0),
            ],
            vec![0.0, 1.0, 2.0],
        )
        .unwrap();
        let owned = t.sub(1, 2).unwrap().to_trajectory();
        assert_eq!(owned.len(), 2);
        assert_eq!(owned.timestamps().unwrap(), &[1.0, 2.0]);
    }
}
