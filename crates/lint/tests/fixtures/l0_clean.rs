// L0 clean fixture: one well-formed, reasoned, and *used* suppression.

pub fn head(xs: &[u64]) -> u64 {
    // fremo-lint: allow(L3) -- callers uphold the non-empty contract.
    *xs.first().expect("non-empty by contract")
}
