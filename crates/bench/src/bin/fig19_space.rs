//! Regenerates Figure 19 (space consumption vs n).
use fremo_bench::experiments::{fig19_space, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig19_space::run(scale);
    print_all("Figure 19 (space consumption vs n)", &tables);
}
