//! Motif discovery *between* two trajectories — the Problem 1 variant.
//!
//! Two different concrete trucks serve the same construction sites from
//! the same depot on different days. The cross-trajectory motif finds the
//! shared route segment, useful for fleet-route consolidation (the
//! paper's traffic-analysis motivation).
//!
//! ```bash
//! cargo run --release --example cross_trajectory
//! ```

use fremo::prelude::*;
use fremo::trajectory::gen;

fn main() {
    // Same seed family ⇒ same depot/site layout; different trips & noise.
    let truck_a = gen::truck_like(1200, 500);
    let truck_b = gen::truck_like(1200, 500 ^ 1);
    println!(
        "truck A: {} samples / {:.1} km; truck B: {} samples / {:.1} km",
        truck_a.len(),
        truck_a.path_length() / 1000.0,
        truck_b.len(),
        truck_b.path_length() / 1000.0
    );

    let config = MotifConfig::new(40);
    let (motif, stats) = Gtm.discover_between_with_stats(&truck_a, &truck_b, &config);
    let motif = motif.expect("inputs long enough for ξ = 40");

    println!("shared route segment (DFD = {:.1} m):", motif.distance);
    println!(
        "  truck A [{}..={}] ({} samples)",
        motif.first.0,
        motif.first.1,
        motif.first_len()
    );
    println!(
        "  truck B [{}..={}] ({} samples)",
        motif.second.0,
        motif.second.1,
        motif.second_len()
    );
    println!(
        "  search: {:.3} s, {:.1}% of candidate pairs pruned",
        stats.total_seconds,
        stats.pruned_fraction() * 100.0
    );

    // Cross-check with BTM (both are exact).
    let check = Btm
        .discover_between(&truck_a, &truck_b, &config)
        .expect("motif");
    assert!(
        (check.distance - motif.distance).abs() < 1e-9,
        "exact algorithms must agree"
    );
    println!(
        "  verified: BTM finds the same DFD ({:.1} m)",
        check.distance
    );
}
