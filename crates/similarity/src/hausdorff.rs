//! Hausdorff distance between point sets.
//!
//! Not part of the paper's Table 1 but a classical geometric baseline worth
//! having next to DFD: it ignores ordering entirely (it treats the
//! trajectories as point *sets*), so it lower-bounds DFD — a fact the test
//! suite checks and the motif property tests reuse.

use fremo_trajectory::GroundDistance;

use crate::measure::SimilarityMeasure;

/// Directed Hausdorff distance: `max_{p∈a} min_{q∈b} d(p, q)`.
///
/// Returns `0` when `a` is empty and `+∞` when `b` alone is empty.
#[must_use]
pub fn directed_hausdorff<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    let mut worst = 0.0_f64;
    for p in a {
        let mut best = f64::INFINITY;
        for q in b {
            let d = p.distance(q);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best > worst {
            worst = best;
        }
    }
    worst
}

/// Symmetric Hausdorff distance: the max of the two directed distances.
///
/// Conventions: both empty → `0`, exactly one empty → `+∞`.
#[must_use]
pub fn hausdorff<P: GroundDistance>(a: &[P], b: &[P]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

/// [`SimilarityMeasure`] wrapper for the symmetric Hausdorff distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hausdorff;

impl<P: GroundDistance> SimilarityMeasure<P> for Hausdorff {
    fn distance(&self, a: &[P], b: &[P]) -> f64 {
        hausdorff(a, b)
    }

    fn name(&self) -> &'static str {
        "Hausdorff"
    }

    fn robust_to_sampling_rate(&self) -> bool {
        true
    }

    fn supports_local_time_shifting(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frechet::dfd;
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    #[test]
    fn directed_asymmetry() {
        // b ⊂ neighbourhood of a, but a has an outlier far from b.
        let a = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(0.0, 0.0)]);
        assert_eq!(directed_hausdorff(&b, &a), 0.0);
        assert_eq!(directed_hausdorff(&a, &b), 10.0);
        assert_eq!(hausdorff(&a, &b), 10.0);
    }

    #[test]
    fn parallel_lines() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(hausdorff(&a, &b), 1.0);
    }

    #[test]
    fn hausdorff_lower_bounds_dfd() {
        // DFD respects ordering, Hausdorff doesn't, so Hausdorff ≤ DFD.
        let cases = [
            (
                pts(&[(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]),
                pts(&[(2.0, 0.1), (1.0, 2.2), (0.0, 0.3)]),
            ),
            (
                pts(&[(0.0, 0.0), (5.0, 0.0)]),
                pts(&[(5.0, 0.0), (0.0, 0.0)]),
            ),
            (
                pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
                pts(&[(0.0, 1.0), (2.0, 1.0)]),
            ),
        ];
        for (a, b) in cases {
            assert!(hausdorff(&a, &b) <= dfd(&a, &b) + 1e-12);
        }
        // Reversal makes the gap strict.
        let fwd = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let rev = pts(&[(2.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        assert_eq!(hausdorff(&fwd, &rev), 0.0);
        assert_eq!(dfd(&fwd, &rev), 2.0);
    }
}
