//! Parallel BTM: multi-threaded processing of the sorted candidate-subset
//! list.
//!
//! The paper evaluates single-threaded (Section 6.1); this module is an
//! *extension*. The sorted list of Algorithm 2 parallelizes naturally:
//! workers claim entries in sorted order through an atomic cursor, expand
//! them against a snapshot of the shared best-so-far, and publish
//! improvements. Pruning stays safe because `bsf` only decreases — a
//! snapshot can only prune *less* than the final value would, and a worker
//! observing a prunable entry may stop outright (the list is sorted, so
//! every entry after it has an equal or larger bound).
//!
//! Exactness therefore holds regardless of interleaving; only the amount
//! of wasted work varies. Speedups are workload-dependent: with >99% of
//! subsets pruned the serial fraction (precompute + sort) dominates.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};
use parking_lot::Mutex;

use crate::algorithm::MotifDiscovery;
use crate::bounds::BoundTables;
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::dp::{expand_subset, Bsf, DpBuffers};
use crate::result::Motif;
use crate::search::{build_entries, list_bytes};
use crate::stats::SearchStats;

/// BTM with parallel candidate-subset expansion.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBtm {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
}

impl ParallelBtm {
    /// Creates the parallel searcher.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ParallelBtm { threads }
    }

    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }

    fn run<D: DistanceSource + Sync>(
        &self,
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        started: Instant,
    ) -> (Option<Motif>, SearchStats) {
        let xi = config.min_length;
        let sel = config.bounds;

        let tables = BoundTables::build(src, domain, xi, sel);
        let mut entries = build_entries(src, &tables, sel, domain.subsets(xi));
        entries.sort_unstable_by(|a, b| a.lb.total_cmp(&b.lb));

        let mut stats = SearchStats {
            bytes_distance_matrix: src.bytes(),
            bytes_bounds: tables.bytes(),
            bytes_lists: list_bytes(&entries),
            subsets_total: entries.len() as u64,
            pairs_total: domain.pairs_count(xi),
            precompute_seconds: started.elapsed().as_secs_f64(),
            ..SearchStats::default()
        };

        let cursor = AtomicUsize::new(0);
        let shared: Mutex<Bsf> = Mutex::new(Bsf::new());
        let expanded: Vec<AtomicBool> = entries.iter().map(|_| AtomicBool::new(false)).collect();
        let end_tables = if sel.end_cross { Some(&tables) } else { None };

        let workers = self.worker_count();
        let worker_stats: Vec<Mutex<SearchStats>> = (0..workers)
            .map(|_| Mutex::new(SearchStats::default()))
            .collect();

        crossbeam::scope(|scope| {
            for w in 0..workers {
                let entries = &entries;
                let cursor = &cursor;
                let shared = &shared;
                let expanded = &expanded;
                let worker_stats = &worker_stats;
                scope.spawn(move |_| {
                    let mut buf = DpBuffers::with_width(domain.len_b());
                    let mut local_stats = SearchStats::default();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = entries.get(idx) else { break };
                        // Snapshot the shared best-so-far.
                        let mut local_bsf = shared.lock().clone();
                        if local_bsf.prunable(entry.lb) {
                            // Sorted list: everything after is prunable too.
                            break;
                        }
                        expanded[idx].store(true, Ordering::Relaxed);
                        let (i, j) = (entry.i as usize, entry.j as usize);
                        local_stats.subsets_expanded += 1;
                        local_stats.pairs_exact += domain.pairs_in_subset(i, j, xi);
                        expand_subset(
                            src,
                            domain,
                            xi,
                            i,
                            j,
                            end_tables,
                            true,
                            &mut local_bsf,
                            &mut local_stats,
                            &mut buf,
                        );
                        // Publish improvements.
                        if let Some(m) = local_bsf.motif {
                            let mut global = shared.lock();
                            if global.offer(m.distance, m) {
                                local_stats.bsf_updates += 1;
                            }
                        }
                    }
                    *worker_stats[w].lock() = local_stats;
                });
            }
        })
        .expect("worker threads do not panic");

        for ws in &worker_stats {
            let s = ws.lock();
            stats.subsets_expanded += s.subsets_expanded;
            stats.pairs_exact += s.pairs_exact;
            stats.dp_cells += s.dp_cells;
            stats.rows_abandoned += s.rows_abandoned;
            stats.cells_skipped_end_cross += s.cells_skipped_end_cross;
            stats.bsf_updates += s.bsf_updates;
        }

        // Attribute the pruned remainder against the final bsf.
        let bsf = shared.into_inner();
        for (idx, e) in entries.iter().enumerate() {
            if expanded[idx].load(Ordering::Relaxed) {
                continue;
            }
            let (i, j) = (e.i as usize, e.j as usize);
            let comps = tables.subset_bounds(src, sel, i, j);
            let pairs = domain.pairs_in_subset(i, j, xi);
            let kind = comps
                .attribute(|v| bsf.prunable(v))
                .unwrap_or(crate::config::BoundKind::Band);
            stats.record_subset_pruned(kind, pairs);
            stats.subsets_skipped_sorted += 1;
        }

        stats.total_seconds = started.elapsed().as_secs_f64();
        (bsf.motif, stats)
    }
}

impl Default for ParallelBtm {
    fn default() -> Self {
        ParallelBtm::new(0)
    }
}

impl<P: GroundDistance + Sync> MotifDiscovery<P> for ParallelBtm {
    fn name(&self) -> &'static str {
        "BTM(parallel)"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        self.run(&src, domain, config, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        self.run(&src, domain, config, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btm::Btm;
    use fremo_trajectory::gen::planar;

    #[test]
    fn agrees_with_serial_btm() {
        for seed in 0..4 {
            let t = planar::random_walk(90, 0.4, seed);
            let cfg = MotifConfig::new(5);
            let serial = Btm.discover(&t, &cfg).unwrap();
            for threads in [1, 2, 4] {
                let par = ParallelBtm::new(threads).discover(&t, &cfg).unwrap();
                assert!(
                    (par.distance - serial.distance).abs() < 1e-12,
                    "seed {seed} threads {threads}: {} vs {}",
                    par.distance,
                    serial.distance
                );
            }
        }
    }

    #[test]
    fn agrees_between_trajectories() {
        let a = planar::random_walk(60, 0.4, 9);
        let b = planar::random_walk(50, 0.4, 10);
        let cfg = MotifConfig::new(4);
        let serial = Btm.discover_between(&a, &b, &cfg).unwrap();
        let par = ParallelBtm::default()
            .discover_between(&a, &b, &cfg)
            .unwrap();
        assert!((par.distance - serial.distance).abs() < 1e-12);
    }

    #[test]
    fn accounting_remains_complete() {
        let t = planar::random_walk(80, 0.4, 12);
        let cfg = MotifConfig::new(5);
        let (_, stats) = ParallelBtm::new(3).discover_with_stats(&t, &cfg);
        let accounted = stats.pairs_pruned_cell
            + stats.pairs_pruned_cross
            + stats.pairs_pruned_band
            + stats.pairs_exact;
        assert_eq!(accounted, stats.pairs_total);
        assert_eq!(
            stats.subsets_expanded + stats.subsets_skipped_sorted,
            stats.subsets_total
        );
    }
}
