//! `BruteDP` (Algorithm 1): the `O(n⁴)` baseline.
//!
//! Enumerates every candidate subset `CS_{i,j}` and shares the DFD
//! computation of all candidates with the same start pair via dynamic
//! programming, with all pair ground distances precomputed in `dG[·][·]`.
//! No pruning of any kind (the paper's baseline), which is what the
//! advanced solutions are measured against in Figure 18.

use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};

use crate::algorithm::MotifDiscovery;
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::dp::{expand_subset, Bsf, DpBuffers};
use crate::result::Motif;
use crate::search::SearchBudget;
use crate::stats::SearchStats;

/// The baseline solution of Algorithm 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteDp;

impl BruteDp {
    fn run<D: DistanceSource>(
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        precompute_seconds: f64,
        started: Instant,
    ) -> (Option<Motif>, SearchStats) {
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = Self::run_prepared(
            src,
            domain,
            config,
            precompute_seconds,
            started,
            &mut buf,
            None,
        );
        (motif, stats)
    }

    /// Algorithm 1 over an external DP buffer — the entry point used by
    /// [`crate::engine::Engine`]. The third return value is `false` when
    /// `budget` stopped the exhaustive scan early.
    pub(crate) fn run_prepared<D: DistanceSource>(
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        precompute_seconds: f64,
        started: Instant,
        buf: &mut DpBuffers,
        budget: Option<&SearchBudget>,
    ) -> (Option<Motif>, SearchStats, bool) {
        let xi = config.min_length;
        let mut stats = SearchStats {
            precompute_seconds,
            bytes_distance_matrix: src.bytes(),
            subsets_total: domain.subsets_count(xi),
            pairs_total: domain.pairs_count(xi),
            ..SearchStats::default()
        };
        let mut bsf = Bsf::new();

        let mut completed = true;
        for (i, j) in domain.subsets(xi) {
            if budget.is_some_and(|b| b.exceeded(stats.subsets_expanded)) {
                completed = false;
                break;
            }
            stats.subsets_expanded += 1;
            stats.pairs_exact += domain.pairs_in_subset(i, j, xi);
            expand_subset(
                src, domain, xi, i, j, None, false, &mut bsf, &mut stats, buf,
            );
        }
        if !completed {
            // Keep the accounting honest in O(1): unexamined subsets are
            // budget-skipped, not pruned (BruteDP prunes nothing).
            stats.subsets_skipped_budget = stats.subsets_total - stats.subsets_expanded;
            stats.pairs_skipped_budget += stats.pairs_total.saturating_sub(stats.pairs_accounted());
        }

        // Recorded after the scan: a shared engine buffer grows lazily.
        stats.bytes_dp = buf.bytes_for_width(domain.len_b());
        stats.total_seconds = started.elapsed().as_secs_f64();
        (bsf.motif, stats, completed)
    }
}

impl<P: GroundDistance> MotifDiscovery<P> for BruteDp {
    fn name(&self) -> &'static str {
        "BruteDP"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        let pre = started.elapsed().as_secs_f64();
        Self::run(&src, domain, config, pre, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        let pre = started.elapsed().as_secs_f64();
        Self::run(&src, domain, config, pre, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_similarity::dfd;
    use fremo_trajectory::gen::planar;
    use fremo_trajectory::EuclideanPoint;

    /// Independent `O(n⁶)` reference built on the standalone DFD.
    fn naive_within(
        points: &[EuclideanPoint],
        xi: usize,
    ) -> Option<(f64, (usize, usize, usize, usize))> {
        let n = points.len();
        let mut best: Option<(f64, (usize, usize, usize, usize))> = None;
        for i in 0..n {
            for ie in (i + xi + 1)..n {
                for j in (ie + 1)..n {
                    for je in (j + xi + 1)..n {
                        let d = dfd(&points[i..=ie], &points[j..=je]);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, (i, ie, j, je)));
                        }
                    }
                }
            }
        }
        best
    }

    #[test]
    fn matches_independent_naive_reference() {
        for seed in 0..4 {
            let t = planar::random_walk(16, 0.4, seed);
            let cfg = MotifConfig::new(2);
            let (motif, stats) = BruteDp.discover_with_stats(&t, &cfg);
            let naive = naive_within(t.points(), 2);
            match naive {
                None => assert!(motif.is_none()),
                Some((nd, _)) => {
                    let m = motif.expect("BruteDP found nothing");
                    assert!(
                        (m.distance - nd).abs() < 1e-12,
                        "seed {seed}: brute={} naive={nd}",
                        m.distance
                    );
                    assert!(m.is_valid_within(t.len(), 2));
                }
            }
            assert_eq!(stats.pairs_exact, stats.pairs_total);
        }
    }

    #[test]
    fn too_short_returns_none() {
        let t = planar::line((0.0, 0.0), (1.0, 0.0), 5);
        let cfg = MotifConfig::new(1); // needs n ≥ 6
        let (motif, stats) = BruteDp.discover_with_stats(&t, &cfg);
        assert!(motif.is_none());
        assert_eq!(stats.subsets_total, 0);
    }

    #[test]
    fn between_matches_naive() {
        let a = planar::random_walk(12, 0.5, 7);
        let b = planar::random_walk(10, 0.5, 8);
        let xi = 2;
        let cfg = MotifConfig::new(xi);
        let (motif, _) = BruteDp.discover_between_with_stats(&a, &b, &cfg);
        let mut best = f64::INFINITY;
        for i in 0..a.len() {
            for ie in (i + xi + 1)..a.len() {
                for j in 0..b.len() {
                    for je in (j + xi + 1)..b.len() {
                        best = best.min(dfd(&a.points()[i..=ie], &b.points()[j..=je]));
                    }
                }
            }
        }
        let m = motif.expect("found");
        assert!((m.distance - best).abs() < 1e-12);
        assert!(m.is_valid_between(a.len(), b.len(), xi));
    }

    #[test]
    fn reports_resource_usage() {
        let t = planar::random_walk(40, 0.3, 3);
        let cfg = MotifConfig::new(3);
        let (_, stats) = BruteDp.discover_with_stats(&t, &cfg);
        assert!(stats.bytes_distance_matrix >= 40 * 40 * 8);
        assert!(stats.dp_cells > 0);
        assert!(stats.total_seconds >= stats.precompute_seconds);
    }
}
