//! End-to-end SIMD ≡ scalar differential suite.
//!
//! Runs every algorithm (BruteDP, BTM, GTM, GTM*, and approx) through
//! the engine twice — once under the active SIMD kernel, once with the
//! scalar reference forced — over both motif scopes and worker counts
//! {1, 4}, and demands **bit-for-bit identical** motifs. This is the
//! acceptance gate for the kernel layer: if a vector path rounds even
//! one distance differently, a motif tie can break the other way and
//! this suite fails. The CI `kernels` job additionally repeats the whole
//! test binary under `FREMO_NO_SIMD=1` so the scalar end-to-end path is
//! exercised as the ambient default too.
//!
//! [`force_scalar`] is process-global, so the whole suite lives in a
//! handful of tests that serialize on one mutex.

use std::sync::Mutex;

use fremo::motif::engine::MatrixPrecision;
use fremo::prelude::*;
use fremo::similarity::{dfd_decision, dfd_linear};
use fremo::trajectory::gen::planar;
use fremo::trajectory::kernel::force_scalar;
use fremo::trajectory::Kernel;

/// Serializes every test that toggles the global scalar override.
static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

const N: usize = 72;
const XI: usize = 8;

fn algorithms() -> [AlgorithmChoice; 5] {
    [
        AlgorithmChoice::BruteDp,
        AlgorithmChoice::Btm,
        AlgorithmChoice::Gtm,
        AlgorithmChoice::GtmStar,
        AlgorithmChoice::Approx { epsilon: 0.25 },
    ]
}

fn build(
    scope_between: bool,
    algorithm: AlgorithmChoice,
    threads: usize,
) -> (Engine<fremo::trajectory::EuclideanPoint>, Query) {
    let engine = Engine::new();
    let a = engine.register(planar::random_walk(N, 0.6, 11));
    let builder = if scope_between {
        let b = engine.register(planar::random_walk(N + 9, 0.6, 13));
        Query::motif_between(a, b)
    } else {
        Query::motif(a)
    };
    let execution = if threads <= 1 {
        ExecutionMode::Serial
    } else {
        ExecutionMode::Parallel { threads }
    };
    let query = builder
        .xi(XI)
        .algorithm(algorithm)
        .execution(execution)
        .build();
    (engine, query)
}

#[test]
fn every_algorithm_is_bitwise_identical_under_simd_and_scalar() {
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    for scope_between in [false, true] {
        for algorithm in algorithms() {
            for threads in [1usize, 4] {
                let (engine, query) = build(scope_between, algorithm, threads);

                force_scalar(true);
                let reference = engine.execute(&query).expect("scalar run succeeds");
                engine.clear_cache();
                force_scalar(false);
                let active = engine.execute(&query).expect("active run succeeds");
                force_scalar(false);

                let label = format!("{algorithm:?} between={scope_between} threads={threads}");
                assert_eq!(reference.stats.kernel, "scalar", "{label}");
                assert_eq!(active.stats.kernel, Kernel::active().name(), "{label}");
                let (r, a) = (reference.motif(), active.motif());
                match (r, a) {
                    (Some(r), Some(a)) => {
                        assert_eq!(
                            r.distance.to_bits(),
                            a.distance.to_bits(),
                            "distance bits diverged: {label}"
                        );
                        assert_eq!(
                            (r.first, r.second),
                            (a.first, a.second),
                            "motif spans diverged: {label}"
                        );
                    }
                    (None, None) => {}
                    other => panic!("one path found a motif, the other none: {label}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn dfd_kernels_are_bitwise_identical_under_simd_and_scalar() {
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    let a = planar::random_walk(150, 0.4, 5);
    let b = planar::random_walk(133, 0.4, 6);
    force_scalar(true);
    let reference = dfd_linear(a.points(), b.points());
    let decision_ref: Vec<bool> = [0.5, 0.9, 1.0, 1.1]
        .iter()
        .map(|f| dfd_decision(a.points(), b.points(), reference * f))
        .collect();
    force_scalar(false);
    let active = dfd_linear(a.points(), b.points());
    let decision_active: Vec<bool> = [0.5, 0.9, 1.0, 1.1]
        .iter()
        .map(|f| dfd_decision(a.points(), b.points(), reference * f))
        .collect();
    assert_eq!(reference.to_bits(), active.to_bits());
    assert_eq!(decision_ref, decision_active);
}

#[test]
fn f32_precision_is_rejected_outside_approx_motifs() {
    let engine = Engine::new();
    let a = engine.register(planar::random_walk(N, 0.6, 11));
    let b = engine.register(planar::random_walk(N, 0.6, 13));

    // Exact motif algorithms must not see rounded distances.
    for algorithm in [
        AlgorithmChoice::BruteDp,
        AlgorithmChoice::Btm,
        AlgorithmChoice::Gtm,
        AlgorithmChoice::GtmStar,
    ] {
        let query = Query::motif(a)
            .xi(XI)
            .algorithm(algorithm)
            .matrix_precision(MatrixPrecision::F32)
            .build();
        let err = engine.execute(&query).expect_err("f32 must be rejected");
        assert!(
            matches!(err, EngineError::InvalidParameter(_)),
            "{algorithm:?}: {err:?}"
        );
    }

    // Non-motif workloads reject it outright.
    for query in [
        Query::top_k(a, 2)
            .xi(XI)
            .matrix_precision(MatrixPrecision::F32)
            .build(),
        Query::measures(a, b, 1.0)
            .matrix_precision(MatrixPrecision::F32)
            .build(),
    ] {
        let err = engine.execute(&query).expect_err("f32 must be rejected");
        assert!(matches!(err, EngineError::InvalidParameter(_)), "{err:?}");
    }
}

#[test]
fn f32_approx_runs_and_halves_matrix_bytes() {
    let engine = Engine::new();
    let a = engine.register(planar::random_walk(N, 0.6, 11));
    let exact = engine
        .execute(
            &Query::motif(a)
                .xi(XI)
                .algorithm(AlgorithmChoice::Approx { epsilon: 0.25 })
                .build(),
        )
        .expect("f64 approx run succeeds");
    engine.clear_cache();
    let narrowed = engine
        .execute(
            &Query::motif(a)
                .xi(XI)
                .algorithm(AlgorithmChoice::Approx { epsilon: 0.25 })
                .matrix_precision(MatrixPrecision::F32)
                .build(),
        )
        .expect("f32 approx run succeeds");

    let (e, n) = (
        exact.motif().expect("exact approx finds a motif"),
        narrowed.motif().expect("narrowed approx finds a motif"),
    );
    // One f32 rounding step per cell is far inside the approx regime's
    // slack: the (1+ε) guarantee still holds relative to the exact
    // optimum, so the found distance stays within a relative 2^-24 of a
    // legitimate f64 approx answer.
    assert!(
        (e.distance - n.distance).abs() <= e.distance * 1e-6,
        "f32 approx drifted: {e:?} vs {n:?}"
    );
    assert!(
        narrowed.stats.bytes_distance_matrix <= exact.stats.bytes_distance_matrix / 2 + 16,
        "f32 matrix did not halve bytes: {} vs {}",
        narrowed.stats.bytes_distance_matrix,
        exact.stats.bytes_distance_matrix
    );
}

/// The engine stamps the ambient kernel even for workloads that never
/// touch a Euclidean row (joins, measures), so `--json` consumers can
/// always attribute timings.
#[test]
fn stats_kernel_is_always_stamped() {
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    force_scalar(false);
    let engine = Engine::new();
    let a = engine.register(planar::random_walk(40, 0.6, 3));
    let b = engine.register(planar::random_walk(40, 0.6, 4));
    let outcome = engine
        .execute(&Query::measures(a, b, 2.0).build())
        .expect("measures run succeeds");
    assert_eq!(outcome.stats.kernel, Kernel::active().name());
    assert!(!outcome.stats.kernel.is_empty());
}
