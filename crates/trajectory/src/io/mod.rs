//! Dataset readers and writers.
//!
//! The paper evaluates on GeoLife (Microsoft's PLT files), Truck and
//! Wild-Baboon (CSV-style exports). [`plt`] parses the GeoLife PLT format so
//! real data can be dropped into the benchmark harness; [`csv`] covers
//! simple delimited lat/lon(/time) files such as the Truck and Movebank
//! exports, plus a writer for round-tripping synthetic workloads.

pub mod csv;
pub mod plt;

pub use csv::{read_csv, read_csv_euclidean, write_csv};
pub use plt::read_plt;
