//! # fremo-core
//!
//! Trajectory motif discovery with the discrete Fréchet distance — a
//! faithful implementation of Tang, Yiu, Mouratidis & Wang, *"Efficient
//! Motif Discovery in Spatial Trajectories Using Discrete Fréchet
//! Distance"*, EDBT 2017.
//!
//! **Problem 1.** Given a trajectory `S` and a minimum motif length `ξ`,
//! return the pair of non-overlapping subtrajectories
//! `(S[i..=ie], S[j..=je])`, `i < ie < j < je`, `ie > i+ξ`, `je > j+ξ`,
//! with the smallest discrete Fréchet distance. A variant finds the most
//! similar subtrajectory pair *between two* trajectories.
//!
//! ## The engine (start here)
//!
//! The [`engine::Engine`] is the session-oriented entry point: register
//! trajectories once, then run motif, top-k, join, cluster, and measure
//! queries against the corpus through one typed [`engine::Query`] API.
//! The engine caches distance matrices and bound tables per trajectory —
//! repeated queries skip the `O(n²)` precomputation — and
//! [`engine::AlgorithmChoice::Auto`] picks the right algorithm from `n`
//! and `ξ` using the paper's Section 6 crossovers.
//!
//! ```
//! use fremo_core::engine::{Engine, Query};
//! use fremo_trajectory::gen::planar;
//!
//! let mut engine = Engine::new();
//! let id = engine.register(planar::random_walk(200, 0.4, 7));
//! let outcome = engine.execute(&Query::motif(id).xi(10).build()).unwrap();
//! let motif = outcome.motif().expect("motif exists");
//! assert!(motif.is_valid_within(200, 10));
//! ```
//!
//! ## The expert path: algorithms as values
//!
//! Underneath, four exact algorithms implement [`MotifDiscovery`] and can
//! be invoked directly when you need full control (custom distance
//! sources, no corpus, no caching):
//!
//! | algorithm  | paper        | time           | space               |
//! |------------|--------------|----------------|---------------------|
//! | [`BruteDp`]| Algorithm 1  | `O(n⁴)`        | `O(n²)`             |
//! | [`Btm`]    | Algorithm 2  | `O(n⁴)` worst  | `O(n²)`             |
//! | [`Gtm`]    | Algorithm 3  | `O(n⁴)` worst  | `O(n²)`             |
//! | [`GtmStar`]| Section 5.5  | `O(n⁴)` worst  | `O(max{(n/τ)², n})` |
//!
//! In practice BTM beats BruteDP by ~2 orders of magnitude and GTM by ~3
//! (paper Section 6; reproduced by `fremo-bench`).
//!
//! ```
//! use fremo_core::{Gtm, MotifConfig, MotifDiscovery};
//! use fremo_trajectory::gen::planar;
//!
//! let trajectory = planar::random_walk(200, 0.4, 7);
//! let config = MotifConfig::new(10);
//! let motif = Gtm.discover(&trajectory, &config).expect("motif exists");
//! assert!(motif.is_valid_within(trajectory.len(), 10));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod algorithm;
pub mod approx;
pub mod bounds;
mod brute;
mod btm;
pub mod cluster;
pub mod config;
pub mod domain;
pub mod dp;
pub mod engine;
pub mod group;
mod gtm;
mod gtm_star;
pub mod join;
pub mod parallel;
pub mod pool;
pub mod result;
pub mod search;
pub mod stats;
pub mod topk;

pub use algorithm::MotifDiscovery;
pub use approx::{ApproxBtm, ApproxGtm};
pub use brute::BruteDp;
pub use btm::Btm;
pub use cluster::{
    cluster_subtrajectories, cluster_subtrajectories_parallel, ClusterConfig, SubtrajectoryCluster,
};
pub use config::{BoundKind, BoundSelection, MotifConfig};
pub use domain::Domain;
pub use engine::{
    AlgorithmChoice, Engine, EngineError, EngineStats, ExecutionMode, Query, QueryBuilder,
    QueryOutcome, QueryResults, TrajId,
};
pub use gtm::Gtm;
pub use gtm_star::GtmStar;
pub use join::{
    similarity_join, similarity_join_parallel, similarity_self_join, similarity_self_join_parallel,
    JoinResult,
};
pub use parallel::ParallelBtm;
pub use result::Motif;
pub use stats::SearchStats;
pub use topk::{top_k_motifs, top_k_motifs_parallel, top_k_motifs_with_stats, ForbiddenIntervals};
