//! Search results.

/// A discovered trajectory motif: the pair of subtrajectories with the
/// smallest discrete Fréchet distance (Problem 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motif {
    /// First subtrajectory as inclusive indices `(i, ie)` into the (first)
    /// input trajectory.
    pub first: (usize, usize),
    /// Second subtrajectory as inclusive indices `(j, je)` — into the same
    /// trajectory for the single-input problem, into the second trajectory
    /// for the two-input variant.
    pub second: (usize, usize),
    /// The pair's discrete Fréchet distance in ground-distance units.
    pub distance: f64,
}

impl Motif {
    /// Number of points of the first half.
    #[must_use]
    pub const fn first_len(&self) -> usize {
        self.first.1 - self.first.0 + 1
    }

    /// Number of points of the second half.
    #[must_use]
    pub const fn second_len(&self) -> usize {
        self.second.1 - self.second.0 + 1
    }

    /// Whether this motif satisfies Problem 1's constraints for a
    /// single-trajectory search: `i < ie < j < je`, `ie > i + ξ`,
    /// `je > j + ξ`.
    #[must_use]
    pub fn is_valid_within(&self, n: usize, xi: usize) -> bool {
        let (i, ie) = self.first;
        let (j, je) = self.second;
        i < ie && ie < j && j < je && je < n && ie > i + xi && je > j + xi
    }

    /// Whether this motif satisfies the two-trajectory variant's
    /// constraints: each half a valid subtrajectory of its own input with
    /// length above `ξ`.
    #[must_use]
    pub fn is_valid_between(&self, n: usize, m: usize, xi: usize) -> bool {
        let (i, ie) = self.first;
        let (j, je) = self.second;
        i < ie && ie < n && j < je && je < m && ie > i + xi && je > j + xi
    }
}

impl std::fmt::Display for Motif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "S[{}..={}] ~ S[{}..={}] (dfd = {:.6})",
            self.first.0, self.first.1, self.second.0, self.second.1, self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        let m = Motif {
            first: (2, 10),
            second: (15, 24),
            distance: 1.5,
        };
        assert_eq!(m.first_len(), 9);
        assert_eq!(m.second_len(), 10);
    }

    #[test]
    fn within_validity() {
        let m = Motif {
            first: (0, 5),
            second: (6, 12),
            distance: 0.0,
        };
        assert!(m.is_valid_within(13, 4));
        assert!(!m.is_valid_within(13, 5)); // ie = i+5 not > i+5
        assert!(!m.is_valid_within(12, 4)); // je out of range
        let overlapping = Motif {
            first: (0, 6),
            second: (6, 12),
            distance: 0.0,
        };
        assert!(!overlapping.is_valid_within(13, 4)); // ie == j
    }

    #[test]
    fn between_validity() {
        let m = Motif {
            first: (0, 5),
            second: (0, 5),
            distance: 0.0,
        };
        assert!(m.is_valid_between(6, 6, 4));
        assert!(!m.is_valid_between(6, 5, 4));
        assert!(!m.is_valid_between(6, 6, 5));
    }

    #[test]
    fn display_is_readable() {
        let m = Motif {
            first: (1, 2),
            second: (3, 4),
            distance: 0.25,
        };
        let s = m.to_string();
        assert!(s.contains("S[1..=2]") && s.contains("S[3..=4]") && s.contains("0.25"));
    }
}
