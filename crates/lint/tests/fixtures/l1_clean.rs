// L1 clean fixture: total orders only.

pub fn sort_total(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn sort_integer_key(xs: &mut [(u32, u32)]) {
    xs.sort_unstable_by_key(|p| p.0);
}

pub fn min_by_ord(xs: &[(u32, u32)]) -> Option<&(u32, u32)> {
    xs.iter().min_by(|a, b| a.0.cmp(&b.0))
}

pub fn integer_widening_key(xs: &mut Vec<u32>) {
    // A key closure with no floats must not trip the float-key check.
    xs.sort_unstable_by_key(|p| u64::from(*p));
}
