//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Sorted vs unsorted subset order** — Algorithm 2's best-first order
//!   is what lets a small `bsf` prune early; processing in scan order keeps
//!   the bounds but loses the ordering benefit.
//! * **End-cross clamp on/off** — Algorithm 2 lines 12–13.
//! * **Grouping on/off** — GTM vs BTM on the same workload isolates the
//!   contribution of Section 5's multi-level pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use fremo_bench::{run_algorithm, Algorithm};
use fremo_core::{BoundSelection, MotifConfig};
use fremo_trajectory::gen::Dataset;

fn bench_ablations(c: &mut Criterion) {
    let t = Dataset::GeoLife.generate(500, 17);
    let xi = 30;

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // End-cross clamp.
    let with_end = MotifConfig::new(xi);
    let without_end =
        MotifConfig::new(xi).with_bounds(BoundSelection::all_relaxed().with_end_cross(false));
    group.bench_function("btm_end_cross_on", |b| {
        b.iter(|| run_algorithm(Algorithm::Btm, std::hint::black_box(&t), &with_end))
    });
    group.bench_function("btm_end_cross_off", |b| {
        b.iter(|| run_algorithm(Algorithm::Btm, std::hint::black_box(&t), &without_end))
    });

    // Bound families: none vs all (the sorted order without bounds is the
    // unsorted ablation — all bounds are −∞, so the sort is a no-op).
    let no_bounds = MotifConfig::new(xi).with_bounds(BoundSelection::none());
    group.bench_function("btm_no_bounds_unsorted", |b| {
        b.iter(|| run_algorithm(Algorithm::Btm, std::hint::black_box(&t), &no_bounds))
    });

    // Grouping contribution.
    let gtm_cfg = MotifConfig::new(xi).with_group_size(32);
    group.bench_function("gtm_grouping_on", |b| {
        b.iter(|| run_algorithm(Algorithm::Gtm, std::hint::black_box(&t), &gtm_cfg))
    });
    let gtm_tau1 = MotifConfig::new(xi).with_group_size(1);
    group.bench_function("gtm_grouping_off_tau1", |b| {
        b.iter(|| run_algorithm(Algorithm::Gtm, std::hint::black_box(&t), &gtm_tau1))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
