// L1 firing fixture: every construct below breaks float total ordering.

pub fn sort_partial(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn sort_raw_compare(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| {
        if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
}

pub fn min_with_float_key(xs: &[(u32, f64)]) -> Option<&(u32, f64)> {
    xs.iter().min_by_key(|p| p.1 as f64 as u64)
}
