//! Planted-motif workloads for ground-truth testing.
//!
//! The exact algorithms (BruteDP, BTM, GTM, GTM*) must all return a motif
//! with the same (minimal) DFD. To test that end-to-end we need workloads
//! where a very similar pair of subtrajectories *provably* exists:
//! [`planted`] embeds a noisy copy of an earlier segment into a background
//! random walk and reports where it put it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{randn, step_m};
use crate::point::GeoPoint;
use crate::trajectory::Trajectory;

/// Description of a planted pair of similar segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedMotif {
    /// Start index of the original segment.
    pub first_start: usize,
    /// Inclusive end index of the original segment.
    pub first_end: usize,
    /// Start index of the noisy copy.
    pub second_start: usize,
    /// Inclusive end index of the noisy copy.
    pub second_end: usize,
}

impl PlantedMotif {
    /// Length (in points) of each planted half.
    #[must_use]
    pub fn len(&self) -> usize {
        self.first_end - self.first_start + 1
    }

    /// Planted halves always contain at least one point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Generates a background random walk of `n` points containing a planted
/// pair of similar segments of `motif_len` points whose pointwise
/// displacement is at most `noise_m` metres, and returns the trajectory
/// together with the plant location.
///
/// The planted pair's DFD is therefore at most `noise_m` (each point of the
/// copy stays within `noise_m` of its counterpart, so the diagonal coupling
/// achieves `max ≤ noise_m`), which tests use as a certified upper bound on
/// the optimal motif value.
///
/// # Panics
///
/// Panics when `n < 4 * motif_len + 8` (not enough room to keep the halves
/// non-overlapping with background in between) or `motif_len == 0`.
#[must_use]
pub fn planted(
    n: usize,
    motif_len: usize,
    noise_m: f64,
    seed: u64,
) -> (Trajectory<GeoPoint>, PlantedMotif) {
    assert!(motif_len > 0, "motif_len must be positive");
    assert!(
        n >= 4 * motif_len + 8,
        "n={n} too small for motif_len={motif_len}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x504C54); // "PLT"

    let base_lat = 39.9042;
    let base_lon = 116.4074;

    // Background correlated random walk, in metres relative to base.
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let (mut x, mut y) = (0.0_f64, 0.0_f64);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    for _ in 0..n {
        heading += 0.25 * randn(&mut rng);
        let step = 8.0 + 2.0 * randn(&mut rng).abs();
        x += step * heading.cos();
        y += step * heading.sin();
        xs.push(x);
        ys.push(y);
    }

    // Choose non-overlapping slots: the original in the first third, the
    // copy in the last third.
    let first_start = rng.gen_range(1..(n / 3 - motif_len).max(2));
    let first_end = first_start + motif_len - 1;
    let second_start = rng.gen_range((2 * n / 3)..(n - motif_len));
    let second_end = second_start + motif_len - 1;

    // Overwrite the copy slot with a jittered, translated copy of the
    // original. A translation offset well below noise_m keeps the pair's
    // DFD ≤ noise_m while making it non-trivial.
    let shift_x = randn(&mut rng) * noise_m * 0.1;
    let shift_y = randn(&mut rng) * noise_m * 0.1;
    for k in 0..motif_len {
        // Total per-point displacement must stay ≤ noise_m: budget 3σ of
        // jitter plus the shift inside the envelope.
        let jitter_sigma = (noise_m * 0.8 - shift_x.hypot(shift_y)).max(0.0) / 3.0;
        let (jx, jy) = loop {
            let jx = randn(&mut rng) * jitter_sigma;
            let jy = randn(&mut rng) * jitter_sigma;
            let total = (shift_x + jx).hypot(shift_y + jy);
            if total <= noise_m {
                break (jx, jy);
            }
        };
        xs[second_start + k] = xs[first_start + k] + shift_x + jx;
        ys[second_start + k] = ys[first_start + k] + shift_y + jy;
    }

    // Re-stitch the walk after the copy so there is no teleport: translate
    // the tail to continue from the copy's end.
    if second_end + 1 < n {
        let dx = xs[second_end] - xs[second_end + 1] + 8.0;
        let dy = ys[second_end] - ys[second_end + 1];
        for k in (second_end + 1)..n {
            xs[k] += dx;
            ys[k] += dy;
        }
    }
    // The entry into the copy may jump; GPS traces contain such gaps anyway
    // and repairing it would move the original segment, voiding the
    // certified `noise_m` bound on the planted pair's DFD.

    let points: Vec<GeoPoint> = xs
        .iter()
        .zip(&ys)
        .map(|(&px, &py)| {
            let (lat, lon) = step_m(base_lat, base_lon, py, px);
            GeoPoint::new_unchecked(lat, lon)
        })
        .collect();
    let timestamps: Vec<f64> = (0..n).map(|i| i as f64 * 5.0).collect();
    let trajectory = Trajectory::with_timestamps(points, timestamps)
        .expect("constructed timestamps are ascending");

    (
        trajectory,
        PlantedMotif {
            first_start,
            first_end,
            second_start,
            second_end,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GroundDistance;

    #[test]
    fn plant_respects_layout_constraints() {
        let (t, m) = planted(400, 30, 5.0, 1);
        assert_eq!(t.len(), 400);
        assert_eq!(m.len(), 30);
        assert!(m.first_end < m.second_start, "halves overlap");
        assert!(m.second_end < t.len());
    }

    #[test]
    fn planted_pair_is_pointwise_close() {
        let noise = 5.0;
        let (t, m) = planted(500, 40, noise, 2);
        for k in 0..m.len() {
            let d = t[m.first_start + k].distance(&t[m.second_start + k]);
            assert!(
                d <= noise + 1e-6,
                "point {k} displaced by {d} m > {noise} m"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, ma) = planted(300, 20, 3.0, 7);
        let (b, mb) = planted(300, 20, 3.0, 7);
        assert_eq!(a.points(), b.points());
        assert_eq!(ma, mb);
        let (c, _) = planted(300, 20, 3.0, 8);
        assert_ne!(a.points(), c.points());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_insufficient_room() {
        let _ = planted(50, 20, 3.0, 1);
    }
}
