//! GeoLife PLT reader.
//!
//! The GeoLife GPS trajectory dataset \[32\] ships one PLT file per
//! trajectory: six header lines followed by one record per sample,
//!
//! ```text
//! lat,lon,0,altitude_feet,days_since_1899_12_30,date,time
//! 39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30
//! ```
//!
//! We take latitude, longitude, altitude (converted to metres) and the
//! fractional-day timestamp (converted to seconds). Records with invalid
//! coordinates (GeoLife uses lat 400 / lon -777 as error markers in places)
//! are skipped, and non-increasing timestamps are nudged forward by 1 ms so
//! Definition 1's strictly-ascending requirement holds — real GeoLife files
//! occasionally contain duplicated timestamps from logger glitches.

use std::io::BufRead;
use std::path::Path;

use crate::error::{Error, Result};
use crate::point::GeoPoint;
use crate::trajectory::Trajectory;

const HEADER_LINES: usize = 6;
const FEET_TO_M: f64 = 0.3048;
const DAY_SECONDS: f64 = 86_400.0;

/// Reads a GeoLife PLT file from disk.
///
/// # Errors
///
/// I/O failures and unrecoverable parse failures (malformed record
/// structure). Individual out-of-range fixes are skipped, not fatal.
pub fn read_plt(path: &Path) -> Result<Trajectory<GeoPoint>> {
    let file = std::fs::File::open(path)?;
    read_plt_from(std::io::BufReader::new(file))
}

/// Reads PLT-formatted data from any buffered reader (exposed for tests and
/// in-memory data).
///
/// # Errors
///
/// See [`read_plt`].
pub fn read_plt_from<R: BufRead>(reader: R) -> Result<Trajectory<GeoPoint>> {
    let mut points = Vec::new();
    let mut timestamps: Vec<f64> = Vec::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line_no < HEADER_LINES {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split(',');
        let lat: f64 = parse_field(fields.next(), line_no, "latitude")?;
        let lon: f64 = parse_field(fields.next(), line_no, "longitude")?;
        let _flag = fields.next(); // "0" field, unused
        let alt_feet: f64 = parse_field(fields.next(), line_no, "altitude")?;
        let days: f64 = parse_field(fields.next(), line_no, "timestamp days")?;

        // Skip GeoLife's error-marker coordinates rather than failing.
        let Ok(point) = GeoPoint::new(lat, lon) else {
            continue;
        };
        let mut t = days * DAY_SECONDS;
        if let Some(&prev) = timestamps.last() {
            if t <= prev {
                t = prev + 1e-3;
            }
        }
        points.push(point.with_alt(alt_feet * FEET_TO_M));
        timestamps.push(t);
    }

    Trajectory::with_timestamps(points, timestamps)
}

fn parse_field(field: Option<&str>, line_no: usize, what: &str) -> Result<f64> {
    let raw = field.ok_or_else(|| Error::Parse {
        line: line_no + 1,
        message: format!("missing {what} field"),
    })?;
    raw.trim().parse::<f64>().map_err(|e| Error::Parse {
        line: line_no + 1,
        message: format!("bad {what} ({raw:?}): {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Geolife trajectory\n\
WGS 84\n\
Altitude is in Feet\n\
Reserved 3\n\
0,2,255,My Track,0,0,2,8421376\n\
0\n\
39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30\n\
39.906554,116.385625,0,492,40097.5864930556,2009-10-11,14:04:33\n\
39.906420,116.385683,0,492,40097.5865277778,2009-10-11,14:04:36\n";

    #[test]
    fn parses_sample_file() {
        let t = read_plt_from(SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let p = &t[0];
        assert!((p.lat - 39.906631).abs() < 1e-9);
        assert!((p.lon - 116.385564).abs() < 1e-9);
        assert!((p.alt - 492.0 * 0.3048).abs() < 1e-9);
        let ts = t.timestamps().unwrap();
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
        // 3-second sampling interval.
        assert!((ts[1] - ts[0] - 3.0).abs() < 0.01, "dt = {}", ts[1] - ts[0]);
    }

    #[test]
    fn skips_error_marker_coordinates() {
        let data = format!("{}400.0,-777.0,0,0,40097.60,2009-10-11,14:30:00\n", SAMPLE);
        let t = read_plt_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 3); // bad record dropped
    }

    #[test]
    fn nudges_duplicate_timestamps() {
        let data = "h\nh\nh\nh\nh\nh\n\
1.0,1.0,0,0,100.0,d,t\n\
1.1,1.0,0,0,100.0,d,t\n";
        let t = read_plt_from(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        let ts = t.timestamps().unwrap();
        assert!(ts[1] > ts[0]);
    }

    #[test]
    fn reports_malformed_records() {
        let data = "h\nh\nh\nh\nh\nh\nnot-a-number,1.0,0,0,100.0,d,t\n";
        let err = read_plt_from(data.as_bytes()).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 7, .. }), "{err}");
    }

    #[test]
    fn reports_missing_fields() {
        let data = "h\nh\nh\nh\nh\nh\n1.0,2.0\n";
        let err = read_plt_from(data.as_bytes()).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn empty_body_gives_empty_trajectory() {
        let data = "h\nh\nh\nh\nh\nh\n";
        let t = read_plt_from(data.as_bytes()).unwrap();
        assert!(t.is_empty());
    }
}
