//! Engine-vs-direct equivalence: the `Engine` facade must return results
//! bit-for-bit identical (motif indices and DFD values) to direct
//! algorithm calls, for every algorithm choice, on random walks — plus
//! the cache-reuse and budget contracts that only the engine has.

use fremo::motif::engine::ResolvedAlgorithm;
use fremo::motif::{cluster_subtrajectories, similarity_self_join, top_k_motifs, ClusterConfig};
use fremo::prelude::*;
use fremo::trajectory::gen::planar;

fn choices() -> Vec<(AlgorithmChoice, Box<dyn MotifDiscovery<EuclideanPoint>>)> {
    vec![
        (AlgorithmChoice::BruteDp, Box::new(BruteDp)),
        (AlgorithmChoice::Btm, Box::new(Btm)),
        (AlgorithmChoice::Gtm, Box::new(Gtm)),
        (AlgorithmChoice::GtmStar, Box::new(GtmStar)),
    ]
}

/// Identical indices and bit-identical DFD between an engine outcome and a
/// direct call.
fn assert_same(engine_motif: Option<Motif>, direct: Option<Motif>, context: &str) {
    match (engine_motif, direct) {
        (None, None) => {}
        (Some(e), Some(d)) => {
            assert_eq!(e.first, d.first, "{context}: first interval differs");
            assert_eq!(e.second, d.second, "{context}: second interval differs");
            assert_eq!(
                e.distance.to_bits(),
                d.distance.to_bits(),
                "{context}: DFD differs ({} vs {})",
                e.distance,
                d.distance
            );
        }
        (e, d) => panic!("{context}: engine={e:?} direct={d:?}"),
    }
}

#[test]
fn motif_within_matches_every_direct_algorithm() {
    for seed in 0..5u64 {
        let t = planar::random_walk(60, 0.4, seed);
        let cfg = MotifConfig::new(4).with_group_size(8);
        let engine = Engine::new();
        let id = engine.register(t.clone());
        for (choice, direct) in choices() {
            let outcome = engine
                .execute(
                    &Query::motif(id)
                        .xi(4)
                        .group_size(8)
                        .algorithm(choice)
                        .build(),
                )
                .expect("valid query");
            assert_eq!(outcome.algorithm, direct.name());
            assert!(!outcome.truncated);
            assert_same(
                outcome.motif(),
                direct.discover(&t, &cfg),
                &format!("seed {seed}, {}", direct.name()),
            );
        }
    }
}

#[test]
fn motif_between_matches_every_direct_algorithm() {
    for seed in 0..3u64 {
        let a = planar::random_walk(44, 0.4, seed);
        let b = planar::random_walk(38, 0.4, seed + 100);
        let cfg = MotifConfig::new(3).with_group_size(8);
        let engine = Engine::new();
        let ida = engine.register(a.clone());
        let idb = engine.register(b.clone());
        for (choice, direct) in choices() {
            let outcome = engine
                .execute(
                    &Query::motif_between(ida, idb)
                        .xi(3)
                        .group_size(8)
                        .algorithm(choice)
                        .build(),
                )
                .expect("valid query");
            assert_same(
                outcome.motif(),
                direct.discover_between(&a, &b, &cfg),
                &format!("seed {seed} between, {}", direct.name()),
            );
        }
    }
}

#[test]
fn bound_selections_and_short_inputs_agree() {
    // Equivalence must survive non-default bounds and the no-motif case.
    let t = planar::random_walk(50, 0.35, 17);
    let engine = Engine::new();
    let id = engine.register(t.clone());
    for sel in [
        BoundSelection::all_relaxed(),
        BoundSelection::all_tight(),
        BoundSelection::cell_only(),
        BoundSelection::none(),
    ] {
        let cfg = MotifConfig::new(3).with_bounds(sel);
        let outcome = engine
            .execute(
                &Query::motif(id)
                    .xi(3)
                    .bounds(sel)
                    .algorithm(AlgorithmChoice::Btm)
                    .build(),
            )
            .expect("valid query");
        assert_same(outcome.motif(), Btm.discover(&t, &cfg), &format!("{sel:?}"));
    }

    let short = planar::random_walk(6, 0.4, 1);
    let engine = Engine::new();
    let id = engine.register(short);
    let outcome = engine
        .execute(
            &Query::motif(id)
                .xi(5)
                .algorithm(AlgorithmChoice::Btm)
                .build(),
        )
        .expect("valid query");
    assert!(outcome.motif().is_none());
}

#[test]
fn top_k_matches_direct_call() {
    let t = planar::random_walk(90, 0.4, 6);
    let cfg = MotifConfig::new(3);
    let direct = top_k_motifs(&t, &cfg, 4);

    let engine = Engine::new();
    let id = engine.register(t);
    let outcome = engine
        .execute(&Query::top_k(id, 4).xi(3).build())
        .expect("valid query");
    let motifs = outcome.motifs();
    assert_eq!(motifs.len(), direct.len());
    for (e, d) in motifs.iter().zip(&direct) {
        assert_same(Some(*e), Some(*d), "top-k");
    }
}

#[test]
fn join_and_cluster_match_direct_calls() {
    let walks: Vec<_> = (0..6).map(|s| planar::random_walk(25, 0.4, s)).collect();
    let direct = similarity_self_join(&walks, 6.0);

    let engine = Engine::new();
    let ids = engine.register_all(walks.clone());
    let outcome = engine
        .execute(&Query::join(ids.clone(), 6.0).build())
        .expect("valid query");
    let join = outcome.join().expect("join payload");
    assert_eq!(join.pairs, direct.pairs);
    assert_eq!(join.verified, direct.verified);

    let t = planar::random_walk(120, 0.4, 3);
    let direct = cluster_subtrajectories(&t, &ClusterConfig::new(15, 5, 4.0));
    let id = engine.register(t);
    let outcome = engine
        .execute(&Query::cluster(id, 15, 5, 4.0).build())
        .expect("valid query");
    let clusters = outcome.clusters().expect("cluster payload");
    assert_eq!(clusters.len(), direct.len());
    for (e, d) in clusters.iter().zip(&direct) {
        assert_eq!(e.representative, d.representative);
        assert_eq!(e.members, d.members);
    }
}

#[test]
fn second_query_recomputes_fewer_tables() {
    let t = planar::random_walk(80, 0.4, 9);
    let engine = Engine::new();
    let id = engine.register(t);
    let q = Query::motif(id)
        .xi(4)
        .algorithm(AlgorithmChoice::Btm)
        .build();

    let first = engine.execute(&q).expect("valid query");
    assert_eq!(first.cache.matrices_built, 1);
    assert_eq!(first.cache.tables_built, 1);
    assert_eq!(first.cache.reused(), 0);

    let second = engine.execute(&q).expect("valid query");
    assert!(
        second.cache.recomputed() < first.cache.recomputed(),
        "second query should recompute fewer structures ({} vs {})",
        second.cache.recomputed(),
        first.cache.recomputed()
    );
    assert_eq!(second.cache.recomputed(), 0);
    assert_eq!(second.cache.reused(), 2);
    assert_same(second.motif(), first.motif(), "warm repeat");

    // A different ξ on the same trajectory reuses the matrix but must
    // rebuild tables.
    let other = engine
        .execute(
            &Query::motif(id)
                .xi(6)
                .algorithm(AlgorithmChoice::Btm)
                .build(),
        )
        .expect("valid query");
    assert_eq!(other.cache.matrices_built, 0);
    assert_eq!(other.cache.tables_built, 1);

    let stats = engine.stats();
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.cache.matrices_built, 1);
}

#[test]
fn auto_resolution_follows_documented_crossovers() {
    use fremo::motif::engine::{AUTO_BRUTE_MAX_N, AUTO_BTM_MAX_N, AUTO_GTM_MAX_N};
    let auto = AlgorithmChoice::Auto;
    assert_eq!(
        auto.resolve(AUTO_BRUTE_MAX_N, 4),
        ResolvedAlgorithm::BruteDp
    );
    assert_eq!(
        auto.resolve(AUTO_BRUTE_MAX_N + 1, 4),
        ResolvedAlgorithm::Btm
    );
    assert_eq!(auto.resolve(AUTO_BTM_MAX_N + 1, 4), ResolvedAlgorithm::Gtm);
    assert_eq!(
        auto.resolve(AUTO_GTM_MAX_N + 1, 4),
        ResolvedAlgorithm::GtmStar
    );

    // And the engine actually reports the resolved name.
    let t = planar::random_walk(40, 0.4, 2);
    let engine = Engine::new();
    let id = engine.register(t.clone());
    let outcome = engine
        .execute(&Query::motif(id).xi(3).build())
        .expect("valid query");
    assert_eq!(outcome.algorithm, "BruteDP"); // n = 40 ≤ 64
    assert_same(
        outcome.motif(),
        BruteDp.discover(&t, &MotifConfig::new(3)),
        "auto",
    );
}

#[test]
fn budget_truncation_is_flagged_and_safe() {
    let t = planar::random_walk(100, 0.4, 13);
    let engine = Engine::new();
    let id = engine.register(t);
    let outcome = engine
        .execute(
            &Query::motif(id)
                .xi(3)
                .algorithm(AlgorithmChoice::BruteDp)
                .candidate_budget(1)
                .build(),
        )
        .expect("valid query");
    assert!(outcome.truncated);
    assert_eq!(outcome.stats.subsets_expanded, 1);
    // An unlimited rerun of the same query is not truncated.
    let outcome = engine
        .execute(
            &Query::motif(id)
                .xi(3)
                .algorithm(AlgorithmChoice::BruteDp)
                .build(),
        )
        .expect("valid query");
    assert!(!outcome.truncated);
    assert!(outcome.motif().is_some());
}
