// L2 clean fixture: keyed hash lookups plus ordered-container iteration.

use std::collections::{BTreeMap, HashMap};

pub struct Cache {
    frames: HashMap<u64, usize>,
    lru: BTreeMap<u64, usize>,
}

impl Cache {
    pub fn get(&self, key: u64) -> Option<usize> {
        self.frames.get(&key).copied()
    }

    pub fn put(&mut self, key: u64, v: usize) {
        self.frames.insert(key, v);
    }

    pub fn known(&self, key: u64) -> bool {
        self.frames.contains_key(&key)
    }

    pub fn ordered(&self) -> Vec<u64> {
        // BTreeMap iteration is deterministic; only hash containers are
        // restricted.
        self.lru.keys().copied().collect()
    }
}

pub fn sum(items: &[u64]) -> u64 {
    let mut total = 0;
    for v in items {
        total += v;
    }
    total
}
