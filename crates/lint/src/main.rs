//! CLI for the workspace invariant checker.
//!
//! ```text
//! fremo-lint --workspace [--root DIR] [--json] [--disable <Lk>]... [--list]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use fremo_lint::{find_workspace_root, run_workspace, LintId, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
fremo-lint: workspace invariant checker (see docs/LINTS.md)

USAGE:
    fremo-lint --workspace [OPTIONS]

OPTIONS:
    --workspace        Lint the enclosing workspace (crates/, src/, docs/)
    --root <DIR>       Treat DIR as the workspace root instead of searching
                       upward from the current directory
    --json             Emit machine-readable JSON instead of text
    --disable <ID>     Skip one lint (repeatable); IDs are L0..L7
    --list             List the lint catalog and exit
    --help             Show this help
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fremo-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--disable" => {
                let id = args.next().ok_or("--disable requires a lint id (L0..L7)")?;
                let id = LintId::parse(&id).ok_or_else(|| format!("unknown lint id `{id}`"))?;
                opts.disabled.insert(id);
            }
            "--list" => {
                for id in LintId::ALL {
                    println!("{}  {}", id.as_str(), id.title());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    if !workspace {
        return Err(format!("nothing to do: pass --workspace\n\n{USAGE}"));
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no enclosing Cargo workspace found; pass --root <DIR>")?
        }
    };

    let report = run_workspace(&root, &opts).map_err(|e| format!("{}: {e}", root.display()))?;

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "fremo-lint: {} finding{} across {} source file{} and {} doc{}",
            report.findings.len(),
            plural(report.findings.len()),
            report.files_scanned,
            plural(report.files_scanned),
            report.docs_scanned,
            plural(report.docs_scanned),
        );
    }

    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
