#!/usr/bin/env bash
# Fails when a docs/*.md file references a Rust symbol that no longer
# exists in the source tree, so prose cannot silently rot as the code
# moves. Checked references are backtick-quoted path tokens of the form
# `Type::member` or `module::Item` (e.g. `Engine::with_cache_limit`,
# `CacheReport::hit_rate`); every `::`-separated segment must appear as
# a word somewhere under crates/ or src/. Plain-word tokens (`Engine`)
# and file paths are deliberately not checked — too many false
# positives, no signal.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for doc in docs/*.md; do
    # Backticked tokens containing `::`, stripped of trailing () / ! and
    # generic arguments. Skip tokens with spaces or non-path characters
    # (those are code snippets, not symbol references).
    symbols=$(grep -o '`[A-Za-z_][A-Za-z0-9_:]*::[A-Za-z_][A-Za-z0-9_]*`' "$doc" \
        | tr -d '`' | sort -u)
    [ -n "$symbols" ] || continue
    while IFS= read -r symbol; do
        ok=1
        IFS=':' read -ra parts <<<"${symbol//::/:}"
        for segment in "${parts[@]}"; do
            [ -n "$segment" ] || continue
            if ! grep -rqw --include='*.rs' "$segment" crates/ src/; then
                ok=0
                break
            fi
        done
        if [ "$ok" -eq 0 ]; then
            echo "::error file=$doc::unknown symbol \`$symbol\` (segment \`$segment\` not found in any .rs file)"
            fail=1
        fi
    done <<<"$symbols"
done

if [ "$fail" -ne 0 ]; then
    echo "doc symbol check failed: update the doc or the code reference above" >&2
    exit 1
fi
echo "doc symbol check: all referenced symbols exist"
