//! # fremo-trajectory
//!
//! Spatial-trajectory substrate for the `fremo` workspace: the data model,
//! ground-distance functions, precomputed distance matrices, dataset loaders
//! and synthetic workload generators used by the motif-discovery algorithms
//! of Tang et al., *"Efficient Motif Discovery in Spatial Trajectories Using
//! Discrete Fréchet Distance"*, EDBT 2017.
//!
//! ## Overview
//!
//! * [`point`] — geographic ([`GeoPoint`]) and planar ([`EuclideanPoint`])
//!   points plus the [`GroundDistance`] abstraction (Section 3 of the paper:
//!   "our methods are directly applicable to higher dimensions and other
//!   types of ground distance").
//! * [`distance`] — great-circle distance via the haversine formula of
//!   Sinnott \[21\], Euclidean distances, and the equirectangular
//!   approximation.
//! * [`trajectory`] — [`Trajectory`]: an ordered point sequence with
//!   (possibly non-uniform) timestamps, subtrajectory views and utilities.
//! * [`matrix`] — dense `O(n^2)` all-pair ground-distance matrices, the
//!   on-the-fly variant used by GTM*, and the row/column minima (`Rmin`,
//!   `Cmin`) backing the paper's relaxed lower bounds.
//! * [`kernel`] — runtime-dispatched SIMD kernels (AVX2/SSE2/NEON with a
//!   scalar fallback) for Euclidean distance rows and the DP `min`
//!   pre-pass, bit-identical to the scalar loops (`docs/KERNELS.md`).
//! * [`matrix_f32`] — opt-in single-precision distance matrix for the
//!   approximate algorithms only; exact kernels stay `f64`.
//! * [`io`] — GeoLife PLT and CSV readers/writers.
//! * [`gen`] — synthetic workload generators standing in for the GeoLife,
//!   Truck and Wild-Baboon datasets (see `DESIGN.md` §5 for the
//!   substitution rationale).
//! * [`stats`] — descriptive statistics over trajectories.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
pub mod error;
pub mod gen;
pub mod io;
pub mod kernel;
pub mod matrix;
pub mod matrix_f32;
pub mod point;
pub mod resample;
pub mod simplify;
pub mod stats;
pub mod trajectory;

pub use distance::{Equirectangular, Euclidean, Haversine, Metric, Native, EARTH_RADIUS_M};
pub use error::{Error, Result};
pub use kernel::Kernel;
pub use matrix::{DenseMatrix, DistanceSource, LazyDistances, RowColMins, ValidRegion};
pub use matrix_f32::DenseMatrixF32;
pub use point::{Euclidean3dPoint, EuclideanPoint, GeoPoint, GroundDistance};
pub use resample::{resample_count, resample_uniform, Lerp};
pub use simplify::{simplify_euclidean, simplify_geo};
pub use stats::TrajectoryStats;
pub use trajectory::{SubTrajectory, Trajectory, TrajectoryBuilder};
