//! Tour of the extensions beyond the paper: ε-approximate search, top-k
//! motifs, similarity join, and parallel BTM.
//!
//! ```bash
//! cargo run --release --example extensions_tour
//! ```

use fremo::motif::{similarity_self_join, top_k_motifs, ApproxGtm, ParallelBtm};
use fremo::prelude::*;
use fremo::trajectory::gen::Dataset;

fn main() {
    let t = Dataset::Truck.generate(1500, 7);
    let cfg = MotifConfig::new(60);

    // --- Exact baseline ---------------------------------------------------
    let (exact, exact_stats) = Gtm.discover_with_stats(&t, &cfg);
    let exact = exact.expect("motif");
    println!("exact    : {exact}  ({:.3}s)", exact_stats.total_seconds);

    // --- (1+eps)-approximate ----------------------------------------------
    for eps in [0.1, 0.5] {
        let (m, stats) = ApproxGtm::new(eps).discover_with_stats(&t, &cfg);
        let m = m.expect("motif");
        println!(
            "eps={eps:<4}: {m}  ({:.3}s, guarantee ≤ {:.1} m)",
            stats.total_seconds,
            (1.0 + eps) * exact.distance
        );
        assert!(m.distance <= (1.0 + eps) * exact.distance + 1e-9);
    }

    // --- Top-k disjoint motifs ---------------------------------------------
    println!("\ntop-3 index-disjoint motifs:");
    for (rank, m) in top_k_motifs(&t, &cfg, 3).iter().enumerate() {
        println!("  #{} {m}", rank + 1);
    }

    // --- Parallel BTM -------------------------------------------------------
    let (pm, pstats) = ParallelBtm::default().discover_with_stats(&t, &cfg);
    let pm = pm.expect("motif");
    println!(
        "\nparallel : {pm}  ({:.3}s on {} workers)",
        pstats.total_seconds,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    assert!((pm.distance - exact.distance).abs() < 1e-9);

    // --- Similarity join ----------------------------------------------------
    // Five trucks from the same depot family: whole-trajectory join.
    let fleet: Vec<_> = (0..5)
        .map(|k| Dataset::Truck.generate(300, 100 + k))
        .collect();
    let joined = similarity_self_join(&fleet, 8_000.0);
    println!("\nfleet self-join at 8 km: {}", joined.summary());
}
