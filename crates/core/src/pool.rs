//! Worker-thread budgeting and fan-out for the engine-wide parallel
//! execution layer.
//!
//! Three small pieces shared by every parallel code path in the
//! workspace:
//!
//! * a **global thread budget** — [`global_threads`] reads the
//!   `FREMO_THREADS` environment variable (unset, `0`, or unparsable
//!   falls back to the machine's available parallelism), and
//!   [`resolve_threads`] refines it with a per-query request;
//! * [`run_workers`] — scoped fan-out over the vendored `crossbeam`
//!   shim, so workers may borrow the caller's stack; a single worker
//!   runs inline on the caller's thread, which means thread-count 1
//!   exercises exactly the same code path without spawn overhead;
//! * [`WorkCursor`] — the atomic claim counter behind the dynamic
//!   scheduling of the sorted-list scans. Claiming one index at a time
//!   is deliberate: candidate-subset expansions have wildly uneven cost
//!   (early entries run big DPs, late entries prune instantly), so a
//!   chunk size of one is what keeps workers balanced — the cheap form
//!   of work stealing, without a deque per worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the global thread budget.
///
/// The engine's defaults ([`crate::engine::ExecutionMode::Auto`] and
/// `Parallel { threads: 0 }`) resolve through it, so CI can pin the
/// whole test suite to a worker count without touching any query.
pub const THREADS_ENV: &str = "FREMO_THREADS";

/// The machine's available parallelism (≥ 1).
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The global thread budget: `FREMO_THREADS` when set to a positive
/// integer, else [`hardware_threads`].
///
/// Read from the environment **once**, at first use, and cached for the
/// process lifetime. Re-reading per call would let two sessions of one
/// engine resolve different global budgets mid-run if the environment
/// changed under them — and mutating it concurrently is UB-adjacent
/// anyway, which is why the workspace clippy config bans
/// `std::env::set_var` outright. One read at first use makes that ban's
/// rationale hold structurally: after this function's first call, the
/// environment cannot influence thread budgets at all.
#[must_use]
pub fn global_threads() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(hardware_threads)
    })
}

/// Hard ceiling on worker threads per fan-out. Oversubscription beyond
/// this buys nothing and an unchecked request (`--threads 5000000`)
/// would otherwise abort on OS thread-spawn failure instead of running.
pub const MAX_WORKERS: usize = 512;

/// Resolves a per-query thread request against the global budget:
/// `0` means "use the global default", anything else is taken as-is —
/// clamped to [`MAX_WORKERS`] either way.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    let resolved = if requested > 0 {
        requested
    } else {
        global_threads()
    };
    resolved.min(MAX_WORKERS)
}

/// Runs `threads` workers to completion, each receiving its worker index.
///
/// Workers may borrow from the caller's stack (scoped threads). With
/// `threads <= 1` the closure runs inline on the caller's thread — same
/// logic, no spawn.
pub fn run_workers<F: Fn(usize) + Sync>(threads: usize, f: F) {
    if threads <= 1 {
        f(0);
        return;
    }
    crossbeam::scope(|scope| {
        for w in 0..threads {
            let f = &f;
            scope.spawn(move |_| f(w));
        }
    })
    // fremo-lint: allow(L3) -- crossbeam::scope only errors when a worker
    // panicked; propagating that panic (instead of swallowing it and
    // returning partial results) is the correct behavior.
    .expect("worker threads do not panic");
}

/// An atomic work cursor over `0..len`: workers claim the next unclaimed
/// index until the range is drained. Every index is handed out exactly
/// once regardless of interleaving.
#[derive(Debug)]
pub struct WorkCursor {
    next: AtomicUsize,
    len: usize,
}

impl WorkCursor {
    /// Cursor over `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        WorkCursor {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claims the next index, or `None` when the range is drained.
    #[must_use]
    pub fn claim(&self) -> Option<usize> {
        // relaxed: fetch_add's atomicity alone guarantees each index is
        // handed out once; the cursor publishes no other data.
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.len).then_some(idx)
    }

    /// Claims up to `size` consecutive indices at once — one atomic op
    /// per chunk instead of per item, for loops whose per-item work is
    /// too small to absorb contended counter traffic.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    #[must_use]
    pub fn claim_chunk(&self, size: usize) -> Option<std::ops::Range<usize>> {
        assert!(size > 0, "chunk size must be positive");
        // relaxed: same argument as `claim` — atomicity gives disjoint
        // chunks; no data rides on the counter.
        let lo = self.next.fetch_add(size, Ordering::Relaxed);
        (lo < self.len).then(|| lo..(lo.saturating_add(size)).min(self.len))
    }

    /// Length of the underlying range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cursor_hands_out_each_index_once() {
        let cursor = WorkCursor::new(1000);
        let claimed: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        run_workers(4, |_| {
            while let Some(idx) = cursor.claim() {
                claimed[idx].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn chunked_claims_cover_each_index_once() {
        let cursor = WorkCursor::new(1000);
        let claimed: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        run_workers(4, |_| {
            while let Some(range) = cursor.claim_chunk(64) {
                for idx in range {
                    claimed[idx].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(cursor.claim_chunk(64).is_none());
    }

    #[test]
    fn single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let hit = std::sync::atomic::AtomicBool::new(false);
        run_workers(1, |w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), caller);
            hit.store(true, Ordering::Relaxed);
        });
        assert!(hit.load(Ordering::Relaxed));
    }

    #[test]
    fn resolve_prefers_explicit_request_and_clamps() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5_000_000), MAX_WORKERS);
        assert!(hardware_threads() >= 1);
        assert!(global_threads() >= 1);
    }
}
