//! Regenerates Figure 2 (ED vs DFD motif quality).
use fremo_bench::experiments::{fig02_ed_vs_dfd, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig02_ed_vs_dfd::run(scale);
    print_all("Figure 2 (ED vs DFD motif quality)", &tables);
}
