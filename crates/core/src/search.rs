//! Shared best-first processing of a sorted candidate-subset list
//! (Algorithm 2 lines 3–13, also the final stage of Algorithm 3).

use std::time::Instant;

use fremo_trajectory::DistanceSource;

use crate::bounds::BoundTables;
use crate::config::{BoundKind, BoundSelection};
use crate::domain::Domain;
use crate::dp::{expand_subset, Bsf, DpBuffers};
use crate::stats::SearchStats;

/// A best-effort resource budget for a motif search.
///
/// The best-first scan stops expanding candidate subsets once the deadline
/// passes or the expansion cap is hit; the best motif found so far is
/// returned. A truncated search is *not* guaranteed optimal — callers (the
/// engine's [`crate::engine::QueryOutcome`]) report the truncation so users
/// can tell a budgeted answer from an exact one.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchBudget {
    /// Hard wall-clock deadline; checked between subset expansions.
    pub deadline: Option<Instant>,
    /// Maximum number of candidate subsets to expand (DP runs).
    pub max_subsets: Option<u64>,
}

impl SearchBudget {
    /// Whether the budget is spent after `expanded` subset expansions.
    #[must_use]
    pub fn exceeded(&self, expanded: u64) -> bool {
        self.max_subsets.is_some_and(|cap| expanded >= cap)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// One candidate subset in the sorted list `A` of Algorithm 2. 16 bytes.
#[derive(Debug, Clone, Copy)]
pub struct ListEntry {
    /// Combined lower bound `CS_{i,j}.LB`.
    pub lb: f64,
    /// Start index of the first half.
    pub i: u32,
    /// Start index of the second half.
    pub j: u32,
}

/// Heap bytes of an entry list.
#[must_use]
pub fn list_bytes(entries: &[ListEntry]) -> usize {
    std::mem::size_of_val(entries)
}

/// Monotone bijection from `f64` to `u64` whose `u64` order equals
/// `f64::total_cmp` order (flip the sign bit for positives, all bits for
/// negatives).
#[inline]
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    bits ^ ((((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// The *strict* total sort order of a candidate list: bound first
/// (`total_cmp` order), then `(i, j)` as an unambiguous tiebreak. Keys
/// are unique per entry, so the sorted permutation is unique — which is
/// what lets the serial sort and the parallel chunk-sort-merge produce
/// the identical array, keeping parallel scans bit-for-bit equal to
/// serial ones even when bounds tie exactly.
#[inline]
fn entry_key(e: &ListEntry) -> (u64, u32, u32) {
    (total_order_key(e.lb), e.i, e.j)
}

/// Sorts a candidate list ascending by bound (ties broken by `(i, j)` —
/// the key order is strict, so the sorted permutation is unique and the
/// serial and parallel sorts agree exactly, even on tied bounds).
pub fn sort_entries(entries: &mut [ListEntry]) {
    entries.sort_unstable_by_key(entry_key);
}

/// [`sort_entries`] across worker threads: chunk-sort in parallel, then
/// one serial k-way merge. The strict key order makes the result
/// identical to the serial sort. Small lists sort serially (the fan-out
/// would cost more than the sort).
pub(crate) fn sort_entries_parallel(entries: &mut [ListEntry], threads: usize) {
    let n = entries.len();
    if threads <= 1 || n < 8192 {
        sort_entries(entries);
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for part in entries.chunks_mut(chunk) {
            scope.spawn(move |_| part.sort_unstable_by_key(entry_key));
        }
    })
    // fremo-lint: allow(L3) -- crossbeam::scope only errors when a sort
    // worker panicked; propagating the panic is correct.
    .expect("sort workers do not panic");

    // K-way merge of the sorted runs. k = thread count, so a linear scan
    // over *cached* head keys per pop is cheap; only the advanced run
    // recomputes its key.
    let mut heads: Vec<usize> = (0..n).step_by(chunk).collect();
    let ends: Vec<usize> = heads.iter().map(|&lo| (lo + chunk).min(n)).collect();
    let mut keys: Vec<Option<(u64, u32, u32)>> = heads
        .iter()
        .map(|&h| Some(entry_key(&entries[h])))
        .collect();
    let mut out = Vec::with_capacity(n);
    loop {
        let mut best: Option<(usize, (u64, u32, u32))> = None;
        for (run, &key) in keys.iter().enumerate() {
            if let Some(key) = key {
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((run, key));
                }
            }
        }
        let Some((run, _)) = best else { break };
        out.push(entries[heads[run]]);
        heads[run] += 1;
        keys[run] = (heads[run] < ends[run]).then(|| entry_key(&entries[heads[run]]));
    }
    entries.copy_from_slice(&out);
}

/// Builds list entries for the given start pairs using the combined bound.
pub fn build_entries<D: DistanceSource>(
    src: &D,
    tables: &BoundTables,
    sel: BoundSelection,
    starts: impl Iterator<Item = (usize, usize)>,
) -> Vec<ListEntry> {
    starts
        .map(|(i, j)| ListEntry {
            lb: tables.subset_bounds(src, sel, i, j).combined(),
            i: i as u32,
            j: j as u32,
        })
        .collect()
}

/// Sorts the list ascending by bound and processes it best-first: expand
/// while `bsf` cannot prune, then attribute everything after the stop point
/// to the first bound family that disqualifies it (Figure 15's accounting).
///
/// Returns `false` when `budget` cut the scan short. Subsets a budget
/// left unexamined (their bounds do not reach the final `bsf`) are
/// accounted under `subsets_skipped_budget`/`pairs_skipped_budget`, not
/// as pruned, so pruning statistics stay honest; the result may then be
/// suboptimal.
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub fn process_sorted_subsets<D: DistanceSource>(
    src: &D,
    domain: Domain,
    xi: usize,
    sel: BoundSelection,
    tables: &BoundTables,
    entries: &mut [ListEntry],
    bsf: &mut Bsf,
    stats: &mut SearchStats,
    buf: &mut DpBuffers,
    budget: Option<&SearchBudget>,
) -> bool {
    sort_entries(entries);

    let mut stop = entries.len();
    let mut completed = true;
    let end_tables = if sel.end_cross { Some(tables) } else { None };
    for (idx, e) in entries.iter().enumerate() {
        if bsf.prunable(e.lb) {
            stop = idx;
            break;
        }
        if budget.is_some_and(|b| b.exceeded(stats.subsets_expanded)) {
            stop = idx;
            completed = false;
            break;
        }
        let (i, j) = (e.i as usize, e.j as usize);
        stats.subsets_expanded += 1;
        stats.pairs_exact += domain.pairs_in_subset(i, j, xi);
        expand_subset(src, domain, xi, i, j, end_tables, true, bsf, stats, buf);
    }

    if completed {
        // Attribute each subset after `stop` to the first family whose
        // component alone reaches the final bsf (cell → cross → band, the
        // paper's convention for Figure 15); ties at the stop point
        // (combined bound == components' max) fall back to Band.
        for e in &entries[stop..] {
            let (i, j) = (e.i as usize, e.j as usize);
            let comps = tables.subset_bounds(src, sel, i, j);
            let pairs = domain.pairs_in_subset(i, j, xi);
            let kind = comps
                .attribute(|v| bsf.prunable(v))
                .unwrap_or(BoundKind::Band);
            stats.record_subset_pruned(kind, pairs);
            stats.subsets_skipped_sorted += 1;
        }
    } else {
        // Budget truncation: account the whole remainder as skipped in
        // O(1) — a per-entry walk here would itself overshoot a deadline
        // by O(n²) on large inputs. Entries a bound could have pruned are
        // lumped in too, so the pruned fraction under-reports pruning
        // (the conservative direction for a best-effort result).
        stats.subsets_skipped_budget += (entries.len() - stop) as u64;
        stats.pairs_skipped_budget += stats.pairs_total.saturating_sub(stats.pairs_accounted());
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::DenseMatrix;
    use fremo_trajectory::EuclideanPoint;

    fn pts(n: usize) -> Vec<EuclideanPoint> {
        // Deterministic pseudo-random walk.
        let mut x: u64 = 0xDEADBEEF;
        let mut out = Vec::with_capacity(n);
        let (mut px, mut py) = (0.0_f64, 0.0_f64);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            px += ((x % 100) as f64 - 49.5) / 50.0;
            py += (((x >> 8) % 100) as f64 - 49.5) / 50.0;
            out.push(EuclideanPoint::new(px, py));
        }
        out
    }

    #[test]
    fn parallel_sort_is_identical_to_serial_sort() {
        // Deterministic pseudo-random bounds with plenty of exact ties,
        // above the parallel cutoff.
        let make = |n: usize| -> Vec<ListEntry> {
            let mut x: u64 = 0x1234_5678;
            (0..n)
                .map(|k| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ListEntry {
                        lb: (x % 97) as f64 / 7.0,
                        i: k as u32,
                        j: (k + 1) as u32,
                    }
                })
                .collect()
        };
        for n in [100usize, 10_000] {
            let mut reference = make(n);
            sort_entries(&mut reference);
            // Strictly increasing keys: the order is unique.
            for w in reference.windows(2) {
                assert!(entry_key(&w[0]) < entry_key(&w[1]));
            }
            for threads in [1, 2, 3, 4, 8] {
                let mut entries = make(n);
                sort_entries_parallel(&mut entries, threads);
                for (a, b) in entries.iter().zip(&reference) {
                    assert_eq!(a.lb.to_bits(), b.lb.to_bits(), "n={n} threads={threads}");
                    assert_eq!((a.i, a.j), (b.i, b.j), "n={n} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn sorted_processing_equals_exhaustive() {
        let points = pts(40);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 3;
        let sel = BoundSelection::all_relaxed();
        let tables = BoundTables::build(&src, domain, xi, sel);

        // Exhaustive reference with no pruning at all.
        let mut reference = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        for (i, j) in domain.subsets(xi) {
            expand_subset(
                &src,
                domain,
                xi,
                i,
                j,
                None,
                false,
                &mut reference,
                &mut stats,
                &mut buf,
            );
        }

        let mut entries = build_entries(&src, &tables, sel, domain.subsets(xi));
        let mut bsf = Bsf::new();
        let mut stats2 = SearchStats {
            pairs_total: domain.pairs_count(xi),
            ..SearchStats::default()
        };
        let completed = process_sorted_subsets(
            &src,
            domain,
            xi,
            sel,
            &tables,
            &mut entries,
            &mut bsf,
            &mut stats2,
            &mut buf,
            None,
        );
        assert!(completed, "unbudgeted scan cannot truncate");

        let r = reference.motif.expect("reference found a motif");
        let b = bsf.motif.expect("sorted search found a motif");
        assert!(
            (r.distance - b.distance).abs() < 1e-12,
            "sorted={} exhaustive={}",
            b.distance,
            r.distance
        );

        // Accounting must be complete: pruned + exact == total pairs.
        let accounted = stats2.pairs_pruned_cell
            + stats2.pairs_pruned_cross
            + stats2.pairs_pruned_band
            + stats2.pairs_exact;
        assert_eq!(accounted, stats2.pairs_total);
        // And the bounds must prune something on this workload.
        assert!(
            stats2.subsets_skipped_sorted > 0,
            "no pruning at all is suspicious"
        );
    }

    #[test]
    fn works_with_no_bounds_selected() {
        let points = pts(24);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 2;
        let sel = BoundSelection::none();
        let tables = BoundTables::build(&src, domain, xi, sel);
        let mut entries = build_entries(&src, &tables, sel, domain.subsets(xi));
        let mut bsf = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        process_sorted_subsets(
            &src,
            domain,
            xi,
            sel,
            &tables,
            &mut entries,
            &mut bsf,
            &mut stats,
            &mut buf,
            None,
        );
        assert!(bsf.motif.is_some());
        assert_eq!(stats.subsets_skipped_sorted, 0); // nothing prunable
    }

    #[test]
    fn budget_truncates_and_accounts_remainder() {
        let points = pts(40);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 2;
        let sel = BoundSelection::all_relaxed();
        let tables = BoundTables::build(&src, domain, xi, sel);
        let mut entries = build_entries(&src, &tables, sel, domain.subsets(xi));
        let total = entries.len() as u64;
        let mut bsf = Bsf::new();
        let mut stats = SearchStats {
            pairs_total: domain.pairs_count(xi),
            ..SearchStats::default()
        };
        let mut buf = DpBuffers::default();
        let budget = SearchBudget {
            deadline: None,
            max_subsets: Some(3),
        };
        let completed = process_sorted_subsets(
            &src,
            domain,
            xi,
            sel,
            &tables,
            &mut entries,
            &mut bsf,
            &mut stats,
            &mut buf,
            Some(&budget),
        );
        assert!(!completed);
        assert_eq!(stats.subsets_expanded, 3);
        assert!(stats.subsets_skipped_budget > 0);
        assert_eq!(
            stats.subsets_expanded + stats.subsets_skipped_sorted + stats.subsets_skipped_budget,
            total
        );
        // Pair accounting stays complete even when truncated, and
        // budget-skipped pairs are not credited to any bound.
        let accounted = stats.pairs_pruned_cell
            + stats.pairs_pruned_cross
            + stats.pairs_pruned_band
            + stats.pairs_skipped_budget
            + stats.pairs_exact;
        assert_eq!(accounted, stats.pairs_total);
        // Unexamined pairs do not count as pruned.
        let pruned = stats.pairs_pruned_cell + stats.pairs_pruned_cross + stats.pairs_pruned_band;
        assert!((stats.pruned_fraction() - pruned as f64 / stats.pairs_total as f64).abs() < 1e-12);
    }
}
