//! The common interface over all similarity measures.

use fremo_trajectory::GroundDistance;

/// A distance-like dissimilarity between two point sequences.
///
/// Lower is more similar. Every built-in implementation is symmetric
/// (`distance(a, b) == distance(b, a)`) and non-negative, but only DFD and
/// Hausdorff satisfy the triangle inequality over sequences.
pub trait SimilarityMeasure<P: GroundDistance> {
    /// Dissimilarity between `a` and `b`.
    ///
    /// For empty inputs the convention is: both empty → `0.0`, exactly one
    /// empty → `f64::INFINITY` (nothing to match against).
    fn distance(&self, a: &[P], b: &[P]) -> f64;

    /// Short name, matching the paper's Table 1 labels where applicable.
    fn name(&self) -> &'static str;

    /// Whether the measure tolerates non-uniform/varying sampling rates
    /// (column 2 of Table 1).
    fn robust_to_sampling_rate(&self) -> bool;

    /// Whether the measure tolerates local time shifting (column 3 of
    /// Table 1).
    fn supports_local_time_shifting(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscreteFrechet, Dtw, Edr, Hausdorff, Lcss, LockstepEuclidean};
    use fremo_trajectory::EuclideanPoint;

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    fn all_measures() -> Vec<Box<dyn SimilarityMeasure<EuclideanPoint>>> {
        vec![
            Box::new(LockstepEuclidean),
            Box::new(Dtw),
            Box::new(Lcss::new(0.5)),
            Box::new(Edr::new(0.5)),
            Box::new(DiscreteFrechet),
            Box::new(Hausdorff),
        ]
    }

    #[test]
    fn table1_characteristics() {
        // The robustness flags must reproduce the paper's Table 1.
        for m in all_measures() {
            let (rate, shift) = (
                m.robust_to_sampling_rate(),
                m.supports_local_time_shifting(),
            );
            match m.name() {
                "ED" => assert!((!rate, !shift) == (true, true), "ED row wrong"),
                "DTW" | "LCSS" | "EDR" => {
                    assert!(!rate, "{} should not be rate-robust", m.name());
                    assert!(shift, "{} should support time shifting", m.name());
                }
                "DFD" => assert!(rate && shift, "DFD row wrong"),
                "Hausdorff" => {} // not in Table 1
                other => panic!("unexpected measure {other}"),
            }
        }
    }

    #[test]
    fn all_measures_symmetric_and_nonnegative() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.5), (2.0, 0.0), (3.0, 1.0)]);
        let b = pts(&[(0.0, 1.0), (1.5, 1.0), (3.0, 0.0)]);
        for m in all_measures() {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!(ab >= 0.0, "{} negative", m.name());
            let symmetric = (ab == ba) || (ab - ba).abs() < 1e-12;
            assert!(symmetric, "{} asymmetric: {ab} vs {ba}", m.name());
        }
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        for m in all_measures() {
            assert_eq!(
                m.distance(&a, &a),
                0.0,
                "{} nonzero on identical input",
                m.name()
            );
        }
    }

    #[test]
    fn empty_input_conventions() {
        let a = pts(&[(0.0, 0.0)]);
        let empty: Vec<EuclideanPoint> = vec![];
        for m in all_measures() {
            assert_eq!(m.distance(&empty, &empty), 0.0, "{}", m.name());
            assert_eq!(m.distance(&a, &empty), f64::INFINITY, "{}", m.name());
            assert_eq!(m.distance(&empty, &a), f64::INFINITY, "{}", m.name());
        }
    }
}
