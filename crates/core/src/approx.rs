//! ε-approximate motif discovery — the paper's future-work direction:
//! *"A promising direction for future work is to devise approximate
//! solutions that trade exactness for shorter running times."*
//!
//! [`ApproxBtm`] and [`ApproxGtm`] run the exact machinery with inflated
//! pruning: a candidate set with lower bound `lb` is skipped as soon as
//! `(1+ε)·lb ≥ bsf`. Every skipped candidate therefore has
//! `dF ≥ bsf/(1+ε)`, so the returned motif's DFD is at most `(1+ε)` times
//! the optimum — while pruning fires earlier and more often. With `ε = 0`
//! both algorithms are exactly their exact counterparts.

use std::time::Instant;

use fremo_trajectory::{DenseMatrix, GroundDistance, Trajectory};

use crate::algorithm::MotifDiscovery;
use crate::btm::Btm;
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::gtm::Gtm;
use crate::result::Motif;
use crate::stats::SearchStats;

/// BTM with `(1+ε)`-approximate pruning.
#[derive(Debug, Clone, Copy)]
pub struct ApproxBtm {
    /// Approximation slack `ε ≥ 0`: the result is within `(1+ε)×` optimal.
    pub epsilon: f64,
}

impl ApproxBtm {
    /// Creates the approximate searcher.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative or non-finite.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon must be finite and ≥ 0"
        );
        ApproxBtm { epsilon }
    }
}

impl<P: GroundDistance> MotifDiscovery<P> for ApproxBtm {
    fn name(&self) -> &'static str {
        "BTM(1+eps)"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        Btm::run(&src, domain, config, self.epsilon, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        Btm::run(&src, domain, config, self.epsilon, started)
    }
}

/// GTM with `(1+ε)`-approximate pruning at both the group and the point
/// level.
#[derive(Debug, Clone, Copy)]
pub struct ApproxGtm {
    /// Approximation slack `ε ≥ 0`.
    pub epsilon: f64,
}

impl ApproxGtm {
    /// Creates the approximate searcher.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative or non-finite.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon must be finite and ≥ 0"
        );
        ApproxGtm { epsilon }
    }
}

impl<P: GroundDistance> MotifDiscovery<P> for ApproxGtm {
    fn name(&self) -> &'static str {
        "GTM(1+eps)"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        Gtm::run(&src, domain, config, self.epsilon, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        Gtm::run(&src, domain, config, self.epsilon, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::gen::planar;

    #[test]
    fn zero_epsilon_is_exact() {
        let t = planar::random_walk(60, 0.4, 3);
        let cfg = MotifConfig::new(4);
        let exact = Btm.discover(&t, &cfg).unwrap();
        let approx = ApproxBtm::new(0.0).discover(&t, &cfg).unwrap();
        assert_eq!(exact.distance, approx.distance);
    }

    #[test]
    fn result_is_within_guarantee() {
        for seed in 0..5 {
            let t = planar::random_walk(70, 0.4, seed);
            let cfg = MotifConfig::new(4).with_group_size(8);
            let exact = Btm.discover(&t, &cfg).unwrap().distance;
            for eps in [0.1, 0.5, 1.0, 4.0] {
                let a = ApproxBtm::new(eps).discover(&t, &cfg).unwrap().distance;
                assert!(
                    a <= (1.0 + eps) * exact + 1e-9,
                    "seed {seed} eps {eps}: {a} > (1+eps)*{exact}"
                );
                assert!(a >= exact - 1e-9, "approximate beat the optimum?!");
                let g = ApproxGtm::new(eps).discover(&t, &cfg).unwrap().distance;
                assert!(
                    g <= (1.0 + eps) * exact + 1e-9,
                    "GTM eps {eps}: {g} vs {exact}"
                );
                assert!(g >= exact - 1e-9);
            }
        }
    }

    #[test]
    fn larger_epsilon_prunes_no_less() {
        let t = planar::random_walk(90, 0.4, 11);
        let cfg = MotifConfig::new(5);
        let (_, exact_stats) = Btm.discover_with_stats(&t, &cfg);
        let (_, approx_stats) = ApproxBtm::new(2.0).discover_with_stats(&t, &cfg);
        assert!(
            approx_stats.subsets_expanded <= exact_stats.subsets_expanded,
            "approx expanded {} > exact {}",
            approx_stats.subsets_expanded,
            exact_stats.subsets_expanded
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_epsilon_rejected() {
        let _ = ApproxBtm::new(-0.1);
    }
}
