//! Regenerates Figure 14 (tight vs relaxed bounds, vs xi).
use fremo_bench::experiments::{fig14_tight_vs_relaxed_xi, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig14_tight_vs_relaxed_xi::run(scale);
    print_all("Figure 14 (tight vs relaxed bounds, vs xi)", &tables);
}
