//! The checker applied to its own workspace, plus CLI-level contract
//! tests (exit codes and JSON output stability).

use fremo_lint::{run_workspace, Options};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn ws_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn workspace_self_lint_is_clean() {
    let report = run_workspace(&repo_root(), &Options::default()).expect("lint workspace");
    assert!(
        report.clean(),
        "workspace must self-lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the real tree, not an empty dir.
    assert!(report.files_scanned > 50, "{}", report.files_scanned);
    assert!(report.docs_scanned >= 2, "{}", report.docs_scanned);
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fremo-lint"))
        .args(args)
        .output()
        .expect("spawn fremo-lint")
}

#[test]
fn cli_exits_zero_on_clean_tree() {
    let root = ws_root("ws_clean");
    let out = run_cli(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 findings"), "{text}");
}

#[test]
fn cli_exits_one_on_findings() {
    let root = ws_root("ws_firing");
    let out = run_cli(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("L1"), "{text}");
    assert!(text.contains("L7"), "{text}");
}

#[test]
fn cli_exits_two_on_usage_error() {
    let out = run_cli(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_output_is_stable_across_runs() {
    let root = ws_root("ws_firing");
    let args = ["--workspace", "--root", root.to_str().unwrap(), "--json"];
    let first = run_cli(&args);
    let second = run_cli(&args);
    assert_eq!(first.status.code(), Some(1));
    assert_eq!(
        first.stdout, second.stdout,
        "JSON output must be byte-identical across runs"
    );

    let text = String::from_utf8(first.stdout).unwrap();
    // Fixed schema markers consumers can rely on.
    assert!(text.contains("\"version\": 1"), "{text}");
    assert!(text.contains("\"count\": 2"), "{text}");
    assert!(
        text.contains("\"file\": \"crates/core/src/lib.rs\""),
        "{text}"
    );
    assert!(text.contains("\"file\": \"docs/guide.md\""), "{text}");
    assert!(text.contains("\"lint\": \"L1\""), "{text}");
    assert!(text.contains("\"lint\": \"L7\""), "{text}");

    // Findings are sorted by (file, line, lint): source before docs.
    let l1_pos = text.find("\"lint\": \"L1\"").unwrap();
    let l7_pos = text.find("\"lint\": \"L7\"").unwrap();
    assert!(l1_pos < l7_pos, "{text}");
}

#[test]
fn json_empty_report_shape_is_stable() {
    let root = ws_root("ws_clean");
    let out = run_cli(&["--workspace", "--root", root.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"findings\": []"), "{text}");
    assert!(text.contains("\"count\": 0"), "{text}");
}

#[test]
fn disable_flag_silences_a_lint_end_to_end() {
    let root = ws_root("ws_firing");
    let out = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--disable",
        "L1",
        "--disable",
        "L7",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
