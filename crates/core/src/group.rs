//! Grouping machinery (Section 5): τ-grouping, group distance bounds, group
//! pattern bounds, and the group-level DFD bounds `GLB_DFD`/`GUB_DFD`.
//!
//! ## Safety notes vs. the paper
//!
//! * **Group pattern bounds** are derived from the *point-level* relaxed
//!   arrays: for all candidates starting in block `(g_u, g_v)`,
//!   `dF ≥ max(min_{i∈g_u} rLB_col(i), min_{j∈g_v} rLB_row(j))` etc.
//!   This is equivalent in spirit to Section 5.2 but stays sound at every
//!   refinement level even though pruned blocks elsewhere no longer carry
//!   bound information (paths of surviving candidates may cross pruned
//!   regions — the point-level arrays cover them).
//! * **`GLB_DFD` feasibility** (Eq. 19) uses the exact integer condition
//!   `ue ≥ u + (ξ+1)/τ` (integer division) instead of the paper's
//!   real-valued `ue − u > ξ/τ`, which can exclude feasible end groups and
//!   would make the bound unsafe (see `DESIGN.md`).
//! * **`GUB_DFD` witnesses** (Eq. 20): a block pair contributes an upper
//!   bound only when a concrete valid candidate provably exists with those
//!   end groups ([`witness_exists`], a greedy interval check), and blocks
//!   whose valid-cell region is empty take `dmax = +∞` so the max-path DP
//!   can never tunnel through them.

use fremo_trajectory::{DistanceSource, ValidRegion};

use crate::domain::Domain;

/// The τ-grouping of both axes of the distance matrix (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupGrid {
    /// Group size τ.
    pub tau: usize,
    /// Number of groups on the first axis (`⌈len_a/τ⌉`).
    pub ga: usize,
    /// Number of groups on the second axis.
    pub gb: usize,
    len_a: usize,
    len_b: usize,
}

impl GroupGrid {
    /// Grid for the given domain and group size.
    ///
    /// # Panics
    ///
    /// Panics when `tau == 0`.
    #[must_use]
    pub fn new(domain: Domain, tau: usize) -> Self {
        assert!(tau > 0, "group size τ must be positive");
        let (len_a, len_b) = (domain.len_a(), domain.len_b());
        GroupGrid {
            tau,
            ga: len_a.max(1).div_ceil(tau),
            gb: len_b.max(1).div_ceil(tau),
            len_a,
            len_b,
        }
    }

    /// Point range `[lo, hi]` (inclusive) of group `g` on the first axis;
    /// `None` when the group starts past the end (possible for padded
    /// grids).
    #[must_use]
    pub fn range_a(&self, g: usize) -> Option<(usize, usize)> {
        let lo = g * self.tau;
        if lo >= self.len_a {
            return None;
        }
        Some((lo, ((g + 1) * self.tau - 1).min(self.len_a - 1)))
    }

    /// Point range of group `g` on the second axis.
    #[must_use]
    pub fn range_b(&self, g: usize) -> Option<(usize, usize)> {
        let lo = g * self.tau;
        if lo >= self.len_b {
            return None;
        }
        Some((lo, ((g + 1) * self.tau - 1).min(self.len_b - 1)))
    }

    /// Group index of point `p` (either axis — groups are aligned).
    #[inline]
    #[must_use]
    pub fn group_of(&self, p: usize) -> usize {
        p / self.tau
    }
}

/// Per-level group distance matrices `dminG`/`dmaxG` (Eq. 16–17),
/// region-restricted: only cells a motif path can visit contribute. Blocks
/// with no valid cells hold `dmin = dmax = +∞` (see module docs).
pub struct GroupMatrices {
    /// The grid this level uses.
    pub grid: GroupGrid,
    dmin: Vec<f64>,
    dmax: Vec<f64>,
}

impl GroupMatrices {
    /// Scans the distance source once per block (`O(len_a · len_b)` total).
    #[must_use]
    pub fn build<D: DistanceSource>(src: &D, domain: Domain, tau: usize) -> Self {
        let grid = GroupGrid::new(domain, tau);
        let region = domain.region();
        let (ga, gb) = (grid.ga, grid.gb);
        let mut dmin = vec![f64::INFINITY; ga * gb];
        let mut dmax = vec![f64::INFINITY; ga * gb];
        for u in 0..ga {
            let Some((alo, ahi)) = grid.range_a(u) else {
                continue;
            };
            for v in 0..gb {
                // Upper-triangle region: blocks strictly below the diagonal
                // are unreachable; skip (they keep +∞/+∞).
                if region == ValidRegion::UpperTriangle && u > v {
                    continue;
                }
                let Some((blo, bhi)) = grid.range_b(v) else {
                    continue;
                };
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for a in alo..=ahi {
                    let b_start = match region {
                        ValidRegion::Full => blo,
                        ValidRegion::UpperTriangle => blo.max(a + 1),
                    };
                    for b in b_start..=bhi {
                        let d = src.get(a, b);
                        if d < lo {
                            lo = d;
                        }
                        if d > hi {
                            hi = d;
                        }
                    }
                }
                let idx = u * gb + v;
                if hi.is_finite() {
                    dmin[idx] = lo;
                    dmax[idx] = hi;
                }
                // else: empty region — both stay +∞ (safe for both DPs).
            }
        }
        GroupMatrices { grid, dmin, dmax }
    }

    /// `dminG(g_u, g_v)`; `+∞` for unreachable/empty blocks.
    #[inline]
    #[must_use]
    pub fn dmin(&self, u: usize, v: usize) -> f64 {
        self.dmin[u * self.grid.gb + v]
    }

    /// `dmaxG(g_u, g_v)`; `+∞` for unreachable/empty blocks.
    #[inline]
    #[must_use]
    pub fn dmax(&self, u: usize, v: usize) -> f64 {
        self.dmax[u * self.grid.gb + v]
    }

    /// Heap bytes of both matrices.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.dmin.capacity() + self.dmax.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Does a valid candidate `(i, ie, j, je)` exist with `i ∈ g_u`,
/// `ie ∈ g_ue`, `j ∈ g_v`, `je ∈ g_ve`?
///
/// Greedy over the interval constraints: choosing the smallest feasible
/// `i`, then `ie`, then `j` is optimal because each later constraint is of
/// the form `later ≥ earlier + const`.
#[must_use]
pub fn witness_exists(
    grid: &GroupGrid,
    domain: Domain,
    xi: usize,
    u: usize,
    ue: usize,
    v: usize,
    ve: usize,
) -> bool {
    let (Some((i_lo, _i_hi)), Some((ie_lo, ie_hi))) = (grid.range_a(u), grid.range_a(ue)) else {
        return false;
    };
    let (Some((j_lo, j_hi)), Some((je_lo, je_hi))) = (grid.range_b(v), grid.range_b(ve)) else {
        return false;
    };
    let i = i_lo;
    let ie = ie_lo.max(i + xi + 1);
    if ie > ie_hi {
        return false;
    }
    let j = match domain {
        Domain::Within { .. } => j_lo.max(ie + 1),
        Domain::Between { .. } => j_lo,
    };
    if j > j_hi {
        return false;
    }
    let je = je_lo.max(j + xi + 1);
    je <= je_hi
}

/// Result of the group-level DFD DP for one block pair.
#[derive(Debug, Clone, Copy)]
pub struct GroupDfdBounds {
    /// `GLB_DFD(u, v)`: a safe lower bound on the DFD of every valid
    /// candidate starting in the block (possibly truncated by early
    /// termination, in which case it is still a valid lower bound).
    pub lower: f64,
    /// `GUB_DFD(u, v)`: an upper bound witnessed by at least one valid
    /// candidate, or `+∞` when no witness block pair was reached.
    pub upper: f64,
}

/// Runs the `dFmin`/`dFmax` recurrences (Definition 5) over end blocks
/// `(ue, ve)` for start block pair `(u, v)` and extracts
/// `GLB_DFD`/`GUB_DFD` (Eq. 19–20, with the corrected feasibility
/// conditions described in the module docs).
///
/// `threshold` enables early termination: once the running lower bound can
/// no longer drop below it, the scan stops (Section 5.3's early
/// termination; row minima of the DP are non-decreasing).
#[must_use]
pub fn group_dfd_bounds(
    gm: &GroupMatrices,
    domain: Domain,
    xi: usize,
    u: usize,
    v: usize,
    threshold: f64,
) -> GroupDfdBounds {
    let grid = &gm.grid;
    let gb = grid.gb;

    // End-block ranges.
    let ue_hi = match domain {
        Domain::Within { .. } => v.min(grid.ga - 1),
        Domain::Between { .. } => grid.ga - 1,
    };
    let ve_hi = gb - 1;
    if u > ue_hi || v > ve_hi {
        return GroupDfdBounds {
            lower: f64::INFINITY,
            upper: f64::INFINITY,
        };
    }
    // Every candidate's end groups satisfy ue ≥ u + (ξ+1)/τ (exact integer
    // feasibility; over-inclusive is safe for the lower bound).
    let shift = (xi + 1) / grid.tau;
    let ue_feasible_lo = u + shift;
    let ve_feasible_lo = v + shift;

    let width = ve_hi - v + 1; // column offset k ↔ ve = v + k
    let mut prev_min = vec![f64::INFINITY; width];
    let mut curr_min = vec![f64::INFINITY; width];
    let mut prev_max = vec![f64::INFINITY; width];
    let mut curr_max = vec![f64::INFINITY; width];

    let mut lower_best = f64::INFINITY;
    let mut upper_best = f64::INFINITY;

    // Boundary row ue = u: running max along ve (single-row coupling).
    {
        let mut run_min = f64::NEG_INFINITY;
        let mut run_max = f64::NEG_INFINITY;
        for k in 0..width {
            let ve = v + k;
            run_min = run_min.max(gm.dmin(u, ve));
            run_max = run_max.max(gm.dmax(u, ve));
            prev_min[k] = run_min;
            prev_max[k] = run_max;
            consider(
                gm,
                domain,
                xi,
                u,
                v,
                u,
                ve,
                ue_feasible_lo,
                ve_feasible_lo,
                run_min,
                run_max,
                &mut lower_best,
                &mut upper_best,
            );
        }
    }

    for ue in (u + 1)..=ue_hi {
        let mut row_min_of_mins = f64::INFINITY;
        for k in 0..width {
            let ve = v + k;
            let (reach_min, reach_max) = if k == 0 {
                (prev_min[0], prev_max[0])
            } else {
                (
                    prev_min[k].min(prev_min[k - 1]).min(curr_min[k - 1]),
                    prev_max[k].min(prev_max[k - 1]).min(curr_max[k - 1]),
                )
            };
            let vmin = reach_min.max(gm.dmin(ue, ve));
            let vmax = reach_max.max(gm.dmax(ue, ve));
            curr_min[k] = vmin;
            curr_max[k] = vmax;
            row_min_of_mins = row_min_of_mins.min(vmin);
            consider(
                gm,
                domain,
                xi,
                u,
                v,
                ue,
                ve,
                ue_feasible_lo,
                ve_feasible_lo,
                vmin,
                vmax,
                &mut lower_best,
                &mut upper_best,
            );
        }
        // Early termination: dFmin row minima never decrease, so once the
        // current row cannot improve on what we have (and we already beat
        // or met the caller's threshold question), stop. The reported lower
        // bound min(lower_best, row_min) is still safe.
        let decided = lower_best.min(row_min_of_mins);
        if decided >= threshold && decided.is_finite() {
            return GroupDfdBounds {
                lower: decided,
                upper: upper_best,
            };
        }
        std::mem::swap(&mut prev_min, &mut curr_min);
        std::mem::swap(&mut prev_max, &mut curr_max);
    }

    GroupDfdBounds {
        lower: lower_best,
        upper: upper_best,
    }
}

// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
#[inline]
fn consider(
    gm: &GroupMatrices,
    domain: Domain,
    xi: usize,
    u: usize,
    v: usize,
    ue: usize,
    ve: usize,
    ue_feasible_lo: usize,
    ve_feasible_lo: usize,
    vmin: f64,
    vmax: f64,
    lower_best: &mut f64,
    upper_best: &mut f64,
) {
    if ue >= ue_feasible_lo && ve >= ve_feasible_lo && vmin < *lower_best {
        *lower_best = vmin;
    }
    if vmax < *upper_best && witness_exists(&gm.grid, domain, xi, u, ue, v, ve) {
        *upper_best = vmax;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_similarity::dfd;
    use fremo_trajectory::gen::planar;
    use fremo_trajectory::DenseMatrix;

    #[test]
    fn grid_ranges() {
        let g = GroupGrid::new(Domain::Within { n: 10 }, 4);
        assert_eq!(g.ga, 3);
        assert_eq!(g.range_a(0), Some((0, 3)));
        assert_eq!(g.range_a(1), Some((4, 7)));
        assert_eq!(g.range_a(2), Some((8, 9))); // partial block
        assert_eq!(g.range_a(3), None);
        assert_eq!(g.group_of(7), 1);
        assert_eq!(g.group_of(8), 2);
    }

    #[test]
    fn group_matrices_bound_point_distances() {
        let t = planar::random_walk(30, 0.4, 5);
        let src = DenseMatrix::within(t.points());
        let domain = Domain::Within { n: 30 };
        let gm = GroupMatrices::build(&src, domain, 4);
        for u in 0..gm.grid.ga {
            for v in u..gm.grid.gb {
                let (alo, ahi) = gm.grid.range_a(u).unwrap();
                let (blo, bhi) = gm.grid.range_b(v).unwrap();
                for a in alo..=ahi {
                    for b in blo.max(a + 1)..=bhi {
                        let d = src.get(a, b);
                        assert!(gm.dmin(u, v) <= d + 1e-12, "dmin violated at ({a},{b})");
                        assert!(gm.dmax(u, v) + 1e-12 >= d, "dmax violated at ({a},{b})");
                    }
                }
            }
        }
        // Blocks below the diagonal are unreachable.
        assert_eq!(gm.dmin(2, 0), f64::INFINITY);
    }

    #[test]
    fn paper_example_group_distances() {
        // Figure 10(b): for groups g2 = [4,5], g5 = [10,11],
        // dminG = 6 and dmaxG = 9.
        let m = crate::bounds::tests::figure5();
        let gm = GroupMatrices::build(&m, Domain::Within { n: 12 }, 2);
        assert_eq!(gm.dmin(2, 5), 6.0);
        assert_eq!(gm.dmax(2, 5), 9.0);
    }

    #[test]
    fn witness_feasibility() {
        let grid = GroupGrid::new(Domain::Within { n: 40 }, 4);
        let domain = Domain::Within { n: 40 };
        // ξ = 3: i=0, ie ≥ 4 → ie can live in group 1; j ≥ ie+1, je ≥ j+4.
        assert!(witness_exists(&grid, domain, 3, 0, 1, 2, 4));
        // Same-group ie with tiny ξ is fine: i=0, ie=2 ∈ g0? ie ≥ i+2 → 2.
        assert!(witness_exists(&grid, domain, 1, 0, 0, 1, 2));
        // Impossible: ie group entirely before i + ξ + 1.
        assert!(!witness_exists(&grid, domain, 10, 0, 1, 5, 9));
        // Overlap violation: j must exceed ie; ue == v with full blocks
        // leaves no room when je's group equals v too... construct: u=0,
        // ue=3, v=3, ve=3 and ξ=1: i=0, ie=max(12, 2)=12, j=max(12,13)=13,
        // je=max(12,15)=15 > 15? je_hi=15 → feasible.
        assert!(witness_exists(&grid, domain, 1, 0, 3, 3, 3));
        // But with ξ=3 je = j+4 = 17 > 15 → infeasible.
        assert!(!witness_exists(&grid, domain, 3, 0, 3, 3, 3));
    }

    #[test]
    fn group_dfd_bounds_sandwich_true_dfd() {
        // Lemma 3/4: GLB ≤ dF(candidate) ≤ (witnessed) GUB for every valid
        // candidate starting in the block.
        let t = planar::random_walk(36, 0.5, 11);
        let pts = t.points();
        let src = DenseMatrix::within(pts);
        let domain = Domain::Within { n: 36 };
        let xi = 2;
        let gm = GroupMatrices::build(&src, domain, 4);

        for u in 0..gm.grid.ga {
            for v in u..gm.grid.gb {
                let b = group_dfd_bounds(&gm, domain, xi, u, v, f64::INFINITY);
                let (alo, ahi) = gm.grid.range_a(u).unwrap();
                let (blo, bhi) = gm.grid.range_b(v).unwrap();
                let mut any = false;
                let mut best = f64::INFINITY;
                for i in alo..=ahi {
                    for j in blo..=bhi {
                        for ie in (i + xi + 1)..j.min(pts.len()) {
                            for je in (j + xi + 1)..pts.len() {
                                let d = dfd(&pts[i..=ie], &pts[j..=je]);
                                any = true;
                                best = best.min(d);
                                assert!(
                                    b.lower <= d + 1e-9,
                                    "GLB {} > dF {} for ({i},{ie},{j},{je}) in block ({u},{v})",
                                    b.lower,
                                    d
                                );
                            }
                        }
                    }
                }
                if any {
                    // The upper bound must be achieved by some candidate.
                    assert!(
                        b.upper + 1e-9 >= best,
                        "GUB {} < best {} in block ({u},{v})",
                        b.upper,
                        best
                    );
                }
            }
        }
    }

    #[test]
    fn early_termination_is_still_safe() {
        let t = planar::random_walk(36, 0.5, 13);
        let src = DenseMatrix::within(t.points());
        let domain = Domain::Within { n: 36 };
        let xi = 2;
        let gm = GroupMatrices::build(&src, domain, 4);
        for u in 0..gm.grid.ga {
            for v in u..gm.grid.gb {
                let full = group_dfd_bounds(&gm, domain, xi, u, v, f64::INFINITY);
                for thr in [0.1, 0.5, 1.0, 2.0] {
                    let cut = group_dfd_bounds(&gm, domain, xi, u, v, thr);
                    // The truncated lower bound never exceeds the exact one
                    // ... it must still lower-bound all candidates, i.e. be
                    // ≤ the exact GLB.
                    assert!(
                        cut.lower <= full.lower + 1e-12,
                        "block ({u},{v}) thr {thr}: cut {} > full {}",
                        cut.lower,
                        full.lower
                    );
                    // And when it claims prunability vs thr, the exact one
                    // must agree that nothing below thr exists.
                    if cut.lower >= thr {
                        assert!(full.lower >= thr - 1e-12);
                    }
                    // Upper bounds from a truncated scan are still valid
                    // upper bounds (checked against full's witnesses).
                    assert!(cut.upper + 1e-12 >= full.upper);
                }
            }
        }
    }
}
