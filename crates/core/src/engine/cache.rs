//! Per-corpus memoization of search state.
//!
//! The expensive, query-independent part of every dense-matrix algorithm
//! is the `O(n²)` ground-distance matrix plus the bound tables derived
//! from it. Both depend only on the trajectory (matrix) and on `(ξ,
//! tight-vs-relaxed)` (tables) — never on the query's algorithm, budget,
//! k, or the individual bound-family toggles — so a session serving
//! repeated traffic on the same corpus can build each exactly once.
//! This is the same memoization insight that makes tabling pay off for
//! logic programs: cache the subcomputation keyed by what it actually
//! depends on.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use fremo_trajectory::{DenseMatrix, GroundDistance, LazyDistances};

use crate::bounds::BoundTables;
use crate::config::BoundSelection;
use crate::domain::Domain;

/// Cache key: which distance matrix a computation is over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ScopeKey {
    /// Within one trajectory (upper-triangle matrix).
    Within(usize),
    /// Between two trajectories, in this order.
    Between(usize, usize),
}

/// Cache activity of one query (or cumulative totals on
/// [`super::EngineStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheReport {
    /// Distance matrices computed from scratch.
    pub matrices_built: u64,
    /// Distance matrices served from cache.
    pub matrices_reused: u64,
    /// Bound tables computed from scratch.
    pub tables_built: u64,
    /// Bound tables served from cache.
    pub tables_reused: u64,
}

impl CacheReport {
    /// Total structures recomputed by this query — the number a warm
    /// cache drives to zero.
    #[must_use]
    pub const fn recomputed(&self) -> u64 {
        self.matrices_built + self.tables_built
    }

    /// Total structures served from cache.
    #[must_use]
    pub const fn reused(&self) -> u64 {
        self.matrices_reused + self.tables_reused
    }

    pub(crate) const fn delta_since(&self, earlier: &CacheReport) -> CacheReport {
        CacheReport {
            matrices_built: self.matrices_built - earlier.matrices_built,
            matrices_reused: self.matrices_reused - earlier.matrices_reused,
            tables_built: self.tables_built - earlier.tables_built,
            tables_reused: self.tables_reused - earlier.tables_reused,
        }
    }
}

/// The engine's memo: distance matrices per scope, bound tables per
/// `(scope, ξ, tight?)`.
///
/// [`BoundTables::build`] depends on the selection only through
/// `sel.tight` (the cell/cross/band/end-cross flags gate *lookups*, not
/// table construction), so keying by the flag set would rebuild and
/// store byte-identical tables for every flag combination.
#[derive(Default)]
pub(crate) struct CorpusCache {
    matrices: HashMap<ScopeKey, DenseMatrix>,
    tables: HashMap<(ScopeKey, usize, bool), BoundTables>,
    pub(crate) counters: CacheReport,
}

impl CorpusCache {
    /// The cached (or freshly built) distance matrix for `key`.
    ///
    /// `threads >= 1` builds a cold matrix through the row-chunked
    /// parallel constructors — bit-for-bit identical to the serial build,
    /// so one cached matrix serves serial and parallel queries alike.
    pub(crate) fn matrix<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        threads: usize,
    ) -> &DenseMatrix {
        match self.matrices.entry(key) {
            Entry::Occupied(e) => {
                self.counters.matrices_reused += 1;
                e.into_mut()
            }
            Entry::Vacant(v) => {
                self.counters.matrices_built += 1;
                v.insert(match b {
                    None => DenseMatrix::within_parallel(a, threads),
                    Some(b) => DenseMatrix::between_parallel(a, b, threads),
                })
            }
        }
    }

    /// GTM*'s working set: the cached dense matrix *if one already
    /// exists* (never built — GTM* must not create the `O(n²)`
    /// allocation it avoids) plus the relaxed bound tables, cached and
    /// built from the best available distance source.
    pub(crate) fn gtm_star_prepared<P: GroundDistance>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
    ) -> (Option<&DenseMatrix>, &BoundTables) {
        let tkey = (key, xi, false);
        if self.tables.contains_key(&tkey) {
            self.counters.tables_reused += 1;
        } else {
            let sel = BoundSelection::all_relaxed();
            let t = match self.matrices.get(&key) {
                Some(m) => BoundTables::build(m, domain, xi, sel),
                None => match b {
                    None => BoundTables::build(&LazyDistances::within(a), domain, xi, sel),
                    Some(b) => BoundTables::build(&LazyDistances::between(a, b), domain, xi, sel),
                },
            };
            self.tables.insert(tkey, t);
            self.counters.tables_built += 1;
        }
        let matrix = self.matrices.get(&key);
        if matrix.is_some() {
            self.counters.matrices_reused += 1;
        }
        (matrix, &self.tables[&tkey])
    }

    /// The cached matrix *and* bound tables for `(key, ξ, sel)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        threads: usize,
    ) -> (&DenseMatrix, &BoundTables) {
        let (matrix, tables, _) =
            self.prepared_with_relaxed(key, a, b, domain, xi, sel, false, threads);
        (matrix, tables)
    }

    /// [`CorpusCache::prepared`], optionally also ensuring the *relaxed*
    /// tables GTM's grouping machinery needs when `sel` selects tight
    /// bounds (the third return value; `None` when `sel` is already
    /// relaxed or `want_relaxed` is `false`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepared_with_relaxed<P: GroundDistance + Sync>(
        &mut self,
        key: ScopeKey,
        a: &[P],
        b: Option<&[P]>,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
        want_relaxed: bool,
        threads: usize,
    ) -> (&DenseMatrix, &BoundTables, Option<&BoundTables>) {
        let _ = self.matrix(key, a, b, threads);
        let matrix = &self.matrices[&key];

        let tkey = (key, xi, sel.tight);
        ensure_table(
            &mut self.tables,
            &mut self.counters,
            matrix,
            tkey,
            domain,
            sel,
        );

        let rkey = (key, xi, false);
        if want_relaxed && sel.tight {
            ensure_table(
                &mut self.tables,
                &mut self.counters,
                matrix,
                rkey,
                domain,
                sel.with_tight(false),
            );
        }
        let relaxed = if want_relaxed && sel.tight {
            Some(&self.tables[&rkey])
        } else {
            None
        };
        (matrix, &self.tables[&tkey], relaxed)
    }

    /// Heap bytes held by every cached structure.
    pub(crate) fn bytes(&self) -> usize {
        use fremo_trajectory::DistanceSource as _;
        self.matrices
            .values()
            .map(DenseMatrix::bytes)
            .sum::<usize>()
            + self.tables.values().map(BoundTables::bytes).sum::<usize>()
    }

    /// Drops every cached structure (counters are kept — they are
    /// lifetime totals).
    pub(crate) fn clear(&mut self) {
        self.matrices.clear();
        self.tables.clear();
    }
}

/// Build-or-reuse of one bound-table entry. A free function over the
/// individual fields so callers holding a borrow of `matrices` can still
/// mutate `tables` (disjoint field borrows).
fn ensure_table(
    tables: &mut HashMap<(ScopeKey, usize, bool), BoundTables>,
    counters: &mut CacheReport,
    matrix: &DenseMatrix,
    key: (ScopeKey, usize, bool),
    domain: Domain,
    sel: BoundSelection,
) {
    match tables.entry(key) {
        Entry::Occupied(_) => counters.tables_reused += 1,
        Entry::Vacant(v) => {
            counters.tables_built += 1;
            v.insert(BoundTables::build(matrix, domain, key.1, sel));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_trajectory::gen::planar;

    #[test]
    fn matrix_and_tables_are_built_once() {
        let t = planar::random_walk(40, 0.4, 1);
        let mut cache = CorpusCache::default();
        let key = ScopeKey::Within(0);
        let domain = Domain::Within { n: t.len() };
        let sel = BoundSelection::all_relaxed();

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0);
        assert_eq!(cache.counters.matrices_built, 1);
        assert_eq!(cache.counters.tables_built, 1);
        assert_eq!(cache.counters.reused(), 0);

        let _ = cache.prepared(key, t.points(), None, domain, 3, sel, 0);
        assert_eq!(cache.counters.matrices_built, 1);
        assert_eq!(cache.counters.tables_built, 1);
        assert_eq!(cache.counters.matrices_reused, 1);
        assert_eq!(cache.counters.tables_reused, 1);

        // A different ξ reuses the matrix but needs new tables.
        let _ = cache.prepared(key, t.points(), None, domain, 5, sel, 0);
        assert_eq!(cache.counters.matrices_built, 1);
        assert_eq!(cache.counters.tables_built, 2);

        // Flag-only variants (same `tight`) are warm hits: table
        // construction depends on the selection only through `tight`.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::cell_only(),
            0,
        );
        assert_eq!(cache.counters.tables_built, 2);
        assert_eq!(cache.counters.tables_reused, 2);
        // The tight variant is a genuinely different table.
        let _ = cache.prepared(
            key,
            t.points(),
            None,
            domain,
            3,
            BoundSelection::all_tight(),
            0,
        );
        assert_eq!(cache.counters.tables_built, 3);

        assert!(cache.bytes() > 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn delta_isolates_one_query() {
        let before = CacheReport {
            matrices_built: 2,
            matrices_reused: 1,
            tables_built: 3,
            tables_reused: 4,
        };
        let after = CacheReport {
            matrices_built: 2,
            matrices_reused: 2,
            tables_built: 4,
            tables_reused: 4,
        };
        let d = after.delta_since(&before);
        assert_eq!(d.matrices_built, 0);
        assert_eq!(d.matrices_reused, 1);
        assert_eq!(d.tables_built, 1);
        assert_eq!(d.recomputed(), 1);
        assert_eq!(d.reused(), 1);
    }
}
