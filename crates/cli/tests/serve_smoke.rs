//! Smoke test for `fremo serve`: spawn the real binary, fire pipelined
//! queries at it from many client threads at once, and diff every
//! response against a serial run of the same corpus through the library
//! engine.
//!
//! Eight clients × seven pipelined requests each = 56 concurrent
//! queries over one shared server engine. Responses must arrive in
//! request order per connection (the protocol guarantee), echo their
//! `seq`, and carry results bit-identical to the serial baseline —
//! timing fields (`stats`, `wall_seconds`, `cache`) are the only parts
//! of the schema allowed to differ.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use fremo_cli::commands::outcome_to_json;
use fremo_core::engine::{Engine, ExecutionMode, Query, QueryBuilder, TrajId};
use fremo_trajectory::gen::Dataset;
use serde_json::Value;

const CLIENTS: usize = 8;
const CORPUS: usize = 3;
const N: usize = 64;
const SEED: u64 = 11;

/// The request set every client pipelines, as (request-JSON, label,
/// builder) triples. `seq` is attached per client.
fn request_set(ids: &[TrajId]) -> Vec<(String, &'static str, Query)> {
    let parallel = |b: QueryBuilder| b.execution(ExecutionMode::Parallel { threads: 2 });
    vec![
        (
            r#"{"op":"motif","id":0,"xi":8}"#.into(),
            "motif",
            Query::motif(ids[0]).xi(8).build(),
        ),
        (
            r#"{"op":"motif","id":1,"xi":10,"threads":2}"#.into(),
            "motif",
            parallel(Query::motif(ids[1]).xi(10)).build(),
        ),
        (
            r#"{"op":"topk","id":0,"k":3,"xi":8}"#.into(),
            "topk",
            Query::top_k(ids[0], 3).xi(8).build(),
        ),
        (
            r#"{"op":"motif-between","a":0,"b":2,"xi":8}"#.into(),
            "motif-pair",
            Query::motif_between(ids[0], ids[2]).xi(8).build(),
        ),
        (
            r#"{"op":"join","ids":[0,1,2],"eps":120.0}"#.into(),
            "join",
            Query::join(ids.to_vec(), 120.0).build(),
        ),
        (
            r#"{"op":"cluster","id":2,"window":16,"stride":8,"eps":60.0}"#.into(),
            "cluster",
            Query::cluster(ids[2], 16, 8, 60.0).build(),
        ),
        (
            r#"{"op":"measures","a":1,"b":2,"eps":25.0}"#.into(),
            "compare",
            Query::measures(ids[1], ids[2], 25.0).build(),
        ),
    ]
}

/// Serial baseline: the deterministic part of each expected response.
fn baseline() -> Vec<Value> {
    let engine = Engine::new();
    let ids: Vec<TrajId> =
        engine.register_all((0..CORPUS).map(|i| Dataset::GeoLife.generate(N, SEED + i as u64)));
    request_set(&ids)
        .into_iter()
        .map(|(_, label, query)| {
            let outcome = engine.execute(&query).unwrap();
            deterministic(&outcome_to_json(label, &outcome))
        })
        .collect()
}

/// Strips the timing fields a live server cannot reproduce, keeping
/// everything the determinism guarantee covers.
fn deterministic(response: &Value) -> Value {
    let keep = [
        "query",
        "algorithm",
        "motifs",
        "measures",
        "join",
        "clusters",
        "truncated",
    ];
    match response {
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .filter(|(k, _)| keep.contains(&k.as_str()))
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fremo"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--dataset",
                "geolife",
                "--n",
                &N.to_string(),
                "--count",
                &CORPUS.to_string(),
                "--seed",
                &SEED.to_string(),
                "--max-clients",
                "16",
                "--tenant-queries",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fremo serve");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        let addr = line
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected readiness line {line:?}"))
            .trim()
            .to_string();
        Server { child, addr }
    }

    fn shutdown(mut self) {
        let stream = TcpStream::connect(&self.addr).expect("connect for shutdown");
        let mut writer = stream.try_clone().expect("clone stream");
        writeln!(writer, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("read shutdown ack");
        assert!(response.contains("\"shutdown\":true"), "got {response:?}");
        let status = self.child.wait().expect("server exit status");
        assert!(status.success(), "server exited with {status:?}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Only reached when an assertion failed before `shutdown`.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn pipelined_concurrent_clients_match_the_serial_baseline() {
    let expected = baseline();
    let server = Server::spawn();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let addr = server.addr.clone();
            let expected = &expected;
            scope.spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);

                // Pipeline the full request set in one burst — no
                // waiting for responses in between — with a per-client
                // tenant so the admission gate sees distinct tenants.
                let engine = Engine::new();
                let ids: Vec<TrajId> = engine.register_all(
                    (0..CORPUS).map(|i| Dataset::GeoLife.generate(N, SEED + i as u64)),
                );
                let requests = request_set(&ids);
                let mut burst = String::new();
                for (i, (json, _, _)) in requests.iter().enumerate() {
                    let mut line = json.clone();
                    let insert = format!(r#""seq":{},"tenant":"client-{client}","#, i + 1);
                    line.insert_str(1, &insert);
                    burst.push_str(&line);
                    burst.push('\n');
                }
                writer.write_all(burst.as_bytes()).expect("send burst");
                writer.flush().expect("flush burst");

                for (i, want) in expected.iter().enumerate() {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read response");
                    let response: Value =
                        serde_json::from_str(line.trim()).expect("parse response");
                    assert_eq!(
                        response["ok"].as_bool(),
                        Some(true),
                        "client {client} request {i}: {line}"
                    );
                    assert_eq!(
                        response["seq"].as_u64(),
                        Some(i as u64 + 1),
                        "client {client}: responses out of order"
                    );
                    assert_eq!(
                        &deterministic(&response),
                        want,
                        "client {client} request {i} diverged from serial baseline"
                    );
                }
            });
        }
    });

    server.shutdown();
}

#[test]
fn malformed_requests_get_errors_without_killing_the_connection() {
    let server = Server::spawn();

    let stream = TcpStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut ask = |req: &str| -> Value {
        writeln!(writer, "{req}").expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        serde_json::from_str(line.trim()).expect("parse")
    };

    assert_eq!(ask("this is not json")["ok"].as_bool(), Some(false));
    assert_eq!(ask(r#"{"op":"warp"}"#)["ok"].as_bool(), Some(false));
    assert_eq!(
        ask(r#"{"op":"motif","id":99,"xi":8}"#)["ok"].as_bool(),
        Some(false)
    );
    // The connection survives all of the above.
    let good = ask(r#"{"op":"stats"}"#);
    assert_eq!(good["ok"].as_bool(), Some(true));
    assert_eq!(good["trajectories"].as_u64(), Some(CORPUS as u64));

    server.shutdown();
}
