// L6 clean fixture (linted under a kernel path): exact f64 throughout.

pub fn cell(a: f64, b: f64) -> f64 {
    let scale = 1.5f64;
    a.max(b) * scale
}
