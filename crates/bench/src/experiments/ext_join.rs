//! Extension experiment: DFD similarity join — filter effectiveness and
//! throughput on fleets of synthetic trajectories.

use std::time::Instant;

use fremo_core::similarity_self_join;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::scale::Scale;
use crate::table::{fmt_pct, fmt_secs, Table};
use crate::workload::trajectories;

/// Regenerates the similarity-join table (per dataset, sweeping ε as a
/// fraction of the dataset's spatial extent).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let (count, len) = match scale {
        Scale::Smoke => (10, 80),
        Scale::Default => (40, 200),
        Scale::Full => (100, 500),
    };
    let mut out = Vec::new();

    for dataset in Dataset::ALL {
        let fleet = trajectories(dataset, len, count, 3200);
        let mut table = Table::new(vec![
            "eps (m)", "matches", "filtered", "verified", "time (s)",
        ]);
        for eps in [100.0, 1_000.0, 5_000.0] {
            let t0 = Instant::now();
            let r = similarity_self_join(&fleet, eps);
            let secs = t0.elapsed().as_secs_f64();
            table.row(vec![
                format!("{eps:.0}"),
                r.pairs.len().to_string(),
                fmt_pct(r.pruned_fraction()),
                r.verified.to_string(),
                fmt_secs(secs),
            ]);
        }
        out.push((
            format!("Extension: DFD self-join over {count} × {len}-point {dataset} trajectories"),
            table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert_eq!(out.len(), 3);
    }
}
