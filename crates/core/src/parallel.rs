//! The engine-wide parallel execution layer: multi-threaded processing of
//! the sorted candidate-subset list, shared by BTM, the final stage of
//! GTM/GTM*, and each masked round of the top-k search.
//!
//! ## Why snapshot pruning is exact
//!
//! The paper evaluates single-threaded (Section 6.1); parallelism is an
//! *extension*, but one the paper's own exactness argument licenses. The
//! sorted list of Algorithm 2 parallelizes naturally: workers claim
//! entries in sorted order through an atomic cursor
//! ([`crate::pool::WorkCursor`]), expand them against a *snapshot* of the
//! shared best-so-far, and publish improvements. Pruning stays safe
//! because `bsf` only decreases over time — a stale snapshot is an upper
//! bound on the true best-so-far, so it can only prune *less* than the
//! final value would, never a candidate that could still win. A worker
//! observing a prunable entry may stop outright: the list is sorted, so
//! every entry after it carries an equal or larger bound. Exactness
//! therefore holds under every interleaving; only the amount of wasted
//! work varies (reported as [`SearchStats::subsets_expanded_wasted`]).
//!
//! ## Why the result is *bit-for-bit* the serial result
//!
//! Exact-value equality is not enough for a differential test suite — the
//! *motif indices* must match too, and distinct candidate pairs can tie on
//! the exact same DFD (a shared bottleneck ground distance). The serial
//! scan resolves such ties by order: the winner is the candidate of the
//! **first sorted entry** achieving the minimum, and within a subset the
//! first DP cell (in row-major scan order) achieving the subset minimum.
//! The parallel scan reproduces that rule deterministically:
//!
//! * the shared best-so-far carries the sorted-entry index of its holder,
//!   and publishing merges by `(value, entry index)` lexicographically;
//! * a worker whose snapshot is held by a *later* entry (or by a
//!   group-level upper bound, which has no holder) strips the snapshot's
//!   motif before expanding, which switches [`Bsf`] into its tie-accepting
//!   mode — exactly the state the serial scan would have been in when it
//!   reached this entry.
//!
//! Within a subset the DP scans cells in a fixed order and its pruning
//! (row abandoning, end-cross clamping) can only skip cells that cannot
//! *strictly* improve the current value, so the first cell achieving the
//! subset minimum is found regardless of the incoming snapshot. Together
//! this makes the parallel winner `min_{expanded}(value, entry index)` —
//! precisely the serial winner — for exact searches (`ε = 0`).
//! `(1+ε)`-approximate searches keep their approximation guarantee under
//! parallelism but may legitimately return a different (still
//! within-bound) motif than a serial run.
//!
//! ## Budgets
//!
//! [`SearchBudget`] deadlines and expansion caps are honored inside the
//! worker loop: expansion slots are claimed from a shared atomic counter
//! (so a cap of `k` yields exactly `k` expansions across all workers) and
//! the deadline is checked before every claim. A truncated scan reports
//! `completed = false` and accounts the unexamined remainder as
//! budget-skipped, never as pruned.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};
use parking_lot::Mutex;

use crate::algorithm::MotifDiscovery;
use crate::bounds::BoundTables;
use crate::config::{BoundKind, BoundSelection, MotifConfig};
use crate::domain::Domain;
use crate::dp::{expand_subset_capped, Bsf, DpBuffers};
use crate::pool::{self, WorkCursor};
use crate::result::Motif;
use crate::search::{ListEntry, SearchBudget};
use crate::stats::SearchStats;

/// No cap on `ie`/`je` (plain motif scans; top-k rounds pass real caps).
const NO_CAP: (usize, usize) = (usize::MAX, usize::MAX);

/// Per-subset inclusive `ie`/`je` caps, keyed by `(i, j)` — the top-k
/// masks (see [`crate::topk`]).
pub(crate) type SubsetCaps = HashMap<(u32, u32), (usize, usize)>;

/// The shared best-so-far plus the sorted-entry index of its holder
/// (`usize::MAX` while the value stems from a group upper bound or +∞).
struct SharedBest {
    bsf: Bsf,
    entry_idx: usize,
}

/// Parallel counterpart of [`crate::search::build_entries`]: computes the
/// combined lower bound of every start pair across `threads` workers
/// (chunked round-robin). Each entry is a pure function of its pair, so
/// the list is identical to the serial build, in the same order.
pub(crate) fn build_entries_parallel<D: DistanceSource + Sync>(
    src: &D,
    tables: &BoundTables,
    sel: BoundSelection,
    starts: &[(usize, usize)],
    threads: usize,
) -> Vec<ListEntry> {
    if threads <= 1 || starts.len() < 1024 {
        return crate::search::build_entries(src, tables, sel, starts.iter().copied());
    }
    /// One contiguous slice of output entries plus its start pairs.
    type EntryChunk<'a> = (&'a mut [ListEntry], &'a [(usize, usize)]);
    let mut out = vec![
        ListEntry {
            lb: 0.0,
            i: 0,
            j: 0
        };
        starts.len()
    ];
    let chunk = (starts.len() / (threads * 8)).max(256);
    let mut buckets: Vec<Vec<EntryChunk<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, (oc, sc)) in out.chunks_mut(chunk).zip(starts.chunks(chunk)).enumerate() {
        buckets[k % threads].push((oc, sc));
    }
    crossbeam::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move |_| {
                for (oc, sc) in bucket {
                    for (slot, &(i, j)) in oc.iter_mut().zip(sc) {
                        *slot = ListEntry {
                            lb: tables.subset_bounds(src, sel, i, j).combined(),
                            i: i as u32,
                            j: j as u32,
                        };
                    }
                }
            });
        }
    })
    // fremo-lint: allow(L3) -- crossbeam::scope only errors when a builder
    // worker panicked; propagating the panic is correct.
    .expect("entry builders do not panic");
    out
}

/// Publishes a worker's candidate under the deterministic
/// `(value, entry index)` merge order.
fn publish(shared: &Mutex<SharedBest>, motif: Motif, entry_idx: usize) -> bool {
    let mut g = shared.lock();
    let better = motif.distance < g.bsf.value
        || (motif.distance == g.bsf.value && (g.bsf.motif.is_none() || entry_idx < g.entry_idx));
    if better {
        g.bsf.value = motif.distance;
        g.bsf.motif = Some(motif);
        g.entry_idx = entry_idx;
    }
    better
}

/// Parallel counterpart of [`crate::search::process_sorted_subsets`]:
/// sorts `entries` ascending by bound and expands them across `threads`
/// workers with snapshot pruning and the deterministic merge described in
/// the [module docs](self).
///
/// `caps` supplies the top-k per-subset `ie`/`je` caps (`None` for plain
/// motif scans); `attribute_pruned` controls whether the pruned remainder
/// is attributed to bound families (BTM/GTM semantics) or left uncounted
/// (the masked top-k rounds, matching the serial implementation).
///
/// Returns `false` when `budget` cut the scan short.
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_sorted_subsets_parallel<D: DistanceSource + Sync>(
    src: &D,
    domain: Domain,
    xi: usize,
    sel: BoundSelection,
    tables: &BoundTables,
    entries: &mut [ListEntry],
    caps: Option<&SubsetCaps>,
    bsf: &mut Bsf,
    stats: &mut SearchStats,
    budget: Option<&SearchBudget>,
    threads: usize,
    attribute_pruned: bool,
) -> bool {
    debug_assert!(
        bsf.motif.is_none(),
        "scans start without a concrete pair (value may be a group UB)"
    );
    let threads = threads.max(1);
    crate::search::sort_entries_parallel(entries, threads);
    stats.threads_used = threads;

    let cursor = WorkCursor::new(entries.len());
    let shared = Mutex::new(SharedBest {
        bsf: bsf.clone(),
        entry_idx: usize::MAX,
    });
    let expanded: Vec<AtomicBool> = entries.iter().map(|_| AtomicBool::new(false)).collect();
    let truncated = AtomicBool::new(false);
    // Expansion slots consumed by earlier rounds (top-k) count against
    // the same cap.
    let expansions = AtomicU64::new(stats.subsets_expanded);
    let end_tables = if sel.end_cross { Some(tables) } else { None };

    let worker_stats: Vec<Mutex<SearchStats>> = (0..threads)
        .map(|_| Mutex::new(SearchStats::default()))
        .collect();

    pool::run_workers(threads, |w| {
        let mut local_buf = DpBuffers::with_width(domain.len_b());
        let mut local_stats = SearchStats::default();
        while let Some(idx) = cursor.claim() {
            // relaxed: the flag is monotonic and only hastens a cooperative
            // exit; a stale read costs one extra subset, never correctness.
            if truncated.load(Ordering::Relaxed) {
                break;
            }
            let entry = &entries[idx];
            // Snapshot the shared best-so-far. A holder *later* in the
            // sorted order (or no holder at all) is state the serial scan
            // would not yet have seen at this entry: strip the motif so
            // ties are accepted and pruning stays strict, mirroring the
            // serial first-winner rule (see module docs).
            let (mut local_bsf, holder) = {
                let g = shared.lock();
                (g.bsf.clone(), g.entry_idx)
            };
            if holder > idx {
                local_bsf.motif = None;
            }
            if local_bsf.prunable(entry.lb) {
                // Sorted list: everything after is prunable too.
                break;
            }
            if let Some(b) = budget {
                if b.deadline.is_some_and(|d| Instant::now() >= d) {
                    // relaxed: monotonic flag; readers act on it cooperatively
                    // or after the join barrier below.
                    truncated.store(true, Ordering::Relaxed);
                    break;
                }
                if let Some(cap) = b.max_subsets {
                    // relaxed: fetch_add's atomicity alone caps total claimed
                    // slots at `cap`; no other data rides on the counter.
                    if expansions.fetch_add(1, Ordering::Relaxed) >= cap {
                        // relaxed: monotonic flag, as above.
                        truncated.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            // relaxed: the flags are only *read* after run_workers joins,
            // and thread join gives the needed happens-before edge.
            expanded[idx].store(true, Ordering::Relaxed);
            let (i, j) = (entry.i as usize, entry.j as usize);
            let cap = caps.map_or(NO_CAP, |c| c[&(entry.i, entry.j)]);
            local_stats.subsets_expanded += 1;
            local_stats.pairs_exact += domain.pairs_in_subset_capped(i, j, xi, cap);
            let updates_before = local_stats.bsf_updates;
            expand_subset_capped(
                src,
                domain,
                xi,
                i,
                j,
                cap,
                end_tables,
                true,
                &mut local_bsf,
                &mut local_stats,
                &mut local_buf,
            );
            if local_stats.bsf_updates > updates_before {
                if let Some(m) = local_bsf.motif {
                    publish(&shared, m, idx);
                }
            }
        }
        *worker_stats[w].lock() = local_stats;
    });

    for ws in worker_stats {
        let s = ws.into_inner();
        stats.subsets_expanded += s.subsets_expanded;
        stats.pairs_exact += s.pairs_exact;
        stats.dp_cells += s.dp_cells;
        stats.rows_abandoned += s.rows_abandoned;
        stats.cells_skipped_end_cross += s.cells_skipped_end_cross;
        stats.bsf_updates += s.bsf_updates;
    }

    let shared = shared.into_inner();
    // relaxed: every worker has joined; their stores happen-before this read.
    let completed = !truncated.load(Ordering::Relaxed);
    if completed {
        // Attribute the pruned remainder against the final bsf, and count
        // expansions an oracle scan would have skipped as wasted. The walk
        // re-evaluates a bound per pruned entry — on heavily-pruned
        // workloads it is a real share of the scan — so it fans out too;
        // it only *sums* counters, and integer sums are order-independent,
        // so the totals equal a serial walk's exactly.
        let shared = &shared;
        let walk_cursor = WorkCursor::new(entries.len());
        let walk_stats: Vec<Mutex<SearchStats>> = (0..threads)
            .map(|_| Mutex::new(SearchStats::default()))
            .collect();
        pool::run_workers(threads, |w| {
            let mut local = SearchStats::default();
            while let Some(range) = walk_cursor.claim_chunk(1024) {
                for idx in range {
                    let e = &entries[idx];
                    // relaxed: the scan workers joined before this walk
                    // started, so every `expanded` store is visible.
                    if expanded[idx].load(Ordering::Relaxed) {
                        if idx != shared.entry_idx && shared.bsf.prunable(e.lb) {
                            local.subsets_expanded_wasted += 1;
                        }
                        continue;
                    }
                    if attribute_pruned {
                        let (i, j) = (e.i as usize, e.j as usize);
                        let comps = tables.subset_bounds(src, sel, i, j);
                        let cap = caps.map_or(NO_CAP, |c| c[&(e.i, e.j)]);
                        let pairs = domain.pairs_in_subset_capped(i, j, xi, cap);
                        let kind = comps
                            .attribute(|v| shared.bsf.prunable(v))
                            .unwrap_or(BoundKind::Band);
                        local.record_subset_pruned(kind, pairs);
                        local.subsets_skipped_sorted += 1;
                    }
                }
            }
            *walk_stats[w].lock() = local;
        });
        for ws in walk_stats {
            let s = ws.into_inner();
            stats.subsets_expanded_wasted += s.subsets_expanded_wasted;
            stats.subsets_pruned_cell += s.subsets_pruned_cell;
            stats.subsets_pruned_cross += s.subsets_pruned_cross;
            stats.subsets_pruned_band += s.subsets_pruned_band;
            stats.pairs_pruned_cell += s.pairs_pruned_cell;
            stats.pairs_pruned_cross += s.pairs_pruned_cross;
            stats.pairs_pruned_band += s.pairs_pruned_band;
            stats.subsets_skipped_sorted += s.subsets_skipped_sorted;
        }
    } else {
        // Budget truncation: account the whole unexamined remainder as
        // skipped in O(entries) flag reads — never attributed to bounds,
        // so the pruned fraction stays honest for best-effort results.
        let expanded_count = expanded
            .iter()
            // relaxed: post-join read, same happens-before argument as above.
            .filter(|f| f.load(Ordering::Relaxed))
            .count() as u64;
        stats.subsets_skipped_budget += entries.len() as u64 - expanded_count;
        stats.pairs_skipped_budget += stats.pairs_total.saturating_sub(stats.pairs_accounted());
    }

    // Each worker owns a full-width DP row buffer (the caller's shared
    // serial buffer is untouched by parallel scans) — report their peak
    // footprint so parallel queries don't under-state DP memory.
    stats.bytes_dp = stats
        .bytes_dp
        .max(threads * 2 * domain.len_b() * std::mem::size_of::<f64>());

    *bsf = shared.bsf;
    completed
}

/// BTM with parallel candidate-subset expansion.
///
/// `discover` runs the same machinery as [`crate::Btm`] but scans the
/// sorted candidate list across worker threads; results are bit-for-bit
/// identical to the serial search (see the [module docs](self)). Budgeted
/// and cached parallel searches go through
/// [`crate::engine::Engine`] with
/// [`crate::engine::ExecutionMode::Parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelBtm {
    /// Worker threads; `0` resolves through the global budget
    /// ([`crate::pool::global_threads`], i.e. `FREMO_THREADS` or the
    /// machine's available parallelism).
    pub threads: usize,
}

impl ParallelBtm {
    /// Creates the parallel searcher.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ParallelBtm { threads }
    }

    fn worker_count(&self) -> usize {
        pool::resolve_threads(self.threads)
    }
}

impl Default for ParallelBtm {
    fn default() -> Self {
        ParallelBtm::new(0)
    }
}

impl<P: GroundDistance + Sync> MotifDiscovery<P> for ParallelBtm {
    fn name(&self) -> &'static str {
        "BTM(parallel)"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let threads = self.worker_count();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within_parallel(trajectory.points(), threads);
        let tables = BoundTables::build(&src, domain, config.min_length, config.bounds);
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = crate::btm::Btm::run_prepared(
            &src, &tables, domain, config, 0.0, started, &mut buf, None, threads,
        );
        (motif, stats)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let threads = self.worker_count();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between_parallel(a.points(), b.points(), threads);
        let tables = BoundTables::build(&src, domain, config.min_length, config.bounds);
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = crate::btm::Btm::run_prepared(
            &src, &tables, domain, config, 0.0, started, &mut buf, None, threads,
        );
        (motif, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btm::Btm;
    use fremo_trajectory::gen::planar;

    #[test]
    fn agrees_with_serial_btm_bit_for_bit() {
        for seed in 0..4 {
            let t = planar::random_walk(90, 0.4, seed);
            let cfg = MotifConfig::new(5);
            let serial = Btm.discover(&t, &cfg).unwrap();
            for threads in [1, 2, 4] {
                let par = ParallelBtm::new(threads).discover(&t, &cfg).unwrap();
                assert_eq!(
                    par.distance.to_bits(),
                    serial.distance.to_bits(),
                    "seed {seed} threads {threads}: {} vs {}",
                    par.distance,
                    serial.distance
                );
                assert_eq!(par.first, serial.first, "seed {seed} threads {threads}");
                assert_eq!(par.second, serial.second, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn agrees_between_trajectories() {
        let a = planar::random_walk(60, 0.4, 9);
        let b = planar::random_walk(50, 0.4, 10);
        let cfg = MotifConfig::new(4);
        let serial = Btm.discover_between(&a, &b, &cfg).unwrap();
        let par = ParallelBtm::default()
            .discover_between(&a, &b, &cfg)
            .unwrap();
        assert_eq!(par.distance.to_bits(), serial.distance.to_bits());
        assert_eq!((par.first, par.second), (serial.first, serial.second));
    }

    #[test]
    fn accounting_remains_complete() {
        let t = planar::random_walk(80, 0.4, 12);
        let cfg = MotifConfig::new(5);
        let (_, stats) = ParallelBtm::new(3).discover_with_stats(&t, &cfg);
        assert_eq!(stats.pairs_accounted(), stats.pairs_total);
        assert_eq!(
            stats.subsets_expanded + stats.subsets_skipped_sorted,
            stats.subsets_total
        );
        assert_eq!(stats.threads_used, 3);
    }
}
