// L5 firing fixture: allow attributes with no recorded reason.

#[allow(dead_code)]
fn helper() {}

#[allow(clippy::too_many_arguments)]
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}
