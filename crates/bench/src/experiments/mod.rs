//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment exposes `run(scale) -> Vec<(String, Table)>`: a list of
//! titled tables matching the paper's sub-plots. The `src/bin/*` binaries
//! print them; integration tests run them at smoke scale.

pub mod ext_approx;
pub mod ext_join;
pub mod ext_parallel;
pub mod ext_topk;
pub mod fig02_ed_vs_dfd;
pub mod fig03_dtw_vs_dfd;
pub mod fig13_tight_vs_relaxed;
pub mod fig14_tight_vs_relaxed_xi;
pub mod fig15_pruning_breakdown;
pub mod fig16_bound_combos;
pub mod fig17_group_size;
pub mod fig18_time_vs_n;
pub mod fig19_space;
pub mod fig20_time_vs_xi;
pub mod fig21_cross_trajectory;
pub mod table1_measures;

use crate::table::Table;

/// A titled table, one per sub-plot of a figure.
pub type Titled = (String, Table);

/// Prints a full experiment (title banner + tables).
pub fn print_all(name: &str, tables: &[Titled]) {
    println!("== {name} ==");
    for (title, table) in tables {
        println!("\n-- {title} --");
        table.print();
    }
}
