//! Regenerates the ext_approx extension experiment.
use fremo_bench::experiments::{ext_approx, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = ext_approx::run(scale);
    print_all("ext_approx", &tables);
}
