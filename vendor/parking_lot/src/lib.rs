//! Minimal, API-compatible subset of `parking_lot`, vendored so the
//! workspace builds offline. [`Mutex`] wraps `std::sync::Mutex` with
//! parking_lot's panic-free surface: `lock()` returns the guard directly
//! (poisoning is transparently recovered, matching parking_lot's semantics
//! of not poisoning at all) and `into_inner()` returns the value directly.
//!
//! Swap the path dependency for crates.io `parking_lot = "0.12"` once
//! network access is available.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};

/// A mutex that never poisons (shim over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons (shim over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
