//! Figure 13: BTM with tight vs relaxed bounds, varying trajectory length.
//!
//! Two sub-plots: (a) pruning ratio, (b) response time, both vs `n` with
//! `ξ` fixed. Expected shape (paper Section 6.2.1): relaxed bounds are
//! only slightly weaker in pruning power but much faster overall. Note
//! that our tight bounds are computed in `O(n²)` total via the recurrence
//! described in `fremo-core::bounds`, so the time gap is narrower than the
//! paper's `O(ξn³)` evaluation — the ordering is preserved.

use fremo_core::{BoundSelection, MotifConfig};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_pct, fmt_secs, Table};
use crate::workload::trajectories;

fn measure(dataset: Dataset, n: usize, xi: usize, sel: BoundSelection, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi).with_bounds(sel);
    let ts = trajectories(dataset, n, reps, 1300);
    let ms: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Btm, t, &cfg).0)
        .collect();
    average(&ms)
}

/// Regenerates Figure 13 (GeoLife-like, ξ fixed).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let xi = scale.default_xi();
    let reps = scale.repetitions();

    let mut prune = Table::new(vec!["n", "Tight", "Relaxed"]);
    let mut time = Table::new(vec!["n", "Tight (s)", "Relaxed (s)"]);
    for &n in scale.lengths() {
        let tight = measure(Dataset::GeoLife, n, xi, BoundSelection::all_tight(), reps);
        let relaxed = measure(Dataset::GeoLife, n, xi, BoundSelection::all_relaxed(), reps);
        assert_eq!(
            tight.distance, relaxed.distance,
            "tight and relaxed disagree on the motif at n={n}"
        );
        prune.row(vec![
            n.to_string(),
            fmt_pct(tight.pruned_fraction),
            fmt_pct(relaxed.pruned_fraction),
        ]);
        time.row(vec![
            n.to_string(),
            fmt_secs(tight.seconds),
            fmt_secs(relaxed.seconds),
        ]);
    }

    vec![
        (
            format!("Figure 13(a): pruning ratio vs n (xi={xi}, GeoLife-like)"),
            prune,
        ),
        (
            format!("Figure 13(b): response time vs n (xi={xi}, GeoLife-like)"),
            time,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_prunes_at_least_as_much_as_relaxed() {
        let tight = measure(Dataset::GeoLife, 150, 10, BoundSelection::all_tight(), 2);
        let relaxed = measure(Dataset::GeoLife, 150, 10, BoundSelection::all_relaxed(), 2);
        assert_eq!(tight.distance, relaxed.distance);
        assert!(
            tight.pruned_fraction >= relaxed.pruned_fraction - 1e-9,
            "tight {} < relaxed {}",
            tight.pruned_fraction,
            relaxed.pruned_fraction
        );
    }
}
