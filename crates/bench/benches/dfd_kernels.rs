//! DFD kernel micro-benchmarks: full-matrix vs linear-space vs decision
//! variant (the `O(ℓ²)` cost column of Table 1, and the kernel every motif
//! search amortizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_similarity::{dfd_decision, dfd_linear, dfd_with_coupling};
use fremo_trajectory::gen::planar;

fn bench_dfd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfd");
    for len in [64usize, 256, 1024] {
        let a = planar::random_walk(len, 0.4, 1);
        let b = planar::random_walk(len, 0.4, 2);
        group.bench_with_input(BenchmarkId::new("linear_space", len), &len, |bch, _| {
            bch.iter(|| {
                dfd_linear(
                    std::hint::black_box(a.points()),
                    std::hint::black_box(b.points()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("with_coupling", len), &len, |bch, _| {
            bch.iter(|| {
                dfd_with_coupling(
                    std::hint::black_box(a.points()),
                    std::hint::black_box(b.points()),
                )
            })
        });
        let eps = dfd_linear(a.points(), b.points());
        group.bench_with_input(
            BenchmarkId::new("decision_tight_eps", len),
            &len,
            |bch, _| {
                bch.iter(|| {
                    dfd_decision(
                        std::hint::black_box(a.points()),
                        std::hint::black_box(b.points()),
                        eps,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decision_small_eps", len),
            &len,
            |bch, _| {
                bch.iter(|| {
                    dfd_decision(
                        std::hint::black_box(a.points()),
                        std::hint::black_box(b.points()),
                        eps * 0.25,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dfd);
criterion_main!(benches);
