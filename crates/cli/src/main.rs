//! Thin binary wrapper over the `fremo_cli` library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match fremo_cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
