//! Lower-bound machinery (Sections 4.2–4.3 of the paper).
//!
//! Every bound here is *safe*: it never exceeds the DFD of any candidate it
//! is applied to, so pruning with it cannot discard the motif. Two variants
//! exist, mirroring the paper:
//!
//! * **Tight** bounds (Section 4.2) use per-subset index ranges — stronger,
//!   but require `O(n²)` extra tables (see note below).
//! * **Relaxed** bounds (Section 4.3) replace the ranges with full-row /
//!   full-column minima `Rmin`/`Cmin`, making each evaluation `O(1)` after
//!   an `O(n²)` precomputation shared with the distance matrix scan.
//!
//! ## Soundness fix vs. the paper (end-cross bound)
//!
//! Eq. 9 defines the tight end-cross bound at cell `(ie, je)` with a row
//! term over columns `[ie, je−1]`. A monotone path from start `(i, j)` to an
//! end `(ic, jc)` with `jc > je` crosses row `je+1` at *some* column in
//! `[i, ic]` — possibly left of `ie` — so the row term as published is not
//! individually a lower bound, and `max(row, col)` is only valid when both
//! terms are. We widen the tight row term to columns `[i, ie_max(je)]`
//! (i.e. `LB_row(i, je)`) and the column term to rows `[j, je_max]`
//! (`LB_col(ie, j)`), which restores individual validity; the relaxed
//! variants use full-range minima and are sound as published. Property
//! tests in `tests/bounds_safety.rs` exercise exactly this distinction.
//!
//! ## Complexity note (tight bounds)
//!
//! The paper evaluates tight bounds per candidate subset at `O(n)` (cross)
//! and `O(ξn)` (band) apiece — `O(ξn³)` overall. We observe that
//! `LB_row(i, j) = min(dG(i, j+1), LB_row(i+1, j))` (and symmetrically for
//! `LB_col`), so *all* tight cross bounds fill two `O(n²)` tables in
//! `O(n²)` time, and the band bounds follow by sliding-window maxima in
//! another `O(n²)`. Tight stays measurably slower and hungrier than relaxed
//! (4 extra `n²` tables), but the asymptotic gap the paper reports narrows;
//! `EXPERIMENTS.md` discusses the effect on Figure 13/14.

use fremo_trajectory::matrix::sliding_window_max;
use fremo_trajectory::{DistanceSource, RowColMins};

use crate::config::{BoundKind, BoundSelection};
use crate::domain::Domain;

/// Per-subset bound components (already gated by the active
/// [`BoundSelection`]; disabled families report `NEG_INFINITY` so they
/// never win the max).
#[derive(Debug, Clone, Copy)]
pub struct SubsetBounds {
    /// `LB_cell` component.
    pub cell: f64,
    /// Cross component (start cross).
    pub cross: f64,
    /// Band component.
    pub band: f64,
}

impl SubsetBounds {
    /// The combined bound `CS_{i,j}.LB` (Section 4.4): max of the enabled
    /// components.
    #[must_use]
    pub fn combined(&self) -> f64 {
        self.cell.max(self.cross).max(self.band)
    }

    /// Attributes a pruning decision to the first family (cell → cross →
    /// band, the paper's Figure 15 convention) whose component alone
    /// satisfies `prune`.
    pub fn attribute(&self, mut prune: impl FnMut(f64) -> bool) -> Option<BoundKind> {
        if prune(self.cell) {
            Some(BoundKind::Cell)
        } else if prune(self.cross) {
            Some(BoundKind::Cross)
        } else if prune(self.band) {
            Some(BoundKind::Band)
        } else {
            None
        }
    }
}

/// Precomputed bound tables: relaxed (`Rmin`/`Cmin` + band windows) or
/// tight (full `LB_row`/`LB_col` matrices + band windows).
pub enum BoundTables {
    /// Relaxed `O(1)` bounds of Section 4.3.
    Relaxed(RelaxedTables),
    /// Tight bounds of Section 4.2.
    Tight(TightTables),
}

impl BoundTables {
    /// Builds the tables demanded by `sel` for the given domain.
    #[must_use]
    pub fn build<D: DistanceSource>(
        src: &D,
        domain: Domain,
        xi: usize,
        sel: BoundSelection,
    ) -> Self {
        if sel.tight {
            BoundTables::Tight(TightTables::build(src, domain, xi))
        } else {
            BoundTables::Relaxed(RelaxedTables::build(src, domain, xi))
        }
    }

    /// Bound components for candidate subset `CS_{i,j}`.
    #[must_use]
    pub fn subset_bounds<D: DistanceSource>(
        &self,
        src: &D,
        sel: BoundSelection,
        i: usize,
        j: usize,
    ) -> SubsetBounds {
        let cell = if sel.cell {
            src.get(i, j)
        } else {
            f64::NEG_INFINITY
        };
        let (cross, band) = match self {
            BoundTables::Relaxed(t) => (
                if sel.cross {
                    t.cross(i, j)
                } else {
                    f64::NEG_INFINITY
                },
                if sel.band {
                    t.band(i, j)
                } else {
                    f64::NEG_INFINITY
                },
            ),
            BoundTables::Tight(t) => (
                if sel.cross {
                    t.cross(i, j)
                } else {
                    f64::NEG_INFINITY
                },
                if sel.band {
                    t.band(i, j)
                } else {
                    f64::NEG_INFINITY
                },
            ),
        };
        SubsetBounds { cell, cross, band }
    }

    /// End-cross bound for DP cell `(ie, je)` of subset `CS_{i,j}`
    /// (Eq. 9 / Eq. 13, with the widened-and-sound tight ranges described in
    /// the module docs). Valid as a lower bound for every candidate of the
    /// subset with `ic > ie` **and** `jc > je`.
    #[must_use]
    pub fn end_cross(&self, i: usize, j: usize, ie: usize, je: usize) -> f64 {
        match self {
            BoundTables::Relaxed(t) => t.end_cross(ie, je),
            BoundTables::Tight(t) => t.end_cross(i, j, ie, je),
        }
    }

    /// Heap bytes held by the tables.
    #[must_use]
    pub fn bytes(&self) -> usize {
        match self {
            BoundTables::Relaxed(t) => t.bytes(),
            BoundTables::Tight(t) => t.bytes(),
        }
    }

    /// Borrows the relaxed tables when this is the relaxed variant (used by
    /// the grouping machinery, which always works on relaxed arrays).
    #[must_use]
    pub fn as_relaxed(&self) -> Option<&RelaxedTables> {
        match self {
            BoundTables::Relaxed(t) => Some(t),
            BoundTables::Tight(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Relaxed bounds (Section 4.3)
// ---------------------------------------------------------------------------

/// Relaxed bound arrays.
///
/// With `row_min[b]` the minimum of matrix row `b` and `col_min[a]` of
/// column `a` (region-restricted), the bounds are:
///
/// * `rLB_cross(i, j)   = max(col_min[i+1], row_min[j+1])` (Eq. 12),
/// * `rLB_band_row(j)   = max_{j'∈[j+1, j+ξ]} row_min[j']` (Eq. 14),
/// * `rLB_band_col(i)   = max_{i'∈[i+1, i+ξ]} col_min[i']` (Eq. 15),
/// * `rLB_cross_end(ie, je) = max(col_min[ie+1], row_min[je+1])` (Eq. 13).
pub struct RelaxedTables {
    mins: RowColMins,
    /// `band_row[j] = max_{j'∈[j+1, j+ξ]} row_min[j']` (window truncated at
    /// the array end, which only weakens the bound — safe).
    band_row: Vec<f64>,
    /// `band_col[i] = max_{i'∈[i+1, i+ξ]} col_min[i']`.
    band_col: Vec<f64>,
}

impl RelaxedTables {
    /// Scans the distance source once (`O(n·m)`) and derives all arrays.
    #[must_use]
    pub fn build<D: DistanceSource>(src: &D, domain: Domain, xi: usize) -> Self {
        let mins = RowColMins::compute(src, domain.region());
        Self::from_mins(mins, xi)
    }

    /// Builds the band windows from existing row/column minima.
    #[must_use]
    pub fn from_mins(mins: RowColMins, xi: usize) -> Self {
        // Shift by one so band_row[j] windows row_min[j+1 ..= j+ξ].
        let shifted_rows: Vec<f64> = mins.row_mins().iter().skip(1).copied().collect();
        let shifted_cols: Vec<f64> = mins.col_mins().iter().skip(1).copied().collect();
        let band_row = if shifted_rows.is_empty() {
            Vec::new()
        } else {
            sliding_window_max(&shifted_rows, xi.max(1))
        };
        let band_col = if shifted_cols.is_empty() {
            Vec::new()
        } else {
            sliding_window_max(&shifted_cols, xi.max(1))
        };
        RelaxedTables {
            mins,
            band_row,
            band_col,
        }
    }

    /// `rLB_cross^start(i, j)`.
    #[inline]
    #[must_use]
    pub fn cross(&self, i: usize, j: usize) -> f64 {
        self.mins.col_min(i + 1).max(self.mins.row_min(j + 1))
    }

    /// `max(rLB_band^row(j), rLB_band^col(i))`.
    #[inline]
    #[must_use]
    pub fn band(&self, i: usize, j: usize) -> f64 {
        let r = self.band_row.get(j).copied().unwrap_or(f64::NEG_INFINITY);
        let c = self.band_col.get(i).copied().unwrap_or(f64::NEG_INFINITY);
        r.max(c)
    }

    /// `rLB_cross^end(ie, je)`.
    #[inline]
    #[must_use]
    pub fn end_cross(&self, ie: usize, je: usize) -> f64 {
        self.mins.col_min(ie + 1).max(self.mins.row_min(je + 1))
    }

    /// The underlying row/column minima.
    #[must_use]
    pub fn mins(&self) -> &RowColMins {
        &self.mins
    }

    /// `rLB_band^row(j)` alone (used by the group-level bounds).
    #[inline]
    #[must_use]
    pub fn band_row(&self, j: usize) -> f64 {
        self.band_row.get(j).copied().unwrap_or(f64::NEG_INFINITY)
    }

    /// `rLB_band^col(i)` alone (used by the group-level bounds).
    #[inline]
    #[must_use]
    pub fn band_col(&self, i: usize) -> f64 {
        self.band_col.get(i).copied().unwrap_or(f64::NEG_INFINITY)
    }

    /// Heap bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.mins.bytes()
            + (self.band_row.capacity() + self.band_col.capacity()) * std::mem::size_of::<f64>()
    }
}

// ---------------------------------------------------------------------------
// Tight bounds (Section 4.2)
// ---------------------------------------------------------------------------

/// Tight bound matrices.
///
/// `lb_row[i·m + j] = LB_row(i, j) = min_{a∈[i, ie_max(j)]} dG(a, j+1)`
/// (row-major: per-`i` slices are contiguous in `j`), and
/// `lb_col[j·n + i] = LB_col(i, j) = min_{b∈[j, je_max]} dG(i+1, b)`
/// (column-major: per-`j` slices contiguous in `i`). Band matrices hold the
/// window maxima of Eq. 5–6.
pub struct TightTables {
    n: usize,
    m: usize,
    lb_row: Vec<f64>,
    lb_col: Vec<f64>,
    band_row: Vec<f64>,
    band_col: Vec<f64>,
}

impl TightTables {
    /// Fills all four matrices in `O(n·m)`.
    #[must_use]
    pub fn build<D: DistanceSource>(src: &D, domain: Domain, xi: usize) -> Self {
        let n = domain.len_a();
        let m = domain.len_b();
        let mut lb_row = vec![f64::INFINITY; n * m];
        let mut lb_col = vec![f64::INFINITY; n * m];

        // LB_row(i, j) = min(dG(i, j+1), LB_row(i+1, j)), downward from
        // i = ie_max(j).
        for j in 0..m.saturating_sub(1) {
            if matches!(domain, Domain::Within { .. }) && j == 0 {
                continue; // LB_row's range [i, j−1] is empty at j = 0
            }
            let ie_max = domain.ie_max(j).min(n.saturating_sub(1));
            let mut acc = f64::INFINITY;
            for i in (0..=ie_max).rev() {
                acc = acc.min(src.get(i, j + 1));
                lb_row[i * m + j] = acc;
            }
        }

        // LB_col(i, j) = min(dG(i+1, j), LB_col(i, j+1)), leftward from
        // j = m−1.
        for i in 0..n.saturating_sub(1) {
            let mut acc = f64::INFINITY;
            for j in (0..m).rev() {
                acc = acc.min(src.get(i + 1, j));
                lb_col[j * n + i] = acc;
            }
        }

        // Band windows (Eq. 5–6) via sliding-window maxima.
        let win = xi.max(1);
        let mut band_row = vec![f64::NEG_INFINITY; n * m];
        for i in 0..n {
            let row = &lb_row[i * m..(i + 1) * m];
            // Guard: sliding max over a slice full of +∞ would fabricate a
            // pruning bound; +∞ entries mean "no valid cells", and the max
            // of a window containing them must stay usable only where the
            // subset itself is valid. We keep them — call sites only query
            // (i, j) of non-empty subsets, whose windows hold finite values
            // (every row j+1..j+ξ has valid cells there).
            band_row[i * m..(i + 1) * m].copy_from_slice(&sliding_window_max(row, win));
        }
        let mut band_col = vec![f64::NEG_INFINITY; n * m];
        for j in 0..m {
            let col = &lb_col[j * n..(j + 1) * n];
            band_col[j * n..(j + 1) * n].copy_from_slice(&sliding_window_max(col, win));
        }

        TightTables {
            n,
            m,
            lb_row,
            lb_col,
            band_row,
            band_col,
        }
    }

    /// `LB_cross^start(i, j)` (Eq. 4).
    #[inline]
    #[must_use]
    pub fn cross(&self, i: usize, j: usize) -> f64 {
        let r = self.lb_row[i * self.m + j];
        let c = self.lb_col[j * self.n + i];
        finite_max(r, c)
    }

    /// `max(LB_band^row(i,j), LB_band^col(i,j))` (Eq. 5–6).
    #[inline]
    #[must_use]
    pub fn band(&self, i: usize, j: usize) -> f64 {
        let r = self.band_row[i * self.m + j];
        let c = self.band_col[j * self.n + i];
        finite_max(r, c)
    }

    /// Sound tight end-cross bound at `(ie, je)` for subset `CS_{i,j}`:
    /// `max(LB_row(i, je), LB_col(ie, j))` (see module docs).
    #[inline]
    #[must_use]
    pub fn end_cross(&self, i: usize, j: usize, ie: usize, je: usize) -> f64 {
        let r = self
            .lb_row
            .get(i * self.m + je)
            .copied()
            .unwrap_or(f64::INFINITY);
        let c = self
            .lb_col
            .get(j * self.n + ie)
            .copied()
            .unwrap_or(f64::INFINITY);
        // +∞ here means "no cell beyond in that direction", i.e. nothing to
        // protect — pruning the (empty) remainder is correct.
        r.max(c)
    }

    /// Heap bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.lb_row.capacity()
            + self.lb_col.capacity()
            + self.band_row.capacity()
            + self.band_col.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Max that treats `+∞` as "no information" (empty range) rather than "prune
/// everything": if either side is `+∞`, fall back to the other; if both,
/// report `−∞` (no bound).
#[inline]
fn finite_max(a: f64, b: f64) -> f64 {
    match (a.is_finite(), b.is_finite()) {
        (true, true) => a.max(b),
        (true, false) => a,
        (false, true) => b,
        (false, false) => f64::NEG_INFINITY,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use fremo_trajectory::DenseMatrix;

    /// The paper's Figure 5 example matrix (12 points, upper triangle).
    /// `figure5()[a][b]` for a < b; symmetric closure applied.
    pub(crate) fn figure5() -> DenseMatrix {
        // Row r of the figure lists dG(c, r) for columns c = 0..r (the
        // figure's vertical axis is the second index). Transcribed top-down
        // from the figure: row index b = 11 down to 1.
        let rows: [(usize, &[f64]); 11] = [
            (11, &[8.0, 7.0, 6.0, 5.0, 9.0, 7.0, 7.0, 3.0, 3.0, 2.0, 9.0]),
            (10, &[5.0, 6.0, 7.0, 6.0, 8.0, 6.0, 6.0, 6.0, 8.0, 1.0]),
            (9, &[2.0, 2.0, 4.0, 1.0, 7.0, 6.0, 8.0, 7.0, 7.0]),
            (8, &[3.0, 1.0, 1.0, 2.0, 5.0, 7.0, 3.0, 4.0]),
            (7, &[1.0, 3.0, 2.0, 3.0, 6.0, 5.0, 6.0]),
            (6, &[1.0, 2.0, 3.0, 2.0, 5.0, 9.0]),
            (5, &[3.0, 4.0, 5.0, 6.0, 4.0]),
            (4, &[3.0, 5.0, 3.0, 2.0]),
            (3, &[2.0, 1.0, 5.0]),
            (2, &[2.0, 3.0]),
            (1, &[1.0]),
        ];
        let n = 12;
        let mut data = vec![0.0; n * n];
        for (b, vals) in rows {
            for (a, &v) in vals.iter().enumerate() {
                data[a * n + b] = v;
                data[b * n + a] = v;
            }
        }
        DenseMatrix::from_raw(n, n, data)
    }

    #[test]
    fn figure5_spot_checks() {
        let m = figure5();
        // From the paper's examples: dG(5, 9) = 6 (LB_cell example).
        assert_eq!(m.get(5, 9), 6.0);
        // dF(0,3,6,9) example uses dG values: dG(0,6)=1, dG(3,9)=1.
        assert_eq!(m.get(0, 6), 1.0);
        assert_eq!(m.get(3, 9), 1.0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn paper_example_cross_bound() {
        // LB_cross^start(4, 8) = max(min_{i'∈[4,7]} dG(i', 9),
        //                            min_{j'∈[8,11]} dG(5, j')) = max(6,6) = 6
        let m = figure5();
        let domain = Domain::Within { n: 12 };
        let t = TightTables::build(&m, domain, 4);
        // LB_row(4, 8) = min over a∈[4, 7] of dG(a, 9) = min(7,6,8,7) = 6.
        assert_eq!(t.lb_row[4 * 12 + 8], 6.0);
        // LB_col(4, 8) = min over b∈[8,11] of dG(5, b) = min(7,6,6,7) = 6.
        assert_eq!(t.lb_col[8 * 12 + 4], 6.0);
        assert_eq!(t.cross(4, 8), 6.0);
    }

    #[test]
    fn paper_example_band_bounds() {
        // ξ = 4, n = 12: LB_band^row(1, 6) = max over rows 7..10 of
        // LB_row(1, ·) = max(2, 1, 1, 6) = 6.
        let m = figure5();
        let domain = Domain::Within { n: 12 };
        let t = TightTables::build(&m, domain, 4);
        // LB_row(1, 6) = min_{a∈[1,5]} dG(a, 7) = min(3,2,3,6,5) = 2.
        assert_eq!(t.lb_row[12 + 6], 2.0);
        assert_eq!(t.lb_row[12 + 7], 1.0);
        assert_eq!(t.lb_row[12 + 8], 1.0);
        assert_eq!(t.lb_row[12 + 9], 6.0);
        assert_eq!(t.band_row[12 + 6], 6.0);

        // LB_band^col(1, 8) = max over columns 2..5 of LB_col(·, 8)
        //                   = max(1, 1, 5, 6) = 6.
        assert_eq!(t.lb_col[8 * 12 + 1], 1.0); // column 2 min from row 8
        assert_eq!(t.lb_col[8 * 12 + 2], 1.0);
        assert_eq!(t.lb_col[8 * 12 + 3], 5.0);
        assert_eq!(t.lb_col[8 * 12 + 4], 6.0);
        assert_eq!(t.band_col[8 * 12 + 1], 6.0);
    }

    #[test]
    fn relaxed_never_exceeds_tight() {
        // Lemma 2: rLB ≤ LB for cross and band, everywhere.
        // The containment Rmin ⊆ tight-range only holds at subsets valid
        // for the ξ the tables were built with (j ≥ i+ξ+2).
        let m = figure5();
        let domain = Domain::Within { n: 12 };
        let xi = 2;
        let tight = TightTables::build(&m, domain, xi);
        let relaxed = RelaxedTables::build(&m, domain, xi);
        for (i, j) in domain.subsets(xi) {
            assert!(
                relaxed.cross(i, j) <= tight.cross(i, j) + 1e-12,
                "cross relaxed > tight at ({i},{j})"
            );
            let tb = tight.band(i, j);
            if tb.is_finite() {
                assert!(
                    relaxed.band(i, j) <= tb + 1e-12,
                    "band relaxed > tight at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn subset_bounds_respect_selection() {
        let m = figure5();
        let domain = Domain::Within { n: 12 };
        let tables = BoundTables::build(&m, domain, 2, BoundSelection::all_relaxed());
        let full = tables.subset_bounds(&m, BoundSelection::all_relaxed(), 0, 6);
        assert_eq!(full.cell, m.get(0, 6));
        assert!(full.cross.is_finite());

        let cell_only = tables.subset_bounds(&m, BoundSelection::cell_only(), 0, 6);
        assert_eq!(cell_only.cell, m.get(0, 6));
        assert_eq!(cell_only.cross, f64::NEG_INFINITY);
        assert_eq!(cell_only.band, f64::NEG_INFINITY);
        assert_eq!(cell_only.combined(), m.get(0, 6));

        let none = tables.subset_bounds(&m, BoundSelection::none(), 0, 6);
        assert_eq!(none.combined(), f64::NEG_INFINITY);
    }

    #[test]
    fn attribution_order_is_cell_cross_band() {
        let b = SubsetBounds {
            cell: 5.0,
            cross: 7.0,
            band: 9.0,
        };
        assert_eq!(b.attribute(|v| v >= 5.0), Some(BoundKind::Cell));
        assert_eq!(b.attribute(|v| v >= 6.0), Some(BoundKind::Cross));
        assert_eq!(b.attribute(|v| v >= 8.0), Some(BoundKind::Band));
        assert_eq!(b.attribute(|v| v >= 10.0), None);
    }

    #[test]
    fn finite_max_conventions() {
        assert_eq!(finite_max(1.0, 2.0), 2.0);
        assert_eq!(finite_max(f64::INFINITY, 2.0), 2.0);
        assert_eq!(finite_max(1.0, f64::INFINITY), 1.0);
        assert_eq!(finite_max(f64::INFINITY, f64::INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn bytes_are_reported() {
        let m = figure5();
        let domain = Domain::Within { n: 12 };
        let t = BoundTables::build(&m, domain, 2, BoundSelection::all_tight());
        assert!(t.bytes() >= 4 * 144 * 8);
        let r = BoundTables::build(&m, domain, 2, BoundSelection::all_relaxed());
        assert!(r.bytes() > 0);
        assert!(r.bytes() < t.bytes());
        assert!(r.as_relaxed().is_some());
        assert!(t.as_relaxed().is_none());
    }
}
