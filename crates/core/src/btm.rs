//! `BTM` (Algorithm 2): bounding-based trajectory motif discovery.
//!
//! Computes an `O(1)` lower bound per candidate subset, sorts all subsets
//! ascending by bound (best-first), and expands them until the best-so-far
//! prunes the rest. Within an expanded subset the end-cross bound clamps
//! the DP (lines 12–13). Two orders of magnitude faster than
//! Algorithm 1 in the paper's evaluation.

use std::time::Instant;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};

use crate::algorithm::MotifDiscovery;
use crate::bounds::BoundTables;
use crate::config::MotifConfig;
use crate::domain::Domain;
use crate::dp::{Bsf, DpBuffers};
use crate::result::Motif;
use crate::search::{build_entries, list_bytes, process_sorted_subsets, SearchBudget};
use crate::stats::SearchStats;

/// The bounding-based solution of Algorithm 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct Btm;

impl Btm {
    pub(crate) fn run<D: DistanceSource + Sync>(
        src: &D,
        domain: Domain,
        config: &MotifConfig,
        epsilon: f64,
        started: Instant,
    ) -> (Option<Motif>, SearchStats) {
        let tables = BoundTables::build(src, domain, config.min_length, config.bounds);
        let mut buf = DpBuffers::with_width(domain.len_b());
        let (motif, stats, _) = Self::run_prepared(
            src, &tables, domain, config, epsilon, started, &mut buf, None, 0,
        );
        (motif, stats)
    }

    /// Algorithm 2 over prebuilt bound tables and an external DP buffer —
    /// the entry point used by [`crate::engine::Engine`] so repeated
    /// queries on the same trajectory skip the `O(n²)` precomputation.
    /// `threads == 0` runs the serial scan on the caller's thread;
    /// `threads >= 1` scans the sorted list through the parallel
    /// execution layer ([`crate::parallel`]) with that many workers
    /// (one worker runs inline but exercises the same code path) —
    /// bit-for-bit the serial result either way.
    ///
    /// The third return value is `false` when `budget` truncated the scan.
    // lint: internal search-kernel entry threading prepared state; a
    // param struct would churn every call site without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_prepared<D: DistanceSource + Sync>(
        src: &D,
        tables: &BoundTables,
        domain: Domain,
        config: &MotifConfig,
        epsilon: f64,
        started: Instant,
        buf: &mut DpBuffers,
        budget: Option<&SearchBudget>,
        threads: usize,
    ) -> (Option<Motif>, SearchStats, bool) {
        let xi = config.min_length;
        let sel = config.bounds;

        let mut entries = if threads > 1 {
            // The O(#subsets) bound evaluations are a real share of the
            // precompute; fan them out (the list is identical to the
            // serial build — each entry is a pure function of its pair).
            let starts: Vec<(usize, usize)> = domain.subsets(xi).collect();
            crate::parallel::build_entries_parallel(src, tables, sel, &starts, threads)
        } else {
            build_entries(src, tables, sel, domain.subsets(xi))
        };

        let mut stats = SearchStats {
            bytes_distance_matrix: src.bytes(),
            bytes_bounds: tables.bytes(),
            bytes_lists: list_bytes(&entries),
            subsets_total: entries.len() as u64,
            pairs_total: domain.pairs_count(xi),
            precompute_seconds: started.elapsed().as_secs_f64(),
            ..SearchStats::default()
        };

        let mut bsf = Bsf::approximate(epsilon);
        let completed = if threads > 0 {
            crate::parallel::process_sorted_subsets_parallel(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                None,
                &mut bsf,
                &mut stats,
                budget,
                threads,
                true,
            )
        } else {
            stats.threads_used = 1;
            process_sorted_subsets(
                src,
                domain,
                xi,
                sel,
                tables,
                &mut entries,
                &mut bsf,
                &mut stats,
                buf,
                budget,
            )
        };

        // Recorded after the scan: a shared engine buffer grows lazily;
        // a parallel scan already recorded its workers' buffers instead.
        stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
        stats.total_seconds = started.elapsed().as_secs_f64();
        (bsf.motif, stats, completed)
    }
}

impl<P: GroundDistance> MotifDiscovery<P> for Btm {
    fn name(&self) -> &'static str {
        "BTM"
    }

    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Within {
            n: trajectory.len(),
        };
        let src = DenseMatrix::within(trajectory.points());
        Self::run(&src, domain, config, 0.0, started)
    }

    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats) {
        let started = Instant::now();
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(a.points(), b.points());
        Self::run(&src, domain, config, 0.0, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteDp;
    use crate::config::BoundSelection;
    use fremo_trajectory::gen::planar;

    #[test]
    fn agrees_with_brutedp_on_random_walks() {
        for seed in 0..6 {
            let t = planar::random_walk(48, 0.35, seed);
            let cfg = MotifConfig::new(3);
            let brute = BruteDp.discover(&t, &cfg).expect("brute finds motif");
            let btm = Btm.discover(&t, &cfg).expect("btm finds motif");
            assert!(
                (brute.distance - btm.distance).abs() < 1e-12,
                "seed {seed}: brute={} btm={}",
                brute.distance,
                btm.distance
            );
            assert!(btm.is_valid_within(t.len(), 3));
        }
    }

    #[test]
    fn agrees_under_every_bound_selection() {
        let t = planar::random_walk(40, 0.3, 42);
        let reference = BruteDp.discover(&t, &MotifConfig::new(2)).unwrap();
        let selections = [
            BoundSelection::all_relaxed(),
            BoundSelection::all_tight(),
            BoundSelection::cell_only(),
            BoundSelection::cell_cross(),
            BoundSelection::none(),
            BoundSelection {
                cell: false,
                cross: true,
                band: true,
                end_cross: false,
                tight: false,
            },
            BoundSelection {
                cell: true,
                cross: false,
                band: true,
                end_cross: true,
                tight: true,
            },
        ];
        for sel in selections {
            let cfg = MotifConfig::new(2).with_bounds(sel);
            let m = Btm.discover(&t, &cfg).expect("motif");
            assert!(
                (m.distance - reference.distance).abs() < 1e-12,
                "{sel:?}: {} vs {}",
                m.distance,
                reference.distance
            );
        }
    }

    #[test]
    fn agrees_with_brutedp_between() {
        for seed in 0..4 {
            let a = planar::random_walk(36, 0.4, seed);
            let b = planar::random_walk(30, 0.4, seed + 100);
            let cfg = MotifConfig::new(3);
            let brute = BruteDp.discover_between(&a, &b, &cfg).expect("brute");
            let btm = Btm.discover_between(&a, &b, &cfg).expect("btm");
            assert!(
                (brute.distance - btm.distance).abs() < 1e-12,
                "seed {seed}: {} vs {}",
                brute.distance,
                btm.distance
            );
        }
    }

    #[test]
    fn prunes_most_subsets_on_self_similar_data() {
        // A trajectory passing twice along the same path gives a tiny bsf
        // early; the sorted search should then prune the bulk.
        let mut coords: Vec<(f64, f64)> = (0..40)
            .map(|i| (i as f64, (i as f64 * 0.3).sin()))
            .collect();
        coords.extend((0..40).map(|i| (i as f64, 0.02 + (i as f64 * 0.3).sin())));
        let t: fremo_trajectory::Trajectory<fremo_trajectory::EuclideanPoint> = coords
            .into_iter()
            .map(fremo_trajectory::EuclideanPoint::from)
            .collect();
        let cfg = MotifConfig::new(5);
        let (motif, stats) = Btm.discover_with_stats(&t, &cfg);
        assert!(motif.is_some());
        assert!(
            stats.pruned_fraction() > 0.5,
            "expected >50% pruning, got {:.1}%",
            stats.pruned_fraction() * 100.0
        );
        assert!(stats.subsets_expanded < stats.subsets_total);
    }

    #[test]
    fn stats_accounting_is_complete() {
        let t = planar::random_walk(60, 0.4, 9);
        let cfg = MotifConfig::new(4);
        let (_, stats) = Btm.discover_with_stats(&t, &cfg);
        let accounted = stats.pairs_pruned_cell
            + stats.pairs_pruned_cross
            + stats.pairs_pruned_band
            + stats.pairs_exact;
        assert_eq!(accounted, stats.pairs_total);
        assert_eq!(
            stats.subsets_expanded + stats.subsets_skipped_sorted,
            stats.subsets_total
        );
        assert!(stats.bytes_lists > 0);
        assert!(stats.bytes_bounds > 0);
    }

    #[test]
    fn too_short_returns_none() {
        let t = planar::line((0.0, 0.0), (1.0, 0.0), 6);
        let cfg = MotifConfig::new(2); // needs n ≥ 8
        assert!(Btm.discover(&t, &cfg).is_none());
    }
}
