//! Trajectory resampling.
//!
//! Real traces arrive with non-uniform sampling (the very property DFD
//! tolerates); preprocessing pipelines nevertheless sometimes need uniform
//! grids — e.g. to feed measures that assume them (DTW/LCSS/EDR in
//! Table 1) or to thin 1 Hz collar data. [`resample_uniform`]
//! re-samples a timestamped trajectory onto a fixed time step by linear
//! interpolation; [`resample_count`] distributes a fixed number of samples
//! uniformly along the *path* (arc length), independent of timestamps.

use crate::point::{Euclidean3dPoint, EuclideanPoint, GeoPoint, GroundDistance};
use crate::trajectory::Trajectory;

/// Linear interpolation between two points (`f ∈ [0, 1]`).
///
/// For [`GeoPoint`] the interpolation is linear in latitude/longitude,
/// which is accurate for the sub-kilometre gaps between consecutive GPS
/// samples (do not use it to interpolate across oceans).
pub trait Lerp: Sized {
    /// Point at fraction `f` of the way from `self` to `other`.
    #[must_use]
    fn lerp(&self, other: &Self, f: f64) -> Self;
}

impl Lerp for EuclideanPoint {
    fn lerp(&self, other: &Self, f: f64) -> Self {
        EuclideanPoint::new(
            self.x + (other.x - self.x) * f,
            self.y + (other.y - self.y) * f,
        )
    }
}

impl Lerp for Euclidean3dPoint {
    fn lerp(&self, other: &Self, f: f64) -> Self {
        Euclidean3dPoint::new(
            self.x + (other.x - self.x) * f,
            self.y + (other.y - self.y) * f,
            self.z + (other.z - self.z) * f,
        )
    }
}

impl Lerp for GeoPoint {
    fn lerp(&self, other: &Self, f: f64) -> Self {
        GeoPoint::new_unchecked(
            self.lat + (other.lat - self.lat) * f,
            self.lon + (other.lon - self.lon) * f,
        )
        .with_alt(self.alt + (other.alt - self.alt) * f)
    }
}

/// Resamples a timestamped trajectory onto a uniform grid with step `dt`
/// seconds, linearly interpolating positions. Returns `None` when the
/// input has no timestamps or fewer than two points.
///
/// # Panics
///
/// Panics when `dt` is not strictly positive.
#[must_use]
pub fn resample_uniform<P: Lerp + Clone>(t: &Trajectory<P>, dt: f64) -> Option<Trajectory<P>> {
    assert!(dt > 0.0, "dt must be positive");
    let ts = t.timestamps()?;
    if t.len() < 2 {
        return None;
    }
    let (start, end) = (ts[0], ts[ts.len() - 1]);
    let steps = ((end - start) / dt).floor() as usize;

    let mut points = Vec::with_capacity(steps + 1);
    let mut stamps = Vec::with_capacity(steps + 1);
    let mut seg = 0usize;
    for k in 0..=steps {
        let target = start + k as f64 * dt;
        while seg + 1 < ts.len() - 1 && ts[seg + 1] <= target {
            seg += 1;
        }
        let (t0, t1) = (ts[seg], ts[seg + 1]);
        let f = ((target - t0) / (t1 - t0)).clamp(0.0, 1.0);
        points.push(t[seg].lerp(&t[seg + 1], f));
        stamps.push(target);
    }
    Trajectory::with_timestamps(points, stamps).ok()
}

/// Resamples to exactly `n` points spaced uniformly along the path's arc
/// length (timestamps, if any, are dropped — arc-length spacing has no
/// canonical time). Returns `None` when the input has fewer than two
/// points or `n < 2`.
#[must_use]
pub fn resample_count<P: Lerp + GroundDistance + Clone>(
    t: &Trajectory<P>,
    n: usize,
) -> Option<Trajectory<P>> {
    if t.len() < 2 || n < 2 {
        return None;
    }
    // Cumulative arc length.
    let pts = t.points();
    let mut cum = Vec::with_capacity(pts.len());
    cum.push(0.0_f64);
    for w in pts.windows(2) {
        let d = w[0].distance(&w[1]);
        cum.push(cum.last().unwrap() + d);
    }
    let total = *cum.last().unwrap();
    if total == 0.0 {
        // Degenerate: all points coincide.
        return Some(Trajectory::new(vec![pts[0]; n]));
    }

    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for k in 0..n {
        let target = total * k as f64 / (n - 1) as f64;
        while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
            seg += 1;
        }
        let seg_len = cum[seg + 1] - cum[seg];
        let f = if seg_len > 0.0 {
            ((target - cum[seg]) / seg_len).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(pts[seg].lerp(&pts[seg + 1], f));
    }
    Some(Trajectory::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = EuclideanPoint::new(0.0, 0.0);
        let b = EuclideanPoint::new(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), EuclideanPoint::new(1.0, 2.0));

        let g = GeoPoint::new_unchecked(10.0, 20.0).with_alt(100.0);
        let h = GeoPoint::new_unchecked(12.0, 22.0).with_alt(200.0);
        let m = g.lerp(&h, 0.5);
        assert_eq!((m.lat, m.lon, m.alt), (11.0, 21.0, 150.0));

        let p = Euclidean3dPoint::new(0.0, 0.0, 0.0);
        let q = Euclidean3dPoint::new(2.0, 2.0, 2.0);
        assert_eq!(p.lerp(&q, 0.25), Euclidean3dPoint::new(0.5, 0.5, 0.5));
    }

    #[test]
    fn uniform_resampling_produces_fixed_dt() {
        let t = gen::geolife_like(200, 3);
        let r = resample_uniform(&t, 10.0).expect("timestamped input");
        let ts = r.timestamps().unwrap();
        assert!(ts.len() > 10);
        for w in ts.windows(2) {
            assert!((w[1] - w[0] - 10.0).abs() < 1e-9);
        }
        // The resampled path stays close to the original envelope.
        let orig_len = t.path_length();
        let res_len = r.path_length();
        assert!(res_len <= orig_len * 1.01, "{res_len} vs {orig_len}");
    }

    #[test]
    fn uniform_needs_timestamps_and_two_points() {
        let no_ts: Trajectory<EuclideanPoint> =
            vec![EuclideanPoint::new(0.0, 0.0), EuclideanPoint::new(1.0, 0.0)]
                .into_iter()
                .collect();
        assert!(resample_uniform(&no_ts, 1.0).is_none());
        let single =
            Trajectory::with_timestamps(vec![EuclideanPoint::new(0.0, 0.0)], vec![0.0]).unwrap();
        assert!(resample_uniform(&single, 1.0).is_none());
    }

    #[test]
    fn count_resampling_is_arclength_uniform() {
        // An L-shaped path: spacing must be uniform along the path, not in
        // parameter space.
        let t: Trajectory<EuclideanPoint> = vec![
            EuclideanPoint::new(0.0, 0.0),
            EuclideanPoint::new(10.0, 0.0),
            EuclideanPoint::new(10.0, 10.0),
        ]
        .into_iter()
        .collect();
        let r = resample_count(&t, 21).unwrap();
        assert_eq!(r.len(), 21);
        assert_eq!(r[0], EuclideanPoint::new(0.0, 0.0));
        assert_eq!(r[20], EuclideanPoint::new(10.0, 10.0));
        for w in r.points().windows(2) {
            assert!((w[0].distance(&w[1]) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn count_resampling_degenerate_inputs() {
        let stationary: Trajectory<EuclideanPoint> =
            vec![EuclideanPoint::new(1.0, 1.0); 5].into_iter().collect();
        let r = resample_count(&stationary, 3).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r
            .points()
            .iter()
            .all(|p| *p == EuclideanPoint::new(1.0, 1.0)));

        let single: Trajectory<EuclideanPoint> =
            vec![EuclideanPoint::new(0.0, 0.0)].into_iter().collect();
        assert!(resample_count(&single, 5).is_none());
        let two: Trajectory<EuclideanPoint> =
            vec![EuclideanPoint::new(0.0, 0.0), EuclideanPoint::new(1.0, 0.0)]
                .into_iter()
                .collect();
        assert!(resample_count(&two, 1).is_none());
    }
}
