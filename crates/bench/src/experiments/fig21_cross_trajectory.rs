//! Figure 21: motif discovery between two different trajectories.
//!
//! Ten random pairs of input trajectories per dataset; response time vs
//! their length. The paper reports performance "very similar to the case
//! of single input trajectory".

use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm_between, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectory_pairs;

fn cell(dataset: Dataset, n: usize, xi: usize, alg: Algorithm, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi);
    let pairs = trajectory_pairs(dataset, n, reps, 2100);
    let ms: Vec<Measurement> = pairs
        .iter()
        .map(|(a, b)| run_algorithm_between(alg, a, b, &cfg).0)
        .collect();
    average(&ms)
}

/// Regenerates Figure 21 (one table per dataset).
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let xi = scale.default_xi();
    let reps = scale.repetitions();
    let mut out = Vec::new();

    for dataset in Dataset::ALL {
        let mut table = Table::new(vec!["n", "GTM* (s)", "GTM (s)", "BTM (s)"]);
        for &n in scale.lengths() {
            let mut row = vec![n.to_string()];
            for alg in Algorithm::ADVANCED {
                row.push(fmt_secs(cell(dataset, n, xi, alg, reps).seconds));
            }
            table.row(row);
        }
        out.push((
            format!("Figure 21: response time vs n, two input trajectories — {dataset} (xi={xi})"),
            table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_agree_between_trajectories() {
        let btm = cell(Dataset::Baboon, 150, 10, Algorithm::Btm, 1);
        let gtm = cell(Dataset::Baboon, 150, 10, Algorithm::Gtm, 1);
        let star = cell(Dataset::Baboon, 150, 10, Algorithm::GtmStar, 1);
        let d = btm.distance.unwrap();
        assert!((gtm.distance.unwrap() - d).abs() < 1e-9);
        assert!((star.distance.unwrap() - d).abs() < 1e-9);
    }
}
