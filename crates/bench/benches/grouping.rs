//! Grouping-machinery micro-benchmarks: group matrix construction and the
//! group-level DFD bound DP (Steps 2 and 4 of Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fremo_core::group::{group_dfd_bounds, GroupMatrices};
use fremo_core::Domain;
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::DenseMatrix;

fn bench_grouping(c: &mut Criterion) {
    let n = 2000;
    let t = Dataset::Baboon.generate(n, 31);
    let src = DenseMatrix::within(t.points());
    let domain = Domain::Within { n };

    let mut build = c.benchmark_group("group_matrices_build");
    for tau in [8usize, 32, 128] {
        build.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| GroupMatrices::build(std::hint::black_box(&src), domain, tau))
        });
    }
    build.finish();

    let mut dp = c.benchmark_group("group_dfd_bounds");
    for tau in [16usize, 32] {
        let gm = GroupMatrices::build(&src, domain, tau);
        dp.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, _| {
            b.iter(|| {
                // A representative early block pair.
                group_dfd_bounds(std::hint::black_box(&gm), domain, 100, 0, 5, f64::INFINITY)
            })
        });
    }
    dp.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
