//! Regenerates Figure 16 (bound combinations).
use fremo_bench::experiments::{fig16_bound_combos, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig16_bound_combos::run(scale);
    print_all("Figure 16 (bound combinations)", &tables);
}
