//! Minimal, API-compatible subset of `crossbeam`, vendored so the workspace
//! builds offline: [`scope`] for structured borrowing threads, implemented
//! on top of `std::thread::scope` (stabilized since crossbeam introduced the
//! pattern). The visible difference from real crossbeam is panic handling:
//! a panicking child makes the enclosing `std::thread::scope` panic instead
//! of surfacing as `Err`, which is equivalent for callers that `.expect()`
//! the result — as this workspace does.
//!
//! Swap the path dependency for crates.io `crossbeam = "0.8"` once network
//! access is available.

#![warn(missing_docs)]

/// Scoped-thread handle passed to [`scope`] closures (mirrors
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The closure
    /// receives the scope again so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads may borrow non-`'static` data;
/// all threads are joined before the call returns.
///
/// # Errors
///
/// Never returns `Err` in the shim: a panicking child propagates through
/// `std::thread::scope` as a panic instead.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    )
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.into_inner(), 10);
    }
}
