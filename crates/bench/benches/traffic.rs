//! Multi-tenant traffic verdict: batched execution of a skewed mixed
//! workload must beat sequential execution by ≥ 1.5× QPS while
//! answering bit-for-bit identically.
//!
//! The workload models what `fremo serve` sees from pipelined tenants:
//! 96 queries drawn (seeded LCG, fixed forever) from a small pool of
//! distinct requests over 6 trajectories, with a hot skew — most draws
//! hit a few popular queries on two popular trajectories, the tail
//! touches the cold rest. The server-side drain batches such traffic in
//! windows of 16, so that is the batch size here.
//!
//! Batching wins on this traffic three ways, all visible in
//! `BatchStats`: repeated identical queries are answered once
//! (`queries_deduped`), queries sharing a (trajectory, scope, ξ) group
//! reuse one cached build (`builds_shared`), and compatible serial
//! scans over one group fuse into a single pass over the sorted
//! candidate list (`scans_fused`).
//!
//! The verdict run reports QPS, the engine cache hit rate, and
//! nearest-rank p50/p90/p99 wall-time percentiles per scenario as one
//! stable-schema JSON line each ([`LatencyPercentiles`] field names are
//! frozen), then asserts the ≥ 1.5× QPS gate and cross-checks the two
//! scenarios' answers bit-for-bit. `FREMO_TRAFFIC_TOLERATE=1` downgrades
//! the QPS gate to a warning for noisy/oversubscribed CI hosts — the
//! bit-identity check always stays fatal.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use fremo_bench::LatencyPercentiles;
use fremo_core::engine::{
    AlgorithmChoice, Engine, ExecutionMode, Query, QueryOutcome, QueryResults, TrajId,
};
use fremo_trajectory::gen::Dataset;
use fremo_trajectory::GeoPoint;

/// Trajectory length: 100 points keeps one workload pass fast while the
/// per-group build (n²·8 matrix + bound tables) still costs enough that
/// sharing it matters, as at paper scale.
const N: usize = 100;
/// Corpus size; the skew concentrates on the first [`HOT_TRAJ`].
const TRAJ: usize = 6;
const HOT_TRAJ: usize = 2;
/// Queries per workload pass.
const DRAWS: usize = 96;
/// The server drain window the batched scenario replays.
const BATCH: usize = 16;

fn corpus(engine: &Engine<GeoPoint>) -> Vec<TrajId> {
    engine.register_all((0..TRAJ as u64).map(|seed| Dataset::GeoLife.generate(N, seed)))
}

/// The distinct requests in flight, hot first: the pool's head runs
/// motif/top-k variants on the two popular trajectories (these group
/// and fuse), the tail is one cold motif query per remaining
/// trajectory.
fn pool(ids: &[TrajId]) -> Vec<Query> {
    let mut queries = Vec::new();
    for &hot in &ids[..HOT_TRAJ] {
        for xi in [5, 8] {
            queries.push(
                Query::motif(hot)
                    .xi(xi)
                    .algorithm(AlgorithmChoice::Btm)
                    .execution(ExecutionMode::Serial)
                    .build(),
            );
            queries.push(
                Query::top_k(hot, 2)
                    .xi(xi)
                    .algorithm(AlgorithmChoice::Btm)
                    .execution(ExecutionMode::Serial)
                    .build(),
            );
        }
    }
    for &cold in &ids[HOT_TRAJ..] {
        queries.push(
            Query::motif(cold)
                .xi(5)
                .algorithm(AlgorithmChoice::Btm)
                .execution(ExecutionMode::Serial)
                .build(),
        );
    }
    queries
}

/// The draw sequence, fixed forever: ¾ of draws hit the hot head of the
/// pool, ¼ rotate through the cold tail.
fn draws(pool_len: usize) -> Vec<usize> {
    let hot = pool_len - (TRAJ - HOT_TRAJ);
    let mut state: u64 = 0x5DEECE66D;
    let mut out = Vec::with_capacity(DRAWS);
    for _ in 0..DRAWS {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = (state >> 33) as usize;
        out.push(if r % 4 != 3 {
            r % hot
        } else {
            hot + (r / 4) % (pool_len - hot)
        });
    }
    out
}

/// Materializes the workload against one engine (trajectory ids are
/// engine-scoped, so each scenario builds its own copy).
fn workload(engine: &Engine<GeoPoint>) -> Vec<Query> {
    let ids = corpus(engine);
    let pool = pool(&ids);
    draws(pool.len()).iter().map(|&i| pool[i].clone()).collect()
}

struct Scenario {
    outcomes: Vec<QueryOutcome>,
    /// Per-query end-to-end wall seconds: what a client waits, so in
    /// the batched scenario every member of a window observes the
    /// window's wall time.
    latencies: Vec<f64>,
    elapsed: f64,
    hit_rate: f64,
}

fn run_sequential(engine: &Engine<GeoPoint>, queries: &[Query]) -> Scenario {
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut latencies = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for query in queries {
        let t = Instant::now();
        outcomes.push(engine.execute(query).expect("valid query"));
        latencies.push(t.elapsed().as_secs_f64());
    }
    let elapsed = start.elapsed().as_secs_f64();
    Scenario {
        outcomes,
        latencies,
        elapsed,
        hit_rate: engine.stats().cache.hit_rate(),
    }
}

fn run_batched(engine: &Engine<GeoPoint>, queries: &[Query]) -> Scenario {
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut latencies = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for window in queries.chunks(BATCH) {
        let t = Instant::now();
        let batch = engine.execute_batch(window);
        let wall = t.elapsed().as_secs_f64();
        for outcome in batch.outcomes {
            outcomes.push(outcome.expect("valid query"));
            latencies.push(wall);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    Scenario {
        outcomes,
        latencies,
        elapsed,
        hit_rate: engine.stats().cache.hit_rate(),
    }
}

/// Result bits that must match between scenarios (timing and cache
/// residency excluded, as in `tests/batch_equivalence.rs`).
fn fingerprint(outcome: &QueryOutcome) -> Vec<u64> {
    let mut bits = Vec::new();
    let mut push = |motif: &fremo_core::Motif| {
        bits.extend([
            motif.first.0 as u64,
            motif.first.1 as u64,
            motif.second.0 as u64,
            motif.second.1 as u64,
            motif.distance.to_bits(),
        ]);
    };
    match &outcome.results {
        QueryResults::Motif(found) => {
            if let Some(motif) = found {
                push(motif);
            }
        }
        QueryResults::TopK(motifs) => motifs.iter().for_each(push),
        other => panic!("unexpected result shape in the traffic workload: {other:?}"),
    }
    bits.push(u64::from(outcome.truncated));
    bits
}

fn report(label: &str, s: &Scenario) -> f64 {
    let qps = DRAWS as f64 / s.elapsed;
    let p = LatencyPercentiles::from_samples(&s.latencies);
    let line = serde_json::json!({
        "bench": "traffic",
        "scenario": label,
        "queries": DRAWS,
        "batch_size": if label == "batched" { BATCH } else { 1 },
        "qps": qps,
        "cache_hit_rate": s.hit_rate,
        "latency": { "p50": p.p50, "p90": p.p90, "p99": p.p99 },
    });
    println!("{line}");
    qps
}

/// One timed pass per scenario, then the asserted verdict.
fn verify_traffic() {
    let sequential_engine = Engine::new();
    let sequential = run_sequential(&sequential_engine, &workload(&sequential_engine));

    let batched_engine = Engine::new();
    let batched = run_batched(&batched_engine, &workload(&batched_engine));

    assert_eq!(sequential.outcomes.len(), batched.outcomes.len());
    for (i, (a, b)) in sequential
        .outcomes
        .iter()
        .zip(&batched.outcomes)
        .enumerate()
    {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "query {i} answered differently under batching"
        );
    }

    let qps_sequential = report("sequential", &sequential);
    let qps_batched = report("batched", &batched);
    let speedup = qps_batched / qps_sequential;
    println!(
        "traffic verdict: batched {qps_batched:.0} qps vs sequential {qps_sequential:.0} qps \
         ({speedup:.2}x, gate 1.50x); answers bit-identical"
    );
    if speedup < 1.5 {
        let tolerate = std::env::var("FREMO_TRAFFIC_TOLERATE").is_ok_and(|v| v == "1");
        assert!(
            tolerate,
            "batched execution is only {speedup:.2}x sequential QPS (gate: 1.5x); \
             set FREMO_TRAFFIC_TOLERATE=1 to tolerate on a noisy host"
        );
        println!("traffic verdict: below the 1.5x gate, tolerated (FREMO_TRAFFIC_TOLERATE=1)");
    }
}

fn bench_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let queries = workload(&engine);
            std::hint::black_box(run_sequential(&engine, &queries).outcomes.len())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let queries = workload(&engine);
            std::hint::black_box(run_batched(&engine, &queries).outcomes.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_traffic);

fn main() {
    benches();
    verify_traffic();
}
