//! Point types and the ground-distance abstraction.
//!
//! The paper (Section 3) assumes each trajectory point is a
//! latitude–longitude pair measured with the great-circle distance, but notes
//! that "our methods are directly applicable to higher dimensions (e.g., 3-d
//! data points) and other types of ground distance (e.g., Euclidean)". The
//! [`GroundDistance`] trait captures exactly that degree of freedom: every
//! algorithm in `fremo-core` is generic over it.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A point paired with a native notion of distance to other points of the
/// same type.
///
/// Implementations must return a **non-negative, finite** distance and must
/// be symmetric (`a.distance(b) == b.distance(a)`); the motif-discovery
/// bounds rely on both properties. Identity of indiscernibles is *not*
/// required (duplicate samples at the same location are common in GPS data).
pub trait GroundDistance: Copy {
    /// Distance from `self` to `other` in the point type's native unit
    /// (metres for [`GeoPoint`], coordinate units for [`EuclideanPoint`]).
    fn distance(&self, other: &Self) -> f64;

    /// Fills `out[i]` with `self.distance(&targets[i])` for the common
    /// prefix `min(targets.len(), out.len())`.
    ///
    /// The default is a scalar loop over [`GroundDistance::distance`];
    /// [`EuclideanPoint`] overrides it with the SIMD kernels in
    /// [`crate::kernel`], which are **bit-identical** to the scalar
    /// loop. Matrix builders call this so every point type gets the
    /// fastest available row fill without changing results.
    #[inline]
    fn distance_row(&self, targets: &[Self], out: &mut [f64]) {
        for (slot, target) in out.iter_mut().zip(targets) {
            *slot = self.distance(target);
        }
    }
}

/// A geographic point: latitude/longitude in **degrees** plus an optional
/// altitude in metres (GeoLife records altitude; it does not participate in
/// the ground distance, matching the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
    /// Altitude in metres above sea level (informational only).
    pub alt: f64,
}

impl GeoPoint {
    /// Creates a point after validating coordinate ranges and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CoordinateOutOfRange`] when the latitude is outside
    /// `[-90, 90]` or the longitude outside `[-180, 180]`, including the
    /// NaN case.
    pub fn new(lat: f64, lon: f64) -> Result<Self> {
        if !(-90.0..=90.0).contains(&lat) {
            return Err(Error::CoordinateOutOfRange {
                what: "latitude",
                value: lat,
            });
        }
        if !(-180.0..=180.0).contains(&lon) {
            return Err(Error::CoordinateOutOfRange {
                what: "longitude",
                value: lon,
            });
        }
        Ok(GeoPoint { lat, lon, alt: 0.0 })
    }

    /// Creates a point without range validation.
    ///
    /// Useful for generators that clamp coordinates themselves. Prefer
    /// [`GeoPoint::new`] for untrusted input.
    #[must_use]
    pub const fn new_unchecked(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon, alt: 0.0 }
    }

    /// Returns a copy with the given altitude.
    #[must_use]
    pub const fn with_alt(mut self, alt: f64) -> Self {
        self.alt = alt;
        self
    }

    /// Latitude in radians.
    #[inline]
    #[must_use]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    #[must_use]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    ///
    /// This is the paper's ground distance `dG` (Section 3, citing Sinnott
    /// \[21\], "Virtues of the haversine").
    #[inline]
    #[must_use]
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        crate::distance::haversine_m(self, other)
    }
}

impl GroundDistance for GeoPoint {
    #[inline]
    fn distance(&self, other: &Self) -> f64 {
        self.haversine_m(other)
    }
}

/// A planar point in arbitrary coordinate units with Euclidean distance.
///
/// Used for the worked examples of the paper (Figures 5–8 operate on an
/// abstract distance matrix), for unit-square synthetic workloads, and for
/// applications such as sports analysis where positions live on a pitch
/// rather than the globe.
///
/// `#[repr(C)]` so a `&[EuclideanPoint]` is a contiguous `[x0, y0, x1,
/// y1, ...]` array of `f64` — the layout the SIMD kernels in
/// [`crate::kernel`] load directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct EuclideanPoint {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl EuclideanPoint {
    /// Creates a planar point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        EuclideanPoint { x, y }
    }

    /// Squared Euclidean distance (cheaper than [`GroundDistance::distance`]
    /// when only comparisons are needed).
    #[inline]
    #[must_use]
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl GroundDistance for EuclideanPoint {
    #[inline]
    fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    #[inline]
    fn distance_row(&self, targets: &[Self], out: &mut [f64]) {
        crate::kernel::euclid_row(*self, targets, out);
    }
}

impl From<(f64, f64)> for EuclideanPoint {
    fn from((x, y): (f64, f64)) -> Self {
        EuclideanPoint::new(x, y)
    }
}

/// A 3-dimensional Euclidean point, demonstrating the paper's claim that the
/// framework applies unchanged to higher dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Euclidean3dPoint {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Euclidean3dPoint {
    /// Creates a 3-D point.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Euclidean3dPoint { x, y, z }
    }
}

impl GroundDistance for Euclidean3dPoint {
    #[inline]
    fn distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_validation() {
        assert!(GeoPoint::new(39.9, 116.4).is_ok());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(matches!(
            GeoPoint::new(90.5, 0.0),
            Err(Error::CoordinateOutOfRange {
                what: "latitude",
                ..
            })
        ));
        assert!(matches!(
            GeoPoint::new(0.0, 180.5),
            Err(Error::CoordinateOutOfRange {
                what: "longitude",
                ..
            })
        ));
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn geo_distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(39.9042, 116.4074).unwrap(); // Beijing
        let b = GeoPoint::new(22.5431, 114.0579).unwrap(); // Shenzhen
        assert_eq!(a.distance(&a), 0.0);
        let ab = a.distance(&b);
        let ba = b.distance(&a);
        assert!((ab - ba).abs() < 1e-9);
        // Beijing -> Shenzhen is roughly 1,940 km.
        assert!((1_900_000.0..2_000_000.0).contains(&ab), "got {ab}");
    }

    #[test]
    fn altitude_does_not_affect_distance() {
        let a = GeoPoint::new(10.0, 10.0).unwrap();
        let b = GeoPoint::new(10.0, 10.0).unwrap().with_alt(8848.0);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn euclidean_distance_basics() {
        let a = EuclideanPoint::new(0.0, 0.0);
        let b = EuclideanPoint::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(b.distance(&a), 5.0);
        let c: EuclideanPoint = (1.0, 1.0).into();
        assert_eq!(c.x, 1.0);
    }

    #[test]
    fn euclidean_3d_distance() {
        let a = Euclidean3dPoint::new(0.0, 0.0, 0.0);
        let b = Euclidean3dPoint::new(2.0, 3.0, 6.0);
        assert_eq!(a.distance(&b), 7.0);
    }
}
