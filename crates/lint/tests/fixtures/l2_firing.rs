// L2 firing fixture: hash-order iteration feeding results.

use std::collections::HashMap;

pub struct Cache {
    frames: HashMap<u64, usize>,
}

impl Cache {
    pub fn order(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for k in self.frames.keys() {
            out.push(*k);
        }
        out
    }

    pub fn first(&self) -> Option<u64> {
        self.frames.iter().next().map(|(k, _)| *k)
    }
}

pub fn sweep(map: HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for v in map {
        sum += v.1;
    }
    sum
}
