//! Replacement policy: which unpinned cache entry to evict next.
//!
//! The replacer tracks eviction *candidates*, not pin state: pins are
//! atomic counts on the frames themselves (sessions pin under a shard
//! read lock, where replacer state cannot be touched). A popped victim
//! that turns out to be pinned is simply skipped by the pool — it
//! leaves the candidate set here and re-enters when the pinning
//! session's log replay touches it at query end. Stamps come from a
//! monotonic access clock, so "least recently used" is exact, not
//! approximate.

use std::collections::HashMap;
use std::hash::Hash;

/// Exact least-recently-used replacement over abstract frame keys.
///
/// `victim` scans all evictable entries for the minimum stamp, which is
/// `O(entries)` — fine here because the pool holds at most a few dozen
/// matrices and bound tables, not thousands of fixed-size pages. Clock
/// stamps are unique (the clock advances on every touch), so victim
/// selection is deterministic.
#[derive(Debug, Default)]
pub(crate) struct LruReplacer<K> {
    /// Monotonic access clock; advanced by every [`LruReplacer::touch`].
    clock: u64,
    /// Last-use stamp per *evictable* key.
    stamps: HashMap<K, u64>,
}

impl<K: Eq + Hash + Copy> LruReplacer<K> {
    pub(crate) fn new() -> Self {
        LruReplacer {
            clock: 0,
            stamps: HashMap::new(),
        }
    }

    /// Records a use of `key` and (re-)marks it evictable.
    pub(crate) fn touch(&mut self, key: K) {
        self.clock += 1;
        self.stamps.insert(key, self.clock);
    }

    /// Removes `key` from the candidate set without electing it.
    #[cfg(test)]
    pub(crate) fn remove(&mut self, key: &K) {
        self.stamps.remove(key);
    }

    /// Pops the least recently used evictable key, if any.
    pub(crate) fn victim(&mut self) -> Option<K> {
        let key = *self
            .stamps
            // fremo-lint: allow(L2) -- clock stamps are unique (the clock
            // advances on every touch), so the minimum is a single element
            // and the scan's hash order cannot influence which key wins.
            .iter()
            .min_by_key(|&(_, stamp)| *stamp)
            .map(|(key, _)| key)?;
        self.stamps.remove(&key);
        Some(key)
    }

    /// Number of evictable entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Drops every entry (the pool was cleared).
    pub(crate) fn clear(&mut self) {
        self.stamps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_come_out_in_lru_order() {
        let mut r = LruReplacer::new();
        r.touch(1u32);
        r.touch(2);
        r.touch(3);
        r.touch(1); // 1 becomes most recent: order is now 2, 3, 1.
        assert_eq!(r.victim(), Some(2));
        assert_eq!(r.victim(), Some(3));
        assert_eq!(r.victim(), Some(1));
        assert_eq!(r.victim(), None);
    }

    #[test]
    fn removed_keys_are_never_victims() {
        let mut r = LruReplacer::new();
        r.touch(10u32);
        r.touch(20);
        r.remove(&10);
        assert_eq!(r.victim(), Some(20));
        assert_eq!(r.victim(), None);
        // Re-touching after removal makes the key evictable again.
        r.touch(10);
        assert_eq!(r.len(), 1);
        assert_eq!(r.victim(), Some(10));
    }

    #[test]
    fn clear_empties_the_candidate_set() {
        let mut r = LruReplacer::new();
        r.touch(1u32);
        r.touch(2);
        r.clear();
        assert_eq!(r.victim(), None);
    }
}
