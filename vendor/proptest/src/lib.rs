//! Minimal, API-compatible subset of `proptest`, vendored so the workspace
//! builds offline. Supports the surface the `fremo` test suite uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name(pattern in strategy, ...)` test signatures;
//! * [`Strategy`] implemented for numeric ranges and 2-tuples, plus
//!   [`Strategy::prop_map`] and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which report the failing case
//!   index alongside the message.
//!
//! Unlike real proptest there is **no shrinking** and generation is
//! deterministic per case index, so failures reproduce exactly across runs.
//! `PROPTEST_CASES` (a standard proptest env var) caps the case count when
//! set. Swap the path dependency for crates.io `proptest = "1"` once
//! network access is available.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` caps the configured value.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, usize, u64, u32, i64, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategies over collections (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case generator used by the [`proptest!`] expansion.
#[doc(hidden)]
#[must_use]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // Stable FNV-1a over the test name, mixed with the case index, so each
    // test explores a distinct but reproducible sequence.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Common imports for property tests (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __proptest_case in 0..config.effective_cases() {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), __proptest_case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);)*
                let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(message) = __proptest_result {
                    panic!(
                        "proptest case {} of {} failed: {}",
                        __proptest_case + 1,
                        config.effective_cases(),
                        message
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside [`proptest!`], failing the current case with
/// an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_maps_compose(x in (0.0..1.0_f64, 1.0..2.0_f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((1.0..3.0).contains(&x), "x={x}");
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0usize..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map(|c| rand::Rng::gen::<u64>(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| rand::Rng::gen::<u64>(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
