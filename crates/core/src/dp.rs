//! The shared dynamic program over a candidate subset.
//!
//! For all candidates in `CS_{i,j}` the paper shares one DFD computation
//! (Section 3): a single DP over end cells `(ie, je)` rooted at `(i, j)`
//! yields `dF(i, ie, j, je)` for every end cell. [`expand_subset`] runs that
//! DP with two rolling rows (`O(n)` space — GTM*'s Idea ii; BruteDP/BTM
//! never need the full `dF` matrix because candidates are evaluated as the
//! cells are produced), plus two safe accelerations used by BTM/GTM:
//!
//! * **End-cross clamping** (Algorithm 2 lines 12–13): when the best-so-far
//!   improves at `(ie, je)` and the end-cross bound there already reaches
//!   `bsf`, no candidate ending strictly beyond `(ie, je)` in *both*
//!   coordinates can improve — later rows stop at column `je`.
//! * **Row abandoning**: DP values never fall below the minimum of the
//!   previous row (each cell is `max(dG, min(predecessors))`), so once an
//!   entire row is at or above `bsf`, the subset is exhausted.

use fremo_trajectory::DistanceSource;

use crate::bounds::BoundTables;
use crate::domain::Domain;
use crate::result::Motif;
use crate::stats::SearchStats;

/// Best-so-far state.
///
/// `value` may come from an actual candidate (then `motif` is set) or from
/// a group-level upper bound (GTM's Algorithm 3 lines 12–13; `motif` still
/// `None`). Pruning is strict (`>`) until a concrete pair exists, so a
/// candidate tying the upper bound can still be found.
#[derive(Debug, Clone)]
pub struct Bsf {
    /// Current best DFD value (or tightened upper bound).
    pub value: f64,
    /// The pair achieving `value`, once one has been seen.
    pub motif: Option<Motif>,
    /// Approximation factor `1 + ε`: lower bounds are inflated by this
    /// factor before pruning, trading exactness for speed (the paper's
    /// future-work direction). `1.0` = exact.
    factor: f64,
}

impl Bsf {
    /// Fresh state: `+∞`, no pair, exact pruning.
    #[must_use]
    pub fn new() -> Self {
        Bsf {
            value: f64::INFINITY,
            motif: None,
            factor: 1.0,
        }
    }

    /// Fresh state with ε-approximate pruning: the returned motif's DFD is
    /// guaranteed to be at most `(1 + epsilon) ×` the optimum.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative or non-finite.
    #[must_use]
    pub fn approximate(epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon must be finite and ≥ 0"
        );
        Bsf {
            value: f64::INFINITY,
            motif: None,
            factor: 1.0 + epsilon,
        }
    }

    /// The approximation factor `1 + ε`.
    #[inline]
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Whether a candidate set with lower bound `lb` can be skipped.
    ///
    /// With a concrete pair recorded, `(1+ε)·lb ≥ value` suffices: every
    /// skipped candidate has `dF ≥ lb ≥ value/(1+ε)`, so the recorded pair
    /// is within the approximation guarantee (with ε = 0 this is the exact
    /// tie rule). Without a pair — `value` stems from a group upper bound —
    /// only strict *un-inflated* inequality is safe: the witness achieving
    /// `value` might live exactly in the skipped set, and the final answer
    /// must be able to reach it (inflating here could prune every witness
    /// and leave no result at all).
    #[inline]
    #[must_use]
    pub fn prunable(&self, lb: f64) -> bool {
        if self.motif.is_some() {
            lb * self.factor >= self.value
        } else {
            lb > self.value
        }
    }

    /// Offers a concrete candidate; returns whether it became the new best.
    #[inline]
    pub fn offer(&mut self, distance: f64, motif: Motif) -> bool {
        if distance < self.value || (self.motif.is_none() && distance <= self.value) {
            self.value = distance;
            self.motif = Some(motif);
            true
        } else {
            false
        }
    }

    /// Tightens `value` from a group-level upper bound without recording a
    /// pair (Algorithm 3 lines 12–13).
    #[inline]
    pub fn tighten(&mut self, upper_bound: f64) -> bool {
        if upper_bound < self.value {
            self.value = upper_bound;
            true
        } else {
            false
        }
    }
}

impl Default for Bsf {
    fn default() -> Self {
        Bsf::new()
    }
}

/// Reusable DP row buffers (allocated once per search).
///
/// `prev`/`curr` are the two rolling DP rows; `mins` holds the
/// vectorized pre-pass `mins[k] = min(prev[k], prev[k-1])` and `dists`
/// the gathered `dG` row, so the irreducible scalar scan touches only
/// sequential reads (see `docs/KERNELS.md`).
#[derive(Debug, Default)]
pub struct DpBuffers {
    prev: Vec<f64>,
    curr: Vec<f64>,
    mins: Vec<f64>,
    dists: Vec<f64>,
}

impl DpBuffers {
    /// Creates buffers able to hold rows of width up to `width`.
    #[must_use]
    pub fn with_width(width: usize) -> Self {
        DpBuffers {
            prev: vec![0.0; width],
            curr: vec![0.0; width],
            mins: vec![0.0; width],
            dists: vec![0.0; width],
        }
    }

    /// Heap bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.prev.capacity() + self.curr.capacity() + self.mins.capacity() + self.dists.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Heap bytes attributable to a search of DP row width `width`: a
    /// shared (engine) buffer never shrinks, so the allocation is capped
    /// at the four rows this search actually touches — keeping per-query
    /// memory reports independent of earlier, larger queries.
    #[must_use]
    pub fn bytes_for_width(&self, width: usize) -> usize {
        self.bytes().min(4 * width * std::mem::size_of::<f64>())
    }
}

/// Runs the shared DP for candidate subset `CS_{i,j}`, updating `bsf` with
/// every improving candidate.
///
/// `tables` enables the end-cross clamp; `allow_pruning` turns on both
/// accelerations (BruteDP runs with `false` to match Algorithm 1 exactly).
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub fn expand_subset<D: DistanceSource>(
    src: &D,
    domain: Domain,
    xi: usize,
    i: usize,
    j: usize,
    tables: Option<&BoundTables>,
    allow_pruning: bool,
    bsf: &mut Bsf,
    stats: &mut SearchStats,
    buf: &mut DpBuffers,
) {
    expand_subset_capped(
        src,
        domain,
        xi,
        i,
        j,
        (usize::MAX, usize::MAX),
        tables,
        allow_pruning,
        bsf,
        stats,
        buf,
    );
}

/// [`expand_subset`] with inclusive caps on `ie` and `je` — used by the
/// top-k search to exclude index ranges already claimed by reported motifs
/// (a subtrajectory is contiguous, so forbidding an interval simply clamps
/// how far the DP may extend).
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
pub fn expand_subset_capped<D: DistanceSource>(
    src: &D,
    domain: Domain,
    xi: usize,
    i: usize,
    j: usize,
    (ie_cap, je_cap): (usize, usize),
    tables: Option<&BoundTables>,
    allow_pruning: bool,
    bsf: &mut Bsf,
    stats: &mut SearchStats,
    buf: &mut DpBuffers,
) {
    let je_max = domain.je_max().min(je_cap);
    let ie_max = domain.ie_max(j).min(ie_cap);
    if ie_max <= i || je_max <= j {
        return;
    }
    let width = je_max - j + 1; // column offset k ↔ je = j + k
    if buf.prev.len() < width {
        buf.prev.resize(width, 0.0);
        buf.curr.resize(width, 0.0);
        buf.mins.resize(width, 0.0);
        buf.dists.resize(width, 0.0);
    }
    let mut prev = std::mem::take(&mut buf.prev);
    let mut curr = std::mem::take(&mut buf.curr);
    let mut mins = std::mem::take(&mut buf.mins);
    let mut dists = std::mem::take(&mut buf.dists);

    // Boundary row ie = i: running max of dG(i, j..=je_max), over a row
    // gathered in one (possibly vectorized) `fill_row` call.
    src.fill_row(i, j, &mut dists[..width]);
    let mut running = 0.0_f64;
    for (slot, &d) in prev.iter_mut().zip(&dists[..width]) {
        running = running.max(d);
        *slot = running;
    }

    // jend: inclusive column-offset limit; pending_jend applies from the
    // *next* row onward (the end-cross clamp covers ic > ie strictly).
    let mut jend = width - 1;
    let mut pending_jend = jend;

    'rows: for ie in (i + 1)..=ie_max {
        if pending_jend < jend {
            jend = pending_jend;
        }
        stats.cells_skipped_end_cross += (width - 1 - jend) as u64;

        // Vectorizable pre-pass: gather the dG row and fold the two
        // prev-row predecessors, leaving the scalar scan below with the
        // single irreducible `curr[k-1]` dependency. Operand order is
        // preserved — `mins[k].min(curr[k-1])` associates exactly like
        // the historical `prev[k].min(prev[k-1]).min(curr[k-1])` — so
        // results stay bit-identical (the rows contain no NaN and no
        // negative zero, where vector and scalar `min` agree; see
        // `docs/KERNELS.md`).
        src.fill_row(ie, j, &mut dists[..=jend]);
        fremo_trajectory::kernel::pairwise_min(&prev[1..=jend], &prev[..jend], &mut mins[1..=jend]);

        // Boundary column je = j.
        curr[0] = prev[0].max(dists[0]);
        let mut row_min = curr[0];

        let ie_valid = ie > i + xi;
        for k in 1..=jend {
            let je = j + k;
            let reach = mins[k].min(curr[k - 1]);
            let v = reach.max(dists[k]);
            curr[k] = v;
            if v < row_min {
                row_min = v;
            }
            stats.dp_cells += 1;

            if ie_valid && je > j + xi {
                let motif = Motif {
                    first: (i, ie),
                    second: (j, je),
                    distance: v,
                };
                if bsf.offer(v, motif) {
                    stats.bsf_updates += 1;
                    if allow_pruning {
                        if let Some(tables) = tables {
                            let end = tables.end_cross(i, j, ie, je);
                            if bsf.prunable(end) {
                                pending_jend = pending_jend.min(k);
                            }
                        }
                    }
                }
            }
        }

        if allow_pruning && bsf.prunable(row_min) {
            stats.rows_abandoned += 1;
            break 'rows;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    buf.prev = prev;
    buf.curr = curr;
    buf.mins = mins;
    buf.dists = dists;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fremo_similarity::dfd;
    use fremo_trajectory::{DenseMatrix, EuclideanPoint};

    fn pts(coords: &[(f64, f64)]) -> Vec<EuclideanPoint> {
        coords
            .iter()
            .map(|&(x, y)| EuclideanPoint::new(x, y))
            .collect()
    }

    /// Enumerate all candidates in CS_{i,j} with the standalone DFD and
    /// compare against the DP's best.
    fn best_in_subset_naive(
        points: &[EuclideanPoint],
        domain: Domain,
        xi: usize,
        i: usize,
        j: usize,
    ) -> Option<(f64, (usize, usize, usize, usize))> {
        let mut best: Option<(f64, (usize, usize, usize, usize))> = None;
        for ie in (i + xi + 1)..=domain.ie_max(j) {
            for je in (j + xi + 1)..=domain.je_max() {
                let d = dfd(&points[i..=ie], &points[j..=je]);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, (i, ie, j, je)));
                }
            }
        }
        best
    }

    #[test]
    fn dp_matches_naive_per_subset() {
        let points = pts(&[
            (0.0, 0.0),
            (1.0, 0.5),
            (2.0, -0.5),
            (3.0, 1.0),
            (4.0, 0.0),
            (5.0, 2.0),
            (0.5, 0.1),
            (1.5, 0.4),
            (2.5, -0.3),
            (3.5, 0.9),
            (4.5, 0.2),
            (5.5, 1.8),
        ]);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 1;
        for (i, j) in domain.subsets(xi) {
            let mut bsf = Bsf::new();
            let mut stats = SearchStats::default();
            let mut buf = DpBuffers::default();
            expand_subset(
                &src, domain, xi, i, j, None, false, &mut bsf, &mut stats, &mut buf,
            );
            let naive = best_in_subset_naive(&points, domain, xi, i, j);
            match naive {
                None => assert!(bsf.motif.is_none(), "({i},{j}) found spurious candidate"),
                Some((nd, _)) => {
                    let m = bsf.motif.expect("DP found nothing");
                    assert!(
                        (m.distance - nd).abs() < 1e-12,
                        "({i},{j}): dp={} naive={nd}",
                        m.distance
                    );
                    // And the reported pair achieves its distance.
                    let check = dfd(
                        &points[m.first.0..=m.first.1],
                        &points[m.second.0..=m.second.1],
                    );
                    assert!((check - m.distance).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dp_between_matches_naive() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.5), (3.0, 0.0), (4.0, -0.5)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.2), (2.0, 0.8), (3.0, 1.1)]);
        let domain = Domain::Between {
            n: a.len(),
            m: b.len(),
        };
        let src = DenseMatrix::between(&a, &b);
        let xi = 1;
        for (i, j) in domain.subsets(xi) {
            let mut bsf = Bsf::new();
            let mut stats = SearchStats::default();
            let mut buf = DpBuffers::default();
            expand_subset(
                &src, domain, xi, i, j, None, false, &mut bsf, &mut stats, &mut buf,
            );
            // Naive over the two-trajectory candidate space.
            let mut best = f64::INFINITY;
            for ie in (i + xi + 1)..a.len() {
                for je in (j + xi + 1)..b.len() {
                    best = best.min(dfd(&a[i..=ie], &b[j..=je]));
                }
            }
            if best.is_finite() {
                let m = bsf.motif.expect("DP found nothing");
                assert!((m.distance - best).abs() < 1e-12, "({i},{j})");
            } else {
                assert!(bsf.motif.is_none());
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_result() {
        // With pruning on (row abandoning only; no tables), the final best
        // across all subsets must equal the unpruned result.
        let points = pts(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 0.0),
            (3.0, -1.0),
            (4.0, 0.0),
            (5.0, 1.0),
            (6.0, 0.0),
            (0.2, 0.1),
            (1.2, 1.1),
            (2.2, 0.1),
            (3.2, -0.9),
            (4.2, 0.1),
        ]);
        let domain = Domain::Within { n: points.len() };
        let src = DenseMatrix::within(&points);
        let xi = 2;

        let mut plain = Bsf::new();
        let mut pruned = Bsf::new();
        let mut stats = SearchStats::default();
        let mut buf = DpBuffers::default();
        for (i, j) in domain.subsets(xi) {
            expand_subset(
                &src, domain, xi, i, j, None, false, &mut plain, &mut stats, &mut buf,
            );
        }
        for (i, j) in domain.subsets(xi) {
            expand_subset(
                &src,
                domain,
                xi,
                i,
                j,
                None,
                true,
                &mut pruned,
                &mut stats,
                &mut buf,
            );
        }
        let p = plain.motif.unwrap();
        let q = pruned.motif.unwrap();
        assert!((p.distance - q.distance).abs() < 1e-12);
    }

    #[test]
    fn bsf_semantics() {
        let mut bsf = Bsf::new();
        assert!(!bsf.prunable(1e300)); // strict > against +∞ fails
        assert!(!bsf.prunable(f64::INFINITY));

        // Tighten from a group UB: strict pruning only.
        assert!(bsf.tighten(5.0));
        assert!(!bsf.prunable(5.0));
        assert!(bsf.prunable(5.1));

        // A tying candidate is accepted when no pair exists yet.
        let m = Motif {
            first: (0, 2),
            second: (3, 5),
            distance: 5.0,
        };
        assert!(bsf.offer(5.0, m));
        assert!(bsf.motif.is_some());
        // Now ties prune.
        assert!(bsf.prunable(5.0));
        // A worse candidate is rejected; a better accepted.
        assert!(!bsf.offer(6.0, m));
        assert!(bsf.offer(4.0, m));
        assert_eq!(bsf.value, 4.0);
        assert!(!bsf.tighten(4.5));
    }
}
