//! Figure 16: response time of cumulative bound combinations.
//!
//! Three BTM variants: `LBcell` only, `LBcell + rLBcross`, and
//! `LBcell + rLBcross + rLBband` — showing the bounds complement each
//! other (each addition reduces response time).

use fremo_core::{BoundSelection, MotifConfig};
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

const COMBOS: [(&str, BoundSelection); 3] = [
    ("LBcell", BoundSelection::cell_only()),
    ("LBcell+rLBcross", BoundSelection::cell_cross()),
    ("LBcell+rLBcross+rLBband", BoundSelection::all_relaxed()),
];

fn measure(n: usize, xi: usize, sel: BoundSelection, reps: usize) -> Measurement {
    let cfg = MotifConfig::new(xi).with_bounds(sel);
    let ts = trajectories(Dataset::GeoLife, n, reps, 1600);
    let ms: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm(Algorithm::Btm, t, &cfg).0)
        .collect();
    average(&ms)
}

/// Regenerates Figure 16's two line plots.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let reps = scale.repetitions();

    let mut by_n = Table::new(vec!["n", COMBOS[0].0, COMBOS[1].0, COMBOS[2].0]);
    for &n in scale.lengths() {
        let cells: Vec<String> = COMBOS
            .iter()
            .map(|&(_, sel)| fmt_secs(measure(n, scale.default_xi(), sel, reps).seconds))
            .collect();
        by_n.row(vec![
            n.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }

    let mut by_xi = Table::new(vec!["xi", COMBOS[0].0, COMBOS[1].0, COMBOS[2].0]);
    for &xi in scale.motif_lengths() {
        let cells: Vec<String> = COMBOS
            .iter()
            .map(|&(_, sel)| fmt_secs(measure(scale.default_n(), xi, sel, reps).seconds))
            .collect();
        by_xi.row(vec![
            xi.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }

    vec![
        (
            "Figure 16(a): response time vs n per bound combination".to_string(),
            by_n,
        ),
        (
            "Figure 16(b): response time vs xi per bound combination".to_string(),
            by_xi,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_combos_return_the_same_motif() {
        let ds: Vec<_> = COMBOS
            .iter()
            .map(|&(_, sel)| measure(140, 10, sel, 1).distance.expect("motif"))
            .collect();
        assert!((ds[0] - ds[1]).abs() < 1e-9);
        assert!((ds[0] - ds[2]).abs() < 1e-9);
    }
}
