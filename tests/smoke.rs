//! Build-surface smoke test: the quickstart from the `fremo` crate docs
//! (and the README) must run end-to-end through `fremo::prelude` alone.
//! If re-exports drift or the umbrella crate stops wiring the sub-crates
//! together, this fails before any doc reader does.

use fremo::prelude::*;

#[test]
fn prelude_quickstart_runs_end_to_end() {
    // Mirrors the `src/lib.rs` quickstart verbatim.
    let trajectory = fremo::trajectory::gen::geolife_like(300, 42);
    let config = MotifConfig::new(20);
    let motif = Gtm.discover(&trajectory, &config).expect("found a motif");

    assert!(motif.is_valid_within(trajectory.len(), 20));
    assert!(motif.distance.is_finite() && motif.distance >= 0.0);
    // The reported value is the actual DFD of the reported subtrajectories.
    let (a0, a1) = motif.first;
    let (b0, b1) = motif.second;
    let d = dfd(&trajectory.points()[a0..=a1], &trajectory.points()[b0..=b1]);
    assert!(
        (d - motif.distance).abs() < 1e-9,
        "reported {} but recomputed {d}",
        motif.distance
    );
}

#[test]
fn prelude_exposes_every_quickstart_name() {
    // Compile-time surface check: every name the docs lean on resolves
    // through the prelude glob. Algorithms agree on a tiny instance.
    let t: Trajectory<EuclideanPoint> = (0..40)
        .map(|i| {
            let x = f64::from(i);
            EuclideanPoint::new(x, (x * 0.7).sin() * 3.0)
        })
        .collect();
    let config = MotifConfig::new(3);
    let brute = BruteDp.discover(&t, &config).expect("brute finds a motif");
    for result in [
        Btm.discover(&t, &config),
        Gtm.discover(&t, &config),
        GtmStar.discover(&t, &config),
    ] {
        let m = result.expect("algorithm finds a motif");
        assert!((m.distance - brute.distance).abs() < 1e-9);
    }

    // SearchStats and BoundKind are part of the documented surface.
    let (_, stats): (Option<Motif>, SearchStats) = Btm.discover_with_stats(&t, &config);
    let pruned = stats.pairs_pruned_cell + stats.pairs_pruned_cross + stats.pairs_pruned_band;
    assert_eq!(stats.pairs_total, stats.pairs_exact + pruned);
    assert!((0.0..=1.0).contains(&stats.pruned_fraction_by(BoundKind::Cell)));
}
