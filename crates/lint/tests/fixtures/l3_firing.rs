// L3 firing fixture: panicking calls on library paths.

pub fn take_first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn must_parse(s: &str) -> u64 {
    s.parse().expect("caller passes digits")
}

pub fn not_yet() -> u64 {
    todo!()
}

pub fn boom(flag: bool) -> u64 {
    if flag {
        panic!("flag was set");
    }
    0
}
