//! GeoLife-like pedestrian trajectory generator.
//!
//! GeoLife trajectories were "recorded by different GPS loggers and
//! GPS-phones, and therefore they have different sampling rates" (Section
//! 6.1), with missing samples — the two properties the paper argues make DFD
//! the right similarity measure. The generator reproduces:
//!
//! * **Anchor-based daily movement** — an entity shuttles between a handful
//!   of anchor places (home, work, shops) along noisy, roughly straight
//!   legs; repeated trips over the "days" of the trace create natural
//!   motifs, just like the commuting motif of the paper's Figure 1.
//! * **Heading persistence** — a correlated random walk within each leg.
//! * **Speed regimes** — walking (~1.4 m/s) and vehicle (~8 m/s) legs.
//! * **Non-uniform sampling** — log-normal inter-sample gaps.
//! * **Missing samples** — occasional bursts where the logger goes dark
//!   while movement continues.
//! * **GPS noise** — isotropic Gaussian jitter of a few metres.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{rand_lognormal, randn, step_m};
use crate::point::GeoPoint;
use crate::trajectory::{Trajectory, TrajectoryBuilder};

/// Beijing city centre, the modal GeoLife location.
const BASE_LAT: f64 = 39.9042;
const BASE_LON: f64 = 116.4074;

/// GPS noise standard deviation in metres.
const GPS_NOISE_M: f64 = 4.0;

/// Generates a GeoLife-like pedestrian trajectory with exactly `n` points.
#[must_use]
pub fn geolife_like(n: usize, seed: u64) -> Trajectory<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x47454F); // "GEO"
    let mut builder = TrajectoryBuilder::with_capacity(n);

    // Anchor places within ~3 km of the base, shared by all legs so routes
    // repeat (repetition is what gives the trace motifs).
    let n_anchors = rng.gen_range(3..=6);
    let anchors: Vec<(f64, f64)> = (0..n_anchors)
        .map(|_| {
            step_m(
                BASE_LAT,
                BASE_LON,
                randn(&mut rng) * 1_500.0,
                randn(&mut rng) * 1_500.0,
            )
        })
        .collect();

    let (mut lat, mut lon) = anchors[0];
    let mut t = 0.0_f64;
    let mut target_idx = 1 % anchors.len();
    let mut speed_mps = 1.4;
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);

    let mut emitted = 0;
    while emitted < n {
        // Non-uniform sampling: median ~3 s, heavy right tail up to a minute.
        let mut dt = rand_lognormal(&mut rng, 1.1, 0.6).clamp(1.0, 60.0);
        // Missing-sample bursts: ~2% of samples are preceded by a dark
        // window of 1-5 minutes during which movement continued.
        if rng.gen_bool(0.02) {
            dt += rng.gen_range(60.0..300.0);
        }
        t += dt;

        // Advance towards the current target anchor with heading persistence.
        let (tgt_lat, tgt_lon) = anchors[target_idx];
        let north = (tgt_lat - lat) * crate::gen::M_PER_DEG_LAT;
        let east = (tgt_lon - lon) * crate::gen::m_per_deg_lon(lat);
        let dist_to_target = (north * north + east * east).sqrt();

        if dist_to_target < 50.0 {
            // Arrived: dwell briefly, then pick a new target and speed regime.
            target_idx = rng.gen_range(0..anchors.len());
            speed_mps = if rng.gen_bool(0.7) { 1.4 } else { 8.0 };
            heading = rng.gen_range(0.0..std::f64::consts::TAU);
        } else {
            let bearing = east.atan2(north);
            // Blend persistent heading with the bearing to the target and
            // add turning noise: a correlated random walk that still makes
            // progress.
            let blend = 0.75;
            let mut delta = bearing - heading;
            while delta > std::f64::consts::PI {
                delta -= std::f64::consts::TAU;
            }
            while delta < -std::f64::consts::PI {
                delta += std::f64::consts::TAU;
            }
            heading += blend * delta + 0.15 * randn(&mut rng);
            let step = (speed_mps * dt).min(dist_to_target);
            let (nlat, nlon) = step_m(lat, lon, step * heading.cos(), step * heading.sin());
            lat = nlat;
            lon = nlon;
        }

        let (obs_lat, obs_lon) = step_m(
            lat,
            lon,
            randn(&mut rng) * GPS_NOISE_M,
            randn(&mut rng) * GPS_NOISE_M,
        );
        let point = GeoPoint::new_unchecked(obs_lat, obs_lon).with_alt(50.0 + randn(&mut rng));
        builder
            .push(point, t)
            .expect("timestamps are constructed strictly ascending");
        emitted += 1;
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GroundDistance;

    #[test]
    fn stays_city_scale() {
        let t = geolife_like(2000, 1);
        let base = GeoPoint::new_unchecked(BASE_LAT, BASE_LON);
        for p in t.points() {
            // Anchors are within ~3 km + noise; nothing should leave ~30 km.
            assert!(p.distance(&base) < 30_000.0, "escaped to {p:?}");
        }
    }

    #[test]
    fn sampling_is_non_uniform() {
        let t = geolife_like(3000, 2);
        let ts = t.timestamps().unwrap();
        let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        // Coefficient of variation well above zero ⇒ non-uniform sampling.
        assert!(var.sqrt() / mean > 0.3, "cv = {}", var.sqrt() / mean);
        // And some long dark windows exist.
        assert!(gaps.iter().any(|&g| g > 60.0));
    }

    #[test]
    fn movement_is_continuous() {
        let t = geolife_like(1000, 3);
        let ts = t.timestamps().unwrap();
        for i in 1..t.len() {
            let d = t.dist(i - 1, i);
            let dt = ts[i] - ts[i - 1];
            // Never faster than vehicle speed + generous noise allowance.
            assert!(d <= 10.0 * dt + 40.0, "jump of {d} m in {dt} s at {i}");
        }
    }

    #[test]
    fn revisits_create_similar_segments() {
        // The anchor structure must produce at least two passes near some
        // anchor — a necessary condition for motifs to exist.
        let t = geolife_like(4000, 4);
        let probe = t[100];
        let mut close_later = 0;
        for i in 1000..t.len() {
            if t[i].distance(&probe) < 300.0 {
                close_later += 1;
            }
        }
        assert!(
            close_later > 0,
            "no revisit found — workload has no motif structure"
        );
    }
}
