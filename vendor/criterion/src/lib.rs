//! Minimal, API-compatible subset of `criterion`, vendored so the workspace
//! builds offline. Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros used by `harness = false` bench targets.
//!
//! Measurement is a plain adaptive timing loop (warm-up, then enough
//! iterations to fill the measurement window) — no outlier analysis or
//! statistics, but stable enough to seed a perf trajectory. Results are
//! printed per benchmark and appended as JSON lines to
//! `target/criterion/<bench-name>.json` (one object per benchmark:
//! `{"id": ..., "mean_ns": ..., "iters": ...}`) so CI can archive them.
//!
//! `--quick` on the command line (real criterion's flag) shrinks warm-up
//! and measurement windows ~10×; other CLI arguments are accepted and
//! ignored. Swap the path dependency for crates.io `criterion = "0.5"`
//! once network access is available.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (subset of the real type).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, printed as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// A parameter-only id, printed as the parameter itself.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    window: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.window.as_secs_f64() / per_iter).clamp(1.0, 1e7) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_secs_f64() * 1e9 / target as f64;
        self.iters = target;
    }
}

#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    window: Duration,
}

impl Settings {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        if quick {
            Settings {
                warm_up: Duration::from_millis(20),
                window: Duration::from_millis(50),
            }
        } else {
            Settings {
                warm_up: Duration::from_millis(200),
                window: Duration::from_millis(500),
            }
        }
    }
}

/// The benchmark driver (subset of the real `Criterion`).
pub struct Criterion {
    settings: Settings,
    results: Vec<(String, f64, u64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_args(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        self.run_one(id.to_string(), routine);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(&mut self, id: String, mut routine: R) {
        let mut bencher = Bencher {
            warm_up: self.settings.warm_up,
            window: self.settings.window,
            mean_ns: f64::NAN,
            iters: 0,
        };
        routine(&mut bencher);
        println!(
            "{id:<50} {:>14} /iter   ({} iters)",
            format_ns(bencher.mean_ns),
            bencher.iters
        );
        self.results.push((id, bencher.mean_ns, bencher.iters));
    }

    /// Writes collected results as JSON lines under `target/criterion/`.
    ///
    /// Called by [`criterion_main!`]; harmless to call again.
    pub fn finalize(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let Some(dir) = criterion_dir() else { return };
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let bench = std::env::args()
            .next()
            .map(PathBuf::from)
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .map(|s| {
                // Strip cargo's `-<hash>` suffix from the executable name.
                match s.rsplit_once('-') {
                    Some((base, hash)) if hash.len() == 16 => base.to_string(),
                    _ => s,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        let mut out = String::new();
        for (id, mean_ns, iters) in &self.results {
            let _ = writeln!(
                out,
                "{{\"id\": \"{}\", \"mean_ns\": {mean_ns}, \"iters\": {iters}}}",
                id.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let path = dir.join(format!("{bench}.json"));
        // A bench binary may hold several `criterion_group!`s, each calling
        // `finalize` on its own `Criterion`: truncate on the first write of
        // this process, append on later ones so no group's lines are lost.
        use std::sync::atomic::{AtomicBool, Ordering};
        static WROTE_THIS_PROCESS: AtomicBool = AtomicBool::new(false);
        let append = WROTE_THIS_PROCESS.swap(true, Ordering::Relaxed);
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(append)
            .truncate(!append)
            .write(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, out.as_bytes()));
        if written.is_ok() {
            println!("criterion (shim): results written to {}", path.display());
        }
    }
}

/// Locates `<workspace>/target/criterion`, creating nothing yet.
fn criterion_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(dir).join("criterion"));
    }
    // Walk up from the current directory to the outermost dir containing a
    // `target/` (the workspace root when run via cargo).
    let mut found = None;
    let mut cur = std::env::current_dir().ok()?;
    loop {
        if cur.join("target").is_dir() {
            found = Some(cur.join("target").join("criterion"));
        }
        if !cur.pop() {
            break;
        }
    }
    found
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// One named group of benchmarks (subset of the real `BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's loop adapts automatically.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim's loop adapts automatically.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(id, routine);
        self
    }

    /// Times one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(id, |b| routine(b, input));
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            settings: Settings {
                warm_up: Duration::from_millis(1),
                window: Duration::from_millis(2),
            },
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1.is_finite() && c.results[0].1 >= 0.0);
        assert!(c.results[0].2 >= 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("linear_space", 64).id, "linear_space/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(1500.0), "1.500 µs");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.2e9), "3.200 s");
    }
}
