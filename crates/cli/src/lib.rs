//! `fremo` CLI implementation library (separated from the thin binary so
//! the command surface is integration-testable).
//!
//! ```text
//! fremo generate  --dataset geolife --n 1000 --seed 1 --out walk.csv
//! fremo inspect   --input walk.csv
//! fremo discover  --input walk.csv --xi 100 [--algorithm auto] [--tau 32]
//!                 [--threads 4] [--k 3] [--epsilon 0.5] [--budget-seconds 1.5]
//!                 [--budget-subsets 5000] [--cache-limit 64m] [--spill-dir /tmp] [--json]
//! fremo discover-pair --a one.csv --b two.csv --xi 100
//! fremo compare   --a one.csv --b two.csv [--epsilon 25] [--json]
//! fremo experiment <table1|fig02..fig21|ext-approx|ext-topk|ext-join|ext-parallel>
//! fremo batch     --corpus a.csv,b.csv --input queries.jsonl
//! fremo serve     --corpus a.csv,b.csv [--addr 127.0.0.1:0] [--max-clients 32] ...
//! ```
//!
//! Analysis subcommands run through the [`fremo_core::engine::Engine`]
//! facade; `--json` emits the stable schema documented on
//! [`commands::outcome_to_json`]. `serve` answers the same schema over a
//! line-delimited JSON socket protocol (see `docs/SERVING.md`).

pub mod args;
pub mod commands;
pub mod serve;

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Human-readable message on unknown subcommands, bad flags, unreadable
/// inputs, or infeasible parameters.
pub fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate(&args::Parsed::parse(rest)?),
        "inspect" => commands::inspect(&args::Parsed::parse(rest)?),
        "discover" => commands::discover(&args::Parsed::parse(rest)?),
        "discover-pair" => commands::discover_pair(&args::Parsed::parse(rest)?),
        "compare" => commands::compare(&args::Parsed::parse(rest)?),
        "experiment" => commands::experiment(rest),
        "batch" => commands::batch(&args::Parsed::parse(rest)?),
        "serve" => serve::serve(&args::Parsed::parse(rest)?),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `fremo help`)")),
    }
}

/// Prints the usage banner to stderr.
pub fn print_usage() {
    eprintln!(
        "fremo — trajectory motif discovery with discrete Fréchet distance (EDBT 2017)

USAGE:
  fremo generate  --dataset <geolife|truck|baboon> --n <len> [--seed <u64>] [--out <file>]
  fremo inspect   --input <csv>
  fremo discover  --input <csv> --xi <len> [--algorithm <auto|brute|btm|gtm|gtm-star|approx:<eps>>]
                  [--tau <group-size>] [--threads <n>] [--k <count>] [--epsilon <eps>]
                  [--budget-seconds <s>] [--budget-subsets <n>]
                  [--cache-limit <bytes>] [--spill-dir <dir>] [--json]
  fremo discover-pair --a <csv> --b <csv> --xi <len> [--algorithm ...] [--tau ...] [--threads <n>]
                  [--cache-limit <bytes>] [--spill-dir <dir>] [--json]
  fremo compare   --a <csv> --b <csv> [--epsilon <m>] [--json]
  fremo experiment <table1|fig02|fig03|fig13..fig21|ext-approx|ext-topk|ext-join|ext-parallel>
  fremo batch     (--corpus <csv[,csv...]> | --dataset <name> --n <len> [--count <k>] [--seed <u64>])
                  [--input <jsonl|->] [--cache-limit <bytes>] [--spill-dir <dir>]
  fremo serve     [--addr 127.0.0.1:0] [--corpus <csv[,csv...]>]
                  [--dataset <name> --n <len> --count <k> --seed <u64>]
                  [--max-clients 32] [--tenant-queries 4] [--tenant-bytes <bytes>]
                  [--tenant-threads <n>] [--budget-seconds <s>] [--budget-subsets <n>]
                  [--cache-limit <bytes>] [--spill-dir <dir>]

Trajectories are lat,lon[,t] CSV files (GeoLife PLT is accepted for *.plt inputs).
The default --algorithm auto picks BruteDP/BTM/GTM/GTM* from n and ξ (paper Section 6).
--threads <n> runs the search on the parallel execution layer (0 = all cores; results
are bit-for-bit identical to serial); without it large inputs parallelize automatically.
--cache-limit <bytes> caps resident cache memory with per-entry LRU eviction (suffixes
k/m/g accepted, e.g. 64m); --spill-dir <dir> keeps evicted distance matrices on disk
and rehydrates them bit-identically (see docs/CACHING.md).
batch reads line-delimited query JSON (the serve request schema) from --input or stdin,
runs the whole set through the engine's batch executor (shared builds, fused scans,
bit-identical answers; docs/BATCHING.md), and prints one response line per query plus
a trailing batch-stats line.
serve answers the same JSON schema over a line protocol on a TCP socket: one request
object per line in, one response per line out (docs/SERVING.md has the schema); it
prints `listening <addr>` once bound and drains cleanly on an {{\"op\":\"shutdown\"}} request.
Set FREMO_SCALE=smoke|default|full to size the experiments, FREMO_THREADS to cap workers."
    );
}
