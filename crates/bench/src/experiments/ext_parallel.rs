//! Extension experiment: parallel execution scaling across worker counts,
//! measured through the engine's `ExecutionMode` (the same facade
//! production traffic uses), with a bit-for-bit cross-check against the
//! serial result on every repetition.

use fremo_core::engine::ExecutionMode;
use fremo_core::MotifConfig;
use fremo_trajectory::gen::Dataset;

use crate::experiments::Titled;
use crate::runner::{average, run_algorithm_with_mode, Algorithm, Measurement};
use crate::scale::Scale;
use crate::table::{fmt_secs, Table};
use crate::workload::trajectories;

/// Regenerates the parallel-scaling table.
///
/// # Panics
///
/// Panics when a parallel run returns a different motif DFD than the
/// serial run — that would falsify the exactness argument, so it must
/// never be averaged away.
#[must_use]
pub fn run(scale: Scale) -> Vec<Titled> {
    let n = scale.default_n();
    let xi = scale.default_xi();
    let reps = scale.repetitions();
    let cfg = MotifConfig::new(xi);
    let ts = trajectories(Dataset::GeoLife, n, reps, 3100);

    let serial: Vec<Measurement> = ts
        .iter()
        .map(|t| run_algorithm_with_mode(Algorithm::Btm, ExecutionMode::Serial, t, &cfg).0)
        .collect();
    let serial_avg = average(&serial);

    let mut table = Table::new(vec!["workers", "time (s)", "speedup vs serial BTM"]);
    table.row(vec![
        "serial".to_string(),
        fmt_secs(serial_avg.seconds),
        "1.00x".to_string(),
    ]);
    for workers in [1usize, 2, 4, 8] {
        let mode = ExecutionMode::Parallel { threads: workers };
        let mut times = Vec::new();
        for (t, base) in ts.iter().zip(&serial) {
            let (m, stats) = run_algorithm_with_mode(Algorithm::Btm, mode, t, &cfg);
            times.push(stats.total_seconds);
            assert_eq!(stats.threads_used, workers);
            let (d, base_d) = (m.distance.expect("motif"), base.distance.expect("motif"));
            assert_eq!(
                d.to_bits(),
                base_d.to_bits(),
                "parallel result diverged: {d} vs {base_d}"
            );
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        table.row(vec![
            workers.to_string(),
            fmt_secs(mean),
            format!("{:.2}x", serial_avg.seconds / mean.max(1e-12)),
        ]);
    }

    vec![(
        format!("Extension: engine parallel scaling (n={n}, xi={xi}, BTM, GeoLife-like)"),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let out = run(Scale::Smoke);
        assert!(out[0].1.render().contains("serial"));
    }
}
