//! The [`MotifDiscovery`] trait implemented by all four algorithms.

use fremo_trajectory::{GroundDistance, Trajectory};

use crate::config::MotifConfig;
use crate::result::Motif;
use crate::stats::SearchStats;

/// A trajectory-motif discovery algorithm (Problem 1 and its two-trajectory
/// variant).
///
/// All four implementations — [`crate::BruteDp`], [`crate::Btm`],
/// [`crate::Gtm`], [`crate::GtmStar`] — are *exact*: given the same input
/// and `ξ` they return motifs with the same (minimal) DFD.
pub trait MotifDiscovery<P: GroundDistance> {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Finds the motif within a single trajectory, with full search
    /// statistics. Returns `None` when no valid candidate exists
    /// (`n < 2ξ + 4`).
    fn discover_with_stats(
        &self,
        trajectory: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats);

    /// Finds the motif between two trajectories, with statistics. The
    /// motif's `first` indexes `a`, its `second` indexes `b`.
    fn discover_between_with_stats(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> (Option<Motif>, SearchStats);

    /// Convenience wrapper around
    /// [`MotifDiscovery::discover_with_stats`].
    fn discover(&self, trajectory: &Trajectory<P>, config: &MotifConfig) -> Option<Motif> {
        self.discover_with_stats(trajectory, config).0
    }

    /// Convenience wrapper around
    /// [`MotifDiscovery::discover_between_with_stats`].
    fn discover_between(
        &self,
        a: &Trajectory<P>,
        b: &Trajectory<P>,
        config: &MotifConfig,
    ) -> Option<Motif> {
        self.discover_between_with_stats(a, b, config).0
    }
}
