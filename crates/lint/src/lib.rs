//! `fremo-lint`: the workspace invariant checker.
//!
//! The engine's headline guarantees — parallel results bit-for-bit
//! identical to serial, eviction never changing answers, budgets that
//! report honest truncation — rest on source-level conventions: total
//! float orders, no hash-order in result paths, justified relaxed
//! atomics. This crate turns those conventions into machine-checked
//! rules. See `docs/LINTS.md` for the catalog.
//!
//! The checker is deliberately dependency-free (it must build before
//! anything else in CI) and hand-rolls its own lexer: with no crates.io
//! access there is no `syn`, and line-level token analysis is enough
//! for every rule here.
//!
//! # Suppressions
//!
//! A true positive that is genuinely sound can be silenced inline:
//!
//! ```text
//! // fremo-lint: allow(L3) -- join only fails if a worker panicked; propagating is correct
//! ```
//!
//! The reason after `--` is mandatory, the suppression must sit on the
//! offending line or in the comment block directly above it, and an
//! unused or malformed suppression is itself a finding (L0). Only plain
//! `//` comments count — doc comments may quote the syntax freely.

pub mod docs;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifier of one lint rule. `L0` is suppression hygiene itself;
/// `L1`–`L6` are source rules; `L7` checks `docs/*.md` symbol drift.
// lint: the PartialOrd derive is required by Ord on a fieldless enum —
// a total order; the workspace ban targets ad-hoc float calls.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    L0,
    L1,
    L2,
    L3,
    L4,
    L5,
    L6,
    L7,
}

impl LintId {
    pub const ALL: [LintId; 8] = [
        LintId::L0,
        LintId::L1,
        LintId::L2,
        LintId::L3,
        LintId::L4,
        LintId::L5,
        LintId::L6,
        LintId::L7,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            LintId::L0 => "L0",
            LintId::L1 => "L1",
            LintId::L2 => "L2",
            LintId::L3 => "L3",
            LintId::L4 => "L4",
            LintId::L5 => "L5",
            LintId::L6 => "L6",
            LintId::L7 => "L7",
        }
    }

    /// One-line description, used by `--list` and the docs test.
    pub fn title(self) -> &'static str {
        match self {
            LintId::L0 => "suppression hygiene: well-formed, reasoned, and used",
            LintId::L1 => "float ordering must be total (total_cmp, not partial_cmp)",
            LintId::L2 => "hash iteration must not feed results or eviction order",
            LintId::L3 => "no unwrap/expect/panic!/todo! in library code",
            LintId::L4 => "Ordering::Relaxed and unsafe need adjacent justification",
            LintId::L5 => "#[allow(...)] needs a recorded `// lint:` reason",
            LintId::L6 => "exact DFD kernels stay in f64 (no f32)",
            LintId::L7 => "docs/*.md symbol references must exist in the source",
        }
    }

    pub fn parse(s: &str) -> Option<LintId> {
        LintId::ALL.iter().copied().find(|id| id.as_str() == s)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub lint: LintId,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Run configuration.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Lints to skip entirely (their suppressions are also ignored).
    pub disabled: BTreeSet<LintId>,
}

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed (test-only files are skipped).
    pub files_scanned: usize,
    /// Number of `docs/*.md` files checked by L7.
    pub docs_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Stable machine-readable form: one JSON object, findings sorted,
    /// keys in fixed order. Hand-rolled so the checker stays
    /// dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"file\": \"");
            json_escape(&f.file, &mut out);
            out.push_str("\", \"line\": ");
            out.push_str(&f.line.to_string());
            out.push_str(", \"lint\": \"");
            out.push_str(f.lint.as_str());
            out.push_str("\", \"message\": \"");
            json_escape(&f.message, &mut out);
            out.push_str("\"}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"count\": ");
        out.push_str(&self.findings.len().to_string());
        out.push_str(",\n  \"files_scanned\": ");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\n  \"docs_scanned\": ");
        out.push_str(&self.docs_scanned.to_string());
        out.push_str("\n}\n");
        out
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Lints one source string under a virtual workspace-relative path.
/// This is the entry point the fixture tests use.
pub fn lint_source(path: &str, src: &str, opts: &Options) -> Vec<Finding> {
    rules::lint_source(path, src, opts)
}

/// Walks a workspace root and lints every in-scope source file plus
/// `docs/*.md`, returning a sorted report.
///
/// Scope: `crates/**/*.rs` and `src/**/*.rs`, excluding `target/`,
/// anything under a `fixtures/` directory (lint test data is *supposed*
/// to fire), and test-only files (`tests/`, `benches/`, `examples/`),
/// which are exempt from every source rule. `vendor/` sits outside the
/// walked roots by construction.
pub fn run_workspace(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut rs_files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut rs_files)?;
        }
    }
    rs_files.sort();

    let mut report = Report::default();
    let mut words: BTreeSet<String> = BTreeSet::new();
    for path in &rs_files {
        let rel = relative(root, path);
        let src = fs::read_to_string(path)?;
        // The word set for L7 mirrors the old shell gate: *all* .rs
        // files under crates/ and src/, tests included.
        docs::collect_words(&src, &mut words);
        if rules::is_test_path(&rel) {
            continue;
        }
        report.files_scanned += 1;
        report.findings.extend(rules::lint_source(&rel, &src, opts));
    }

    if !opts.disabled.contains(&LintId::L7) {
        let docs_dir = root.join("docs");
        if docs_dir.is_dir() {
            let mut docs_files: Vec<PathBuf> = fs::read_dir(&docs_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "md"))
                .collect();
            docs_files.sort();
            for path in docs_files {
                let rel = relative(root, &path);
                let text = fs::read_to_string(&path)?;
                report.docs_scanned += 1;
                report.findings.extend(docs::lint_doc(&rel, &text, &words));
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

/// Recursive walk collecting `.rs` files; skips `target` and `fixtures`
/// directories. Entries are sorted by the caller.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_valid_and_ordered() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                lint: LintId::L3,
                message: "say \"no\"".into(),
            }],
            files_scanned: 1,
            docs_scanned: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"lint\": \"L3\""));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn lint_ids_round_trip() {
        for id in LintId::ALL {
            assert_eq!(LintId::parse(id.as_str()), Some(id));
        }
        assert_eq!(LintId::parse("L9"), None);
    }
}
