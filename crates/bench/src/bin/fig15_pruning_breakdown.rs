//! Regenerates Figure 15 (pruning breakdown per bound).
use fremo_bench::experiments::{fig15_pruning_breakdown, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig15_pruning_breakdown::run(scale);
    print_all("Figure 15 (pruning breakdown per bound)", &tables);
}
