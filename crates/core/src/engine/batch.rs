//! Batch execution and multi-query optimization ([`Engine::execute_batch`]).
//!
//! Production traffic is many queries over the same corpus; executing
//! them one at a time repays the `O(n²)` matrix/bound precomputation
//! (and the candidate-list build + sort) once per query. The batch
//! executor recovers that shared work in four steps, each preserving
//! per-query outcomes **bit-identical to solo execution**
//! (`tests/batch_equivalence.rs` is the differential proof):
//!
//! 1. **Dedup.** Bit-identical queries ([`Query`] equality) execute
//!    once; duplicates receive a clone of the original's outcome.
//! 2. **Grouping.** Unique queries are grouped by
//!    `(scope, ξ, bounds)` — the exact identity of their cached
//!    `DenseMatrix` + `BoundTables` — so each group builds and pins its
//!    precomputation once, in a group-level pin context held across all
//!    members (warm hits even under cache pressure).
//! 3. **Fusion.** Compatible motif/top-k consumers in a group (serial
//!    BTM scans over the same tables) are answered by **one** pass over
//!    the shared sorted candidate list: each consumer keeps its own
//!    best-so-far, budget, and [`SearchStats`], replaying exactly the
//!    decision sequence of its solo scan.
//! 4. **Scheduling.** Groups run across the worker pool, largest group
//!    first, so hot entries are built before they are needed;
//!    [`super::ExecutionMode`] semantics stay per-query.
//!
//! See `docs/BATCHING.md` for the full rules and the pin lifecycle.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use fremo_trajectory::{DenseMatrix, DistanceSource, GroundDistance, Trajectory};

use crate::bounds::BoundTables;
use crate::config::{BoundKind, BoundSelection};
use crate::domain::Domain;
use crate::dp::{expand_subset, Bsf, DpBuffers};
use crate::search::{build_entries, list_bytes, sort_entries, SearchBudget};
use crate::stats::SearchStats;
use crate::topk::{top_k_rounds, ForbiddenIntervals};

use super::buffer::ScopeKey;
use super::cache::QueryCtx;
use super::{
    outcome_skeleton, AlgorithmChoice, Engine, EngineError, MatrixPrecision, MotifScope, Query,
    QueryKind, QueryOutcome, QueryResults, ResolvedAlgorithm, Session, TrajId,
};

/// What one [`Engine::execute_batch`] call shared, fused, and deduped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchStats {
    /// Groups formed over the unique queries (shared-precomputation
    /// groups and singleton groups alike).
    pub groups: usize,
    /// Queries that ran against a group-pinned matrix/table build paid
    /// for by another member (group cache users beyond the first).
    pub builds_shared: usize,
    /// Queries answered inside a fused candidate scan (counted only
    /// when at least two consumers actually fused).
    pub scans_fused: usize,
    /// Duplicate queries answered by cloning an identical query's
    /// outcome instead of executing.
    pub queries_deduped: usize,
}

/// Everything [`Engine::execute_batch`] returns: one result per input
/// query, in input order, plus the batch-level sharing diagnostics.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchOutcome {
    /// Per-query results, index-aligned with the input slice. Each entry
    /// is exactly what [`Engine::execute`] would have returned for that
    /// query (results and scan counters bit-identical; cache counters
    /// and wall times reflect the batch's sharing).
    pub outcomes: Vec<Result<QueryOutcome, EngineError>>,
    /// What the batch shared, fused, and deduped.
    pub stats: BatchStats,
}

/// Identity of a batch group: queries with equal keys share their cached
/// precomputation (and possibly a fused scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GroupKey {
    /// Motif/top-k queries over one cache entry family. `bounds`
    /// includes `tight`, which is part of the table cache key.
    Shared {
        scope: ScopeKey,
        xi: usize,
        bounds: BoundSelection,
    },
    /// Join/cluster/measures (and anything else without cacheable
    /// precomputation): a singleton group, scheduled but never shared.
    Solo(usize),
}

/// The trajectory handles a motif-style query reads (`None` for
/// workloads without a single scope).
fn member_ids(query: &Query) -> Option<(TrajId, Option<TrajId>)> {
    match &query.kind {
        QueryKind::Motif {
            scope: MotifScope::Within(id),
        } => Some((*id, None)),
        QueryKind::Motif {
            scope: MotifScope::Between(a, b),
        } => Some((*a, Some(*b))),
        QueryKind::TopK { id, .. } => Some((*id, None)),
        _ => None,
    }
}

/// The group key of a query: its cache-entry identity when it has one,
/// else a singleton key from its batch position.
fn group_key(query: &Query, index: usize) -> GroupKey {
    let scope = match &query.kind {
        QueryKind::Motif {
            scope: MotifScope::Within(id),
        } => ScopeKey::Within(id.index()),
        QueryKind::Motif {
            scope: MotifScope::Between(a, b),
        } => ScopeKey::Between(a.index(), b.index()),
        QueryKind::TopK { id, .. } => ScopeKey::Within(id.index()),
        _ => return GroupKey::Solo(index),
    };
    GroupKey::Shared {
        scope,
        xi: query.min_length,
        bounds: query.bounds,
    }
}

/// What one group member needs pinned, and whether it can join the
/// fused scan. Mirrors `Session::dispatch`'s validation order exactly:
/// a member the dispatcher would reject before touching the cache
/// contributes nothing here (it still runs solo to produce its error).
#[derive(Debug, Clone, Copy, Default)]
struct MemberNeeds {
    /// Performs cache lookups at all (shares the group's pinned build).
    uses_cache: bool,
    /// Reads the dense distance matrix.
    dense: bool,
    /// Reads bound tables at the group's `(ξ, tight)`.
    tables: bool,
    /// Additionally reads the relaxed tables (GTM-family grouping).
    relaxed: bool,
    /// GTM*: relaxed tables only, never triggers a dense build.
    star: bool,
    /// Resolved scan worker count (0 = serial).
    threads: usize,
    /// Serial BTM motif / top-k: eligible for the fused scan.
    fusable: bool,
}

fn member_needs<P: GroundDistance>(
    engine: &Engine<P>,
    query: &Query,
    longest: usize,
) -> MemberNeeds {
    let none = MemberNeeds::default();
    let ids_ok = member_ids(query).is_some_and(|(a, b)| {
        engine.trajectory(a).is_ok() && b.is_none_or(|b| engine.trajectory(b).is_ok())
    });
    if !ids_ok || query.min_length == 0 || query.group_size == 0 {
        return none;
    }
    match &query.kind {
        QueryKind::Motif { .. } => {
            if query.precision != MatrixPrecision::F64 {
                // The f32 regime builds query-local artifacts; the shared
                // cache never sees them.
                return none;
            }
            let threads = query.execution.resolve(longest);
            match query.algorithm.resolve(longest, query.min_length) {
                ResolvedAlgorithm::BruteDp => MemberNeeds {
                    uses_cache: true,
                    dense: true,
                    threads,
                    ..none
                },
                ResolvedAlgorithm::Btm => MemberNeeds {
                    uses_cache: true,
                    dense: true,
                    tables: true,
                    threads,
                    fusable: threads == 0,
                    ..none
                },
                ResolvedAlgorithm::Gtm => MemberNeeds {
                    uses_cache: true,
                    dense: true,
                    tables: true,
                    relaxed: true,
                    threads,
                    ..none
                },
                ResolvedAlgorithm::Approx(e) if e >= 0.0 && e.is_finite() => MemberNeeds {
                    uses_cache: true,
                    dense: true,
                    tables: true,
                    relaxed: true,
                    threads,
                    ..none
                },
                // Invalid ε is rejected before any cache call.
                ResolvedAlgorithm::Approx(_) => none,
                ResolvedAlgorithm::GtmStar => MemberNeeds {
                    uses_cache: true,
                    star: true,
                    threads,
                    ..none
                },
            }
        }
        QueryKind::TopK { k, .. } => {
            if query.precision != MatrixPrecision::F64 || *k == 0 {
                return none;
            }
            if !matches!(
                query.algorithm,
                AlgorithmChoice::Auto | AlgorithmChoice::Btm
            ) {
                return none;
            }
            let threads = query.execution.resolve(longest);
            MemberNeeds {
                uses_cache: true,
                dense: true,
                tables: true,
                threads,
                fusable: threads == 0,
                ..none
            }
        }
        _ => none,
    }
}

/// Per-group execution results plus its (builds_shared, scans_fused)
/// tallies.
type GroupResult = Vec<(usize, Result<QueryOutcome, EngineError>)>;

/// The trajectory (pair) a shared group runs over.
type GroupTrajectories<P> = (Arc<Trajectory<P>>, Option<Arc<Trajectory<P>>>);

struct SharedState {
    slots: Vec<Option<Result<QueryOutcome, EngineError>>>,
    builds_shared: usize,
    scans_fused: usize,
}

/// The batch execution path behind [`Engine::execute_batch`].
pub(super) fn execute<P: GroundDistance + Send + Sync>(
    engine: &Engine<P>,
    queries: &[Query],
) -> BatchOutcome {
    // 1. Dedup: map each query to its first bit-identical occurrence.
    let mut canonical: Vec<usize> = (0..queries.len()).collect();
    for i in 0..queries.len() {
        for j in 0..i {
            if canonical[j] == j && queries[j] == queries[i] {
                canonical[i] = j;
                break;
            }
        }
    }
    let queries_deduped = canonical
        .iter()
        .enumerate()
        .filter(|&(i, &c)| c != i)
        .count();

    // 2. Group the unique queries by cache-entry identity, preserving
    // first-appearance order (the map only indexes into `groups`; no
    // result ever depends on hash iteration order).
    let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
    let mut by_key: HashMap<GroupKey, usize> = HashMap::new();
    for (i, query) in queries.iter().enumerate() {
        if canonical[i] != i {
            continue;
        }
        let key = group_key(query, i);
        if let Some(&g) = by_key.get(&key) {
            groups[g].1.push(i);
        } else {
            by_key.insert(key, groups.len());
            groups.push((key, vec![i]));
        }
    }

    // 4. Schedule hottest groups first (stable on ties), so the builds
    // with the most consumers land in the cache before anything else
    // wants them.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups[g].1.len()));

    let state = Mutex::new(SharedState {
        slots: (0..queries.len()).map(|_| None).collect(),
        builds_shared: 0,
        scans_fused: 0,
    });
    let cursor = crate::pool::WorkCursor::new(order.len());
    let workers = crate::pool::resolve_threads(0).min(order.len()).max(1);
    crate::pool::run_workers(workers, |_| {
        let mut session = engine.session();
        while let Some(slot) = cursor.claim() {
            let (key, members) = &groups[order[slot]];
            let (out, shared, fused) = execute_group(engine, queries, *key, members, &mut session);
            let mut state = state.lock();
            for (idx, result) in out {
                state.slots[idx] = Some(result);
            }
            state.builds_shared += shared;
            state.scans_fused += fused;
        }
    });

    let SharedState {
        mut slots,
        builds_shared,
        scans_fused,
    } = state.into_inner();
    for i in 0..queries.len() {
        if canonical[i] != i {
            slots[i] = slots[canonical[i]].clone();
        }
    }
    let outcomes = slots
        .into_iter()
        // fremo-lint: allow(L3) -- the worker loop above drained the
        // whole group order, so every canonical slot was filled, and
        // the dedup pass just copied canonical slots into duplicates.
        .map(|slot| slot.expect("every batch query is executed exactly once"))
        .collect();
    BatchOutcome {
        outcomes,
        stats: BatchStats {
            groups: groups.len(),
            builds_shared,
            scans_fused,
            queries_deduped,
        },
    }
}

/// Executes one group: pin its shared precomputation, answer fusable
/// members in one scan, run the rest through the ordinary solo path
/// (which now hits warm), and release the group pins last.
fn execute_group<P: GroundDistance + Sync>(
    engine: &Engine<P>,
    queries: &[Query],
    key: GroupKey,
    members: &[usize],
    session: &mut Session<'_, P>,
) -> (GroupResult, usize, usize) {
    let GroupKey::Shared { scope, xi, bounds } = key else {
        let out = members
            .iter()
            .map(|&i| (i, session.execute(&queries[i])))
            .collect();
        return (out, 0, 0);
    };

    // Resolve the group's trajectories through the first member whose
    // handles this engine issued (all valid members of a group address
    // the same corpus indices; invalid ones error through the solo path).
    let resolved: Option<GroupTrajectories<P>> = members.iter().find_map(|&i| {
        let (a, b) = member_ids(&queries[i])?;
        let a = engine.trajectory(a).ok()?;
        let b = match b {
            None => None,
            Some(b) => Some(engine.trajectory(b).ok()?),
        };
        Some((a, b))
    });

    let mut out = GroupResult::with_capacity(members.len());
    let mut builds_shared = 0;
    let mut scans_fused = 0;
    let mut fused: Vec<usize> = Vec::new();
    let mut gctx = QueryCtx::default();
    let mut group_pinned = false;

    if let Some((a, b)) = &resolved {
        let pa = a.points();
        let pb = b.as_deref().map(Trajectory::points);
        let n = a.len();
        let m = b.as_ref().map(|b| b.len());
        let domain = match m {
            None => Domain::Within { n },
            Some(m) => Domain::Between { n, m },
        };
        let longest = n.max(m.unwrap_or(0));

        let mut dense = false;
        let mut tables = false;
        let mut relaxed = false;
        let mut star = false;
        let mut build_threads = 0;
        let mut cache_users = 0;
        for &i in members {
            let needs = member_needs(engine, &queries[i], longest);
            dense |= needs.dense;
            tables |= needs.tables;
            relaxed |= needs.relaxed;
            star |= needs.star;
            build_threads = build_threads.max(needs.threads);
            cache_users += usize::from(needs.uses_cache);
            if needs.fusable {
                fused.push(i);
            }
        }

        // Build/pin the group's artifacts exactly once, in a dedicated
        // pin context held until every member has run: member queries
        // then hit resident entries even under a tight cache limit.
        // Parallel builds are bit-identical to serial ones, so the max
        // member thread count is safe (and fastest) for the cold build.
        if cache_users >= 2 {
            // GTM* reads the relaxed table entry `(ξ, tight=false)`; when
            // the group's own tables are tight it needs the relaxed set
            // built alongside, exactly like GTM's grouping machinery.
            let want_relaxed = relaxed || (star && bounds.tight);
            if tables {
                let _ = engine.cache.prepared_with_relaxed(
                    scope,
                    pa,
                    pb,
                    domain,
                    xi,
                    bounds,
                    want_relaxed,
                    build_threads,
                    &mut gctx,
                );
            } else {
                if dense {
                    let _ = engine.cache.matrix(scope, pa, pb, build_threads, &mut gctx);
                }
                if star {
                    let _ = engine
                        .cache
                        .gtm_star_prepared(scope, pa, pb, domain, xi, &mut gctx);
                }
            }
            group_pinned = true;
            builds_shared = cache_users - 1;
        }

        if fused.len() >= 2 {
            scans_fused = fused.len();
            let fused_members: Vec<(usize, &Query)> =
                fused.iter().map(|&i| (i, &queries[i])).collect();
            for (idx, outcome) in execute_fused(
                engine,
                scope,
                pa,
                pb,
                domain,
                xi,
                bounds,
                &fused_members,
                &mut session.buffers,
            ) {
                out.push((idx, Ok(outcome)));
            }
        } else {
            fused.clear();
        }
    }

    for &i in members {
        if !fused.contains(&i) {
            out.push((i, session.execute(&queries[i])));
        }
    }

    // Release the group pins only after the last member ran warm.
    if group_pinned {
        let _ = engine.cache.finish_query(&mut gctx);
    }
    (out, builds_shared, scans_fused)
}

/// A fusable query's role in the shared scan.
#[derive(Debug, Clone, Copy)]
enum FuseKind {
    /// Serial BTM motif: one best-first walk.
    Motif,
    /// Serial diverse top-k: round 0 runs inside the fused walk (with no
    /// forbidden intervals, the masked candidate list *is* the shared
    /// list), rounds 1..k continue through `top_k_rounds`.
    TopK(usize),
}

/// One consumer of the fused walk: its own best-so-far, budget, pins,
/// and statistics — the walk interleaves consumers per entry, but each
/// consumer's decision sequence is exactly its solo scan's.
struct Consumer<'q> {
    qidx: usize,
    query: &'q Query,
    kind: FuseKind,
    started: Instant,
    ctx: QueryCtx,
    budget: Option<SearchBudget>,
    bsf: Bsf,
    stats: SearchStats,
    /// Sorted-list index where this consumer stopped (`None` = ran the
    /// full list).
    stop: Option<usize>,
    completed: bool,
}

/// One pass over the shared sorted candidate list answering every
/// consumer, bit-identical per consumer to its solo serial scan: the
/// entry list and its strict-total-order sort are pure functions of the
/// shared tables, and each consumer applies its own prune/budget/expand
/// decisions with its own `Bsf` and counters. The DP scratch buffer is
/// shared — expansions never read prior scratch contents, so results
/// cannot depend on the interleaving.
// lint: internal search-kernel entry threading prepared state; a
// param struct would churn every call site without adding clarity.
#[allow(clippy::too_many_arguments)]
fn execute_fused<P: GroundDistance + Sync>(
    engine: &Engine<P>,
    key: ScopeKey,
    pa: &[P],
    pb: Option<&[P]>,
    domain: Domain,
    xi: usize,
    sel: BoundSelection,
    members: &[(usize, &Query)],
    buf: &mut DpBuffers,
) -> Vec<(usize, QueryOutcome)> {
    // Per-member prologue, mirroring `Session::execute`: count the
    // query, take its own pins (warm hits on the group-pinned entries)
    // so its outcome carries an honest per-query cache report.
    let mut shared: Option<(Arc<DenseMatrix>, Arc<BoundTables>)> = None;
    let mut consumers: Vec<Consumer<'_>> = Vec::with_capacity(members.len());
    for &(qidx, query) in members {
        let started = Instant::now();
        // relaxed: a monotonic counter; nothing is ordered by it.
        engine.queries.fetch_add(1, Ordering::Relaxed);
        let mut ctx = QueryCtx::default();
        let (src, tables) = engine
            .cache
            .prepared(key, pa, pb, domain, xi, sel, 0, &mut ctx);
        if shared.is_none() {
            shared = Some((src, tables));
        }
        let kind = match &query.kind {
            QueryKind::TopK { k, .. } => FuseKind::TopK(*k),
            _ => FuseKind::Motif,
        };
        consumers.push(Consumer {
            qidx,
            query,
            kind,
            started,
            ctx,
            budget: query.budget.to_search_budget(started),
            // The engine's BTM motif path searches exactly (ε = 0);
            // each top-k round starts from a fresh best-so-far.
            bsf: match kind {
                FuseKind::Motif => Bsf::approximate(0.0),
                FuseKind::TopK(_) => Bsf::new(),
            },
            stats: SearchStats::default(),
            stop: None,
            completed: true,
        });
    }
    // fremo-lint: allow(L3) -- execute_group only calls execute_fused
    // with ≥ 2 fusable members, and the prologue loop sets `shared`
    // unconditionally on its first iteration.
    let (src, tables) = shared.expect("fused scan requires at least one consumer");
    let (src, tables) = (src.as_ref(), tables.as_ref());

    // One candidate list, one sort. The strict total key makes the
    // sorted permutation unique, so this is the list every solo serial
    // scan would have walked — including top-k round 0, whose unmasked
    // start set is all subsets with uncapped extents.
    let mut entries = build_entries(src, tables, sel, domain.subsets(xi));
    sort_entries(&mut entries);

    for c in &mut consumers {
        c.stats = SearchStats {
            bytes_distance_matrix: src.bytes(),
            bytes_bounds: tables.bytes(),
            pairs_total: domain.pairs_count(xi),
            precompute_seconds: c.started.elapsed().as_secs_f64(),
            threads_used: 1,
            ..SearchStats::default()
        };
        match c.kind {
            FuseKind::Motif => {
                c.stats.bytes_lists = list_bytes(&entries);
                c.stats.subsets_total = entries.len() as u64;
            }
            FuseKind::TopK(_) => {
                c.stats.subsets_total = domain.subsets_count(xi);
            }
        }
    }

    // The fused walk: per entry, every still-active consumer replays its
    // solo loop body — prune check first, then budget, then expansion
    // with its own bsf/stats.
    let end_tables = if sel.end_cross { Some(tables) } else { None };
    let mut active = consumers.len();
    for (idx, e) in entries.iter().enumerate() {
        for c in &mut consumers {
            if c.stop.is_some() {
                continue;
            }
            if c.bsf.prunable(e.lb) {
                c.stop = Some(idx);
                active -= 1;
                continue;
            }
            if c.budget
                .as_ref()
                .is_some_and(|b| b.exceeded(c.stats.subsets_expanded))
            {
                c.stop = Some(idx);
                c.completed = false;
                active -= 1;
                continue;
            }
            let (i, j) = (e.i as usize, e.j as usize);
            c.stats.subsets_expanded += 1;
            c.stats.pairs_exact += domain.pairs_in_subset(i, j, xi);
            expand_subset(
                src,
                domain,
                xi,
                i,
                j,
                end_tables,
                true,
                &mut c.bsf,
                &mut c.stats,
                buf,
            );
        }
        if active == 0 {
            break;
        }
    }

    // Per-consumer epilogue: exactly the solo path's post-scan
    // accounting for its kind.
    let mut out = Vec::with_capacity(consumers.len());
    for mut c in consumers {
        let stop = c.stop.unwrap_or(entries.len());
        let mut stats = std::mem::take(&mut c.stats);
        let mut outcome = match c.kind {
            FuseKind::Motif => {
                if c.completed {
                    // `process_sorted_subsets`' attribution walk over the
                    // skipped tail, against the final best-so-far.
                    for e in &entries[stop..] {
                        let (i, j) = (e.i as usize, e.j as usize);
                        let comps = tables.subset_bounds(src, sel, i, j);
                        let pairs = domain.pairs_in_subset(i, j, xi);
                        let kind = comps
                            .attribute(|v| c.bsf.prunable(v))
                            .unwrap_or(BoundKind::Band);
                        stats.record_subset_pruned(kind, pairs);
                        stats.subsets_skipped_sorted += 1;
                    }
                } else {
                    stats.subsets_skipped_budget += (entries.len() - stop) as u64;
                    stats.pairs_skipped_budget +=
                        stats.pairs_total.saturating_sub(stats.pairs_accounted());
                }
                stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
                stats.total_seconds = c.started.elapsed().as_secs_f64();
                outcome_skeleton(QueryResults::Motif(c.bsf.motif), "BTM", stats, !c.completed)
            }
            FuseKind::TopK(k) => {
                // Round-0 epilogue of `top_k_rounds`' serial leg: a
                // truncated round accounts its skipped subsets (a
                // prunable stop accounts nothing — later rounds revisit).
                if !c.completed {
                    stats.subsets_skipped_budget += (entries.len() - stop) as u64;
                }
                let mut results = Vec::with_capacity(k);
                let mut completed = c.completed;
                if let Some(motif) = c.bsf.motif {
                    let mut forbidden = ForbiddenIntervals::new();
                    forbidden.add(motif.first.0, motif.first.1);
                    forbidden.add(motif.second.0, motif.second.1);
                    results.push(motif);
                    if completed {
                        let config = c.query.motif_config();
                        completed = top_k_rounds(
                            src,
                            tables,
                            domain,
                            &config,
                            k,
                            buf,
                            c.budget.as_ref(),
                            0,
                            &mut forbidden,
                            &mut results,
                            &mut stats,
                        );
                    }
                }
                if !completed {
                    stats.pairs_skipped_budget +=
                        stats.pairs_total.saturating_sub(stats.pairs_accounted());
                }
                stats.bytes_dp = stats.bytes_dp.max(buf.bytes_for_width(domain.len_b()));
                stats.total_seconds = c.started.elapsed().as_secs_f64();
                outcome_skeleton(QueryResults::TopK(results), "BTM(top-k)", stats, !completed)
            }
        };
        // Mirror `Session::execute`'s epilogue per consumer.
        let report = engine.cache.finish_query(&mut c.ctx);
        outcome.cache = report;
        outcome.wall_seconds = c.started.elapsed().as_secs_f64();
        out.push((c.qidx, outcome));
    }
    out
}
