//! Buffer manager for the engine's memoized search state, safe for
//! concurrent sessions.
//!
//! PR 4 built a classic database buffer manager — per-entry byte
//! accounting, exact-LRU replacement, pin counts, an optional disk spill
//! tier — but its pin log and eviction paths were designed single-writer:
//! one query at a time pinned entries, and `finish_query` zeroed every
//! pin wholesale. This revision re-proves the same invariants when pins
//! from concurrent sessions interleave:
//!
//! * **Sharded residency.** Frames live in [`SHARDS`] hash-map shards,
//!   each behind its own `parking_lot::RwLock`. The hot path — pinning a
//!   resident entry and cloning its [`Payload`] out — takes one shard
//!   *read* lock plus one atomic pin increment, so concurrent warm
//!   queries on different (or the same) entries never serialize on a
//!   global lock.
//! * **One residency ledger.** Byte accounting, the exact-LRU
//!   [`replacer::LruReplacer`], the spill tier handle, and the lifetime
//!   counters live under a single `meta` mutex: exact global LRU needs a
//!   global order of accesses, so the ledger is deliberately *not*
//!   sharded — but it is only touched on insert, query finish, and
//!   eviction, never on a warm hit.
//! * **Per-session pin logs.** Every pin is recorded in the *session's*
//!   [`PinLog`], not pool state. `finish_query` replays that log in
//!   access order — decrementing exactly the pins this session took and
//!   stamping the replacer deterministically — so two sessions finishing
//!   concurrently release only their own pins. (The old design's
//!   `pins = 0` wholesale release would have dropped another session's
//!   pins on the floor.)
//! * **Single-flight builds.** A cold miss on a key announces the build
//!   in an [`Inflight`] table; concurrent sessions missing the same key
//!   wait on a condvar instead of redundantly recomputing the same
//!   `O(n²)` matrix, then pin the builder's insert.
//!
//! ## Lock order
//!
//! `corpus → meta → shard` — the engine's corpus lock (if held at all) is
//! released before any cache call, `meta` is acquired before any shard
//! lock on the mutating paths, at most one shard lock is held at a time,
//! and the `Inflight` mutex is a leaf (never held while acquiring
//! anything else). The read path (`pin_if_resident`) takes only a shard
//! lock, which is always safe to acquire under `meta` and never acquires
//! `meta` itself. See `docs/SERVING.md` for the full argument.
//!
//! ## Why eviction stays exact
//!
//! A frame is evictable only when its atomic pin count is zero. Pin
//! *increments* happen only under a shard **read** lock; the evictor
//! holds that shard's **write** lock when it checks the count, so no pin
//! can land between the check and the removal. Pin *decrements* happen
//! only under `meta`, which the evictor also holds — so an eviction
//! decision can never race a release either. A session that skipped a
//! pinned victim loses nothing: the pinning session re-stamps the entry
//! into the replacer when its log replays.
//!
//! The pool remains policy-free about *what* is cached: the key
//! vocabulary ([`ScopeKey`], [`EntryKey`]) and the build-or-reuse logic
//! live in [`super::cache::CorpusCache`].

pub(crate) mod replacer;
pub(crate) mod spill;

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};

use parking_lot::{Mutex, RwLock};

use fremo_trajectory::{DenseMatrix, DistanceSource as _};

use crate::bounds::BoundTables;

use super::cache::CacheReport;
use replacer::LruReplacer;
use spill::SpillStore;

/// Which distance matrix a cached computation is over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ScopeKey {
    /// Within one trajectory (upper-triangle matrix).
    Within(usize),
    /// Between two trajectories, in this order.
    Between(usize, usize),
}

/// Identity of one buffer-pool entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum EntryKey {
    /// A dense ground-distance matrix for a scope.
    Matrix(ScopeKey),
    /// Bound tables for `(scope, ξ, tight?)`.
    Tables(ScopeKey, usize, bool),
}

/// What a frame holds. Payloads are `Arc`-shared: a session clones the
/// handle out of the pool under a shard read lock and keeps using it
/// even if the frame is evicted mid-query (the pin prevents that, but
/// the `Arc` makes it safe by construction).
#[derive(Clone)]
pub(crate) enum Payload {
    /// A dense ground-distance matrix.
    Matrix(Arc<DenseMatrix>),
    /// Bound tables.
    Tables(Arc<BoundTables>),
}

impl Payload {
    /// Heap bytes of the held structure (the frame's accounting unit).
    fn bytes(&self) -> usize {
        match self {
            Payload::Matrix(m) => m.bytes(),
            Payload::Tables(t) => t.bytes(),
        }
    }
}

/// One session's record of the pins it took, in access order. Replayed
/// by [`BufferPool::finish_query`] so LRU stamps reflect within-query
/// use order deterministically and only this session's pins are
/// released.
#[derive(Default)]
pub(crate) struct PinLog(Vec<EntryKey>);

impl PinLog {
    /// Whether this log holds no unreleased pins.
    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// One resident entry: its payload, size, and pin count.
struct Frame {
    payload: Payload,
    /// Byte size at insert time (payloads are immutable).
    bytes: usize,
    /// How many outstanding session pins reference this entry; only
    /// frames with `pins == 0` are eviction candidates. Incremented
    /// under a shard read lock, decremented under `meta` — see the
    /// module docs for why eviction can race neither.
    pins: AtomicU32,
}

/// Number of frame-map shards. Eight is plenty: entries are `O(n²)`
/// matrices, so a pool holds dozens of frames, not thousands, and the
/// shards exist to keep warm *pin traffic* from serializing, not to
/// scale the map itself.
const SHARDS: usize = 8;

/// Deterministic shard index for a key (no `RandomState`: shard choice
/// must not vary between processes, or spill/debug output would).
fn shard_index(key: &EntryKey) -> usize {
    let (scope, salt) = match key {
        EntryKey::Matrix(s) => (s, 0usize),
        EntryKey::Tables(s, xi, tight) => (s, 1 + xi.wrapping_mul(2) + usize::from(*tight)),
    };
    let base = match scope {
        ScopeKey::Within(i) => i.wrapping_mul(2),
        ScopeKey::Between(a, b) => a.wrapping_mul(31).wrapping_add(*b).wrapping_mul(2) + 1,
    };
    base.wrapping_mul(0x9E37_79B9)
        .wrapping_add(salt.wrapping_mul(0x85EB_CA6B))
        % SHARDS
}

/// The single residency ledger: replacement state, byte accounting,
/// the spill tier, and lifetime counters.
struct PoolMeta {
    replacer: LruReplacer<EntryKey>,
    resident_bytes: usize,
    limit: Option<usize>,
    /// `Arc` so spill I/O can run outside the `meta` lock on the load
    /// path; the store's drop (which removes its directory) then waits
    /// for the last in-flight load.
    spill: Option<Arc<SpillStore>>,
    /// Lifetime counters plus the `resident_bytes` gauge. Lookup
    /// counters are merged in at query end; eviction counters at
    /// eviction time.
    counters: CacheReport,
}

/// Single-flight table: keys currently being built by some session.
struct Inflight {
    building: StdMutex<HashSet<EntryKey>>,
    done: Condvar,
}

impl Inflight {
    fn lock(&self) -> MutexGuard<'_, HashSet<EntryKey>> {
        // A panic while holding this mutex can only come from a build
        // closure, and the BuildPermit drop guard has already removed
        // the key by the time the poison propagates — recover the map.
        self.building.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Proof that the holder is the unique builder of `key`; removing the
/// key and waking waiters on drop keeps the table correct even if a
/// build unwinds.
pub(crate) struct BuildPermit<'a> {
    inflight: &'a Inflight,
    key: EntryKey,
}

impl Drop for BuildPermit<'_> {
    fn drop(&mut self) {
        self.inflight.lock().remove(&self.key);
        self.inflight.done.notify_all();
    }
}

/// Outcome of announcing a build: either this session owns it, or it
/// waited for another session's build to finish and must re-probe.
pub(crate) enum BuildSlot<'a> {
    /// No other session is building `key`: the caller builds, inserts,
    /// then drops the permit.
    Builder(BuildPermit<'a>),
    /// Another session was building `key`; its insert has landed (or its
    /// build failed) — re-probe residency.
    Waited,
}

/// The buffer pool: sharded resident frames, one residency ledger, and
/// the single-flight build table. All methods take `&self`; concurrent
/// sessions share one pool.
pub(crate) struct BufferPool {
    shards: Vec<RwLock<HashMap<EntryKey, Frame>>>,
    meta: Mutex<PoolMeta>,
    inflight: Inflight,
}

impl BufferPool {
    pub(crate) fn new() -> Self {
        BufferPool {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            meta: Mutex::new(PoolMeta {
                replacer: LruReplacer::new(),
                resident_bytes: 0,
                limit: None,
                spill: None,
                counters: CacheReport::default(),
            }),
            inflight: Inflight {
                building: StdMutex::new(HashSet::new()),
                done: Condvar::new(),
            },
        }
    }

    /// Replaces the byte limit and immediately evicts down to it.
    /// Entries pinned by running sessions survive (the limit re-applies
    /// when they finish); evictions are charged to the pool's lifetime
    /// counters but no session's per-query report.
    pub(crate) fn set_limit(&self, limit: Option<usize>) {
        let mut scratch = CacheReport::default();
        let mut meta = self.meta.lock();
        meta.limit = limit;
        self.enforce_limit(&mut meta, &mut scratch);
    }

    /// Enables (or disables) the disk spill tier.
    ///
    /// # Errors
    ///
    /// Propagates [`SpillStore::new`]'s error when the per-engine spill
    /// directory cannot be created (including a name collision with a
    /// live directory — see the spill module docs).
    pub(crate) fn set_spill(&self, root: Option<&Path>, engine_id: u64) -> io::Result<()> {
        let store = match root {
            Some(r) => Some(Arc::new(SpillStore::new(r, engine_id)?)),
            None => None,
        };
        self.meta.lock().spill = store;
        Ok(())
    }

    /// The spill tier handle, if configured (cloned out so file I/O
    /// runs outside the `meta` lock).
    pub(crate) fn spill_store(&self) -> Option<Arc<SpillStore>> {
        self.meta.lock().spill.clone()
    }

    /// Resident heap bytes (spilled entries excluded).
    pub(crate) fn bytes(&self) -> usize {
        self.meta.lock().resident_bytes
    }

    /// Lifetime counters plus the resident-bytes gauge. Session-local
    /// lookup counters merge in at `finish_query`, so totals advance at
    /// query granularity.
    pub(crate) fn counters(&self) -> CacheReport {
        self.meta.lock().counters
    }

    /// Whether `key` is resident right now.
    #[cfg(test)]
    pub(crate) fn contains(&self, key: EntryKey) -> bool {
        self.shards[shard_index(&key)].read().contains_key(&key)
    }

    /// Pins `key` if resident — logging the pin in the *session's* log —
    /// and clones its payload handle out; `None` on a miss.
    pub(crate) fn pin_if_resident(&self, key: EntryKey, log: &mut PinLog) -> Option<Payload> {
        let shard = self.shards[shard_index(&key)].read();
        let frame = shard.get(&key)?;
        // The count is a pure gate: the evictor reads it holding this
        // shard's write lock (excluding this increment) and the meta
        // lock (excluding decrements); no data is published through it.
        // relaxed: gate-only counter, guarded by the locks above.
        frame.pins.fetch_add(1, Ordering::Relaxed);
        log.0.push(key);
        Some(frame.payload.clone())
    }

    /// Announces a build of `key`, or waits for another session's
    /// in-flight build of the same key to finish. Callers loop:
    /// probe residency → `begin_build` → on [`BuildSlot::Builder`]
    /// re-probe once (the prior builder may have just landed), build,
    /// insert; on [`BuildSlot::Waited`] re-probe.
    pub(crate) fn begin_build(&self, key: EntryKey) -> BuildSlot<'_> {
        let mut building = self.inflight.lock();
        if building.insert(key) {
            return BuildSlot::Builder(BuildPermit {
                inflight: &self.inflight,
                key,
            });
        }
        while building.contains(&key) {
            building = self
                .inflight
                .done
                .wait(building)
                .unwrap_or_else(|e| e.into_inner());
        }
        BuildSlot::Waited
    }

    /// Inserts a fresh entry, pinned for the calling session, then
    /// evicts unpinned entries while over the limit (evictions are
    /// charged to `local`). An entry larger than the whole limit is
    /// still admitted — the query needs it — and falls out at query end.
    ///
    /// If `key` is already resident (two sessions raced past the
    /// single-flight gate, e.g. builder finished between a waiter's
    /// probe and its own build), the *resident* payload wins: it is
    /// pinned and returned, and the duplicate build is dropped — every
    /// session must end up reading the same allocation.
    #[cfg(test)]
    pub(crate) fn insert(&self, key: EntryKey, payload: Payload, log: &mut PinLog) -> Payload {
        self.insert_tallied(key, payload, log, &mut CacheReport::default())
    }

    /// [`BufferPool::insert`] with evictions charged to the session's
    /// local report.
    pub(crate) fn insert_tallied(
        &self,
        key: EntryKey,
        payload: Payload,
        log: &mut PinLog,
        local: &mut CacheReport,
    ) -> Payload {
        let bytes = payload.bytes();
        let mut meta = self.meta.lock();
        let out = {
            let mut shard = self.shards[shard_index(&key)].write();
            match shard.get(&key) {
                Some(existing) => {
                    // relaxed: same gate-only argument as in
                    // `pin_if_resident`; we also hold shard-write + meta.
                    existing.pins.fetch_add(1, Ordering::Relaxed);
                    log.0.push(key);
                    return existing.payload.clone();
                }
                None => {
                    let out = payload.clone();
                    shard.insert(
                        key,
                        Frame {
                            payload,
                            bytes,
                            pins: AtomicU32::new(1),
                        },
                    );
                    out
                }
            }
        };
        log.0.push(key);
        meta.resident_bytes += bytes;
        meta.counters.resident_bytes = meta.resident_bytes as u64;
        self.enforce_limit(&mut meta, local);
        out
    }

    /// Ends one session's query: replays the session's pin log in
    /// access order (stamping the replacer and releasing exactly the
    /// pins that session took), merges the session's lookup counters
    /// into the lifetime totals, enforces the byte limit, and returns
    /// the completed per-query report with the post-enforcement
    /// resident-bytes gauge.
    pub(crate) fn finish_query(&self, log: &mut PinLog, local: &mut CacheReport) -> CacheReport {
        let mut meta = self.meta.lock();
        for key in std::mem::take(&mut log.0) {
            let shard = self.shards[shard_index(&key)].read();
            if let Some(frame) = shard.get(&key) {
                // Decrements happen only here, under meta; the evictor
                // also holds meta, so it cannot observe a torn release.
                // relaxed: gate-only counter, serialized by meta.
                frame.pins.fetch_sub(1, Ordering::Relaxed);
                drop(shard);
                meta.replacer.touch(key);
            }
        }
        meta.counters.matrices_built += local.matrices_built;
        meta.counters.matrices_reused += local.matrices_reused;
        meta.counters.tables_built += local.tables_built;
        meta.counters.tables_reused += local.tables_reused;
        meta.counters.spill_loads += local.spill_loads;
        self.enforce_limit(&mut meta, local);
        let mut report = *local;
        report.resident_bytes = meta.resident_bytes as u64;
        *local = CacheReport::default();
        report
    }

    /// Evicts least-recently-used unpinned entries while over the limit.
    /// Runs under `meta` (acquiring one shard write lock per victim —
    /// the documented `meta → shard` order). Pinned victims are skipped;
    /// their pinning sessions re-stamp them into the replacer at finish.
    fn enforce_limit(&self, meta: &mut PoolMeta, local: &mut CacheReport) {
        let Some(limit) = meta.limit else { return };
        while meta.resident_bytes > limit {
            let Some(victim) = meta.replacer.victim() else {
                // Everything left is pinned (or already popped as
                // pinned); running sessions' working sets may
                // legitimately exceed the limit until they end.
                break;
            };
            self.evict(meta, victim, local);
        }
    }

    /// Removes one entry if it is resident and unpinned, spilling
    /// matrices when a spill tier is configured (a failed spill write
    /// degrades to a plain drop: memory stays bounded and the matrix
    /// rebuilds on its next use). Evictions and spills are charged to
    /// both the lifetime counters and `local`.
    fn evict(&self, meta: &mut PoolMeta, key: EntryKey, local: &mut CacheReport) {
        let removed = {
            let mut shard = self.shards[shard_index(&key)].write();
            match shard.get(&key) {
                // Pin increments require this shard's read lock (we hold
                // write); decrements require meta (we hold it) — so this
                // relaxed: load cannot race any pin transition.
                Some(frame) if frame.pins.load(Ordering::Relaxed) == 0 => shard.remove(&key),
                // Pinned, or cleared from under the replacer: skip.
                _ => None,
            }
        };
        let Some(frame) = removed else { return };
        meta.resident_bytes -= frame.bytes;
        meta.counters.evictions += 1;
        local.evictions += 1;
        meta.counters.resident_bytes = meta.resident_bytes as u64;
        if let (EntryKey::Matrix(scope), Payload::Matrix(m), Some(store)) =
            (key, &frame.payload, &meta.spill)
        {
            // Matrices are immutable per key, so a file written by an
            // earlier eviction is still exact — skip the rewrite.
            if !store.contains(scope) && store.store(scope, m).is_ok() {
                meta.counters.spills += 1;
                local.spills += 1;
            }
        }
    }

    /// Drops every resident entry and spill file (counters are kept —
    /// they are lifetime totals). Safe to call while sessions run:
    /// their `Arc` payload handles stay valid, and their pin-log replay
    /// tolerates the missing frames.
    pub(crate) fn clear(&self) {
        let mut meta = self.meta.lock();
        for shard in &self.shards {
            shard.write().clear();
        }
        meta.replacer.clear();
        meta.resident_bytes = 0;
        meta.counters.resident_bytes = 0;
        if let Some(store) = &meta.spill {
            store.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_of(n: usize, fill: f64) -> Payload {
        Payload::Matrix(Arc::new(DenseMatrix::from_raw(n, n, vec![fill; n * n])))
    }

    fn pool_with(entries: &[(usize, usize)]) -> BufferPool {
        // (scope index, matrix side) pairs, inserted and unpinned in order.
        let pool = BufferPool::new();
        let mut log = PinLog::default();
        for &(i, n) in entries {
            pool.insert(
                EntryKey::Matrix(ScopeKey::Within(i)),
                matrix_of(n, i as f64),
                &mut log,
            );
        }
        pool.finish_query(&mut log, &mut CacheReport::default());
        pool
    }

    #[test]
    fn lru_victim_goes_first_and_accounting_tracks_bytes() {
        let pool = pool_with(&[(0, 8), (1, 8), (2, 8)]);
        let per_entry = 8 * 8 * 8;
        assert_eq!(pool.bytes(), 3 * per_entry);

        // Re-use entry 0 so the LRU order becomes 1, 2, 0.
        let mut log = PinLog::default();
        assert!(pool
            .pin_if_resident(EntryKey::Matrix(ScopeKey::Within(0)), &mut log)
            .is_some());
        pool.finish_query(&mut log, &mut CacheReport::default());

        // Room for two entries: the least recently used (1) must go.
        pool.set_limit(Some(2 * per_entry));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(2))));
        assert_eq!(pool.counters().evictions, 1);
        assert_eq!(pool.bytes(), 2 * per_entry);
        assert_eq!(pool.counters().resident_bytes, (2 * per_entry) as u64);
    }

    #[test]
    fn pinned_entries_survive_any_pressure() {
        let pool = pool_with(&[(0, 8), (1, 8), (2, 8)]);
        let mut log = PinLog::default();
        assert!(pool
            .pin_if_resident(EntryKey::Matrix(ScopeKey::Within(1)), &mut log)
            .is_some());

        // A zero-byte limit evicts everything evictable — but never the
        // pinned entry, even though it is far over the limit.
        pool.set_limit(Some(0));
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(2))));
        assert_eq!(pool.counters().evictions, 2);

        // Once the query ends, the limit applies to it too.
        pool.finish_query(&mut log, &mut CacheReport::default());
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(1))));
        assert_eq!(pool.bytes(), 0);
        assert_eq!(pool.counters().evictions, 3);
    }

    #[test]
    fn interleaved_session_pins_release_independently() {
        // Session A and session B pin the same entry; finishing A must
        // not release B's pin — the regression the multi-session
        // redesign exists to prevent (the old wholesale `pins = 0`
        // release would have).
        let pool = pool_with(&[(7, 8)]);
        let key = EntryKey::Matrix(ScopeKey::Within(7));
        let (mut log_a, mut log_b) = (PinLog::default(), PinLog::default());
        assert!(pool.pin_if_resident(key, &mut log_a).is_some());
        assert!(pool.pin_if_resident(key, &mut log_b).is_some());

        pool.finish_query(&mut log_a, &mut CacheReport::default());
        // B still pins the entry: a zero limit cannot evict it.
        pool.set_limit(Some(0));
        assert!(pool.contains(key), "B's pin must survive A's finish");

        pool.finish_query(&mut log_b, &mut CacheReport::default());
        assert!(!pool.contains(key), "all pins released: limit applies");
        assert_eq!(pool.bytes(), 0);
    }

    #[test]
    fn duplicate_insert_pins_the_resident_entry() {
        let pool = BufferPool::new();
        let key = EntryKey::Matrix(ScopeKey::Within(3));
        let mut log_a = PinLog::default();
        let first = pool.insert(key, matrix_of(4, 1.0), &mut log_a);

        // A racing session inserts the same key: the resident payload
        // wins and both sessions share one allocation.
        let mut log_b = PinLog::default();
        let second = pool.insert(key, matrix_of(4, 1.0), &mut log_b);
        let (Payload::Matrix(a), Payload::Matrix(b)) = (&first, &second) else {
            panic!("matrix payloads");
        };
        assert!(Arc::ptr_eq(a, b), "duplicate insert must dedupe");
        assert_eq!(pool.bytes(), 4 * 4 * 8, "duplicate bytes not counted");

        pool.finish_query(&mut log_a, &mut CacheReport::default());
        pool.set_limit(Some(0));
        assert!(pool.contains(key), "B's pin from the dup insert holds");
        pool.finish_query(&mut log_b, &mut CacheReport::default());
        assert!(!pool.contains(key));
    }

    #[test]
    fn oversized_entries_are_admitted_for_the_running_query() {
        let pool = BufferPool::new();
        pool.set_limit(Some(10));
        let mut log = PinLog::default();
        pool.insert(
            EntryKey::Matrix(ScopeKey::Within(0)),
            matrix_of(16, 0.5),
            &mut log,
        );
        // Pinned: resident despite blowing the limit.
        assert!(pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
        pool.finish_query(&mut log, &mut CacheReport::default());
        // Unpinned at query end: evicted.
        assert!(!pool.contains(EntryKey::Matrix(ScopeKey::Within(0))));
    }

    #[test]
    fn single_flight_admits_exactly_one_builder() {
        let pool = BufferPool::new();
        let key = EntryKey::Matrix(ScopeKey::Within(9));
        let BuildSlot::Builder(permit) = pool.begin_build(key) else {
            panic!("first announcement owns the build");
        };
        // A second announcement from another thread blocks until the
        // permit drops, then reports Waited.
        let waited = std::thread::scope(|s| {
            let handle = s.spawn(|| matches!(pool.begin_build(key), BuildSlot::Waited));
            // Give the waiter time to block, then finish the build.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(permit);
            handle.join().expect("waiter thread")
        });
        assert!(waited);
        // The key is free again: a new announcement becomes the builder.
        assert!(matches!(pool.begin_build(key), BuildSlot::Builder(_)));
    }

    #[test]
    fn eviction_spills_matrices_and_unspill_restores_them() {
        let root =
            std::env::temp_dir().join(format!("fremo-pool-test-{}-spill", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let pool = BufferPool::new();
        pool.set_spill(Some(&root), 9001).unwrap();
        let scope = ScopeKey::Within(5);
        let original = DenseMatrix::from_raw(6, 6, vec![2.5; 36]);
        let mut log = PinLog::default();
        pool.insert(
            EntryKey::Matrix(scope),
            Payload::Matrix(Arc::new(original.clone())),
            &mut log,
        );
        pool.finish_query(&mut log, &mut CacheReport::default());

        pool.set_limit(Some(0));
        assert_eq!(pool.counters().evictions, 1);
        assert_eq!(pool.counters().spills, 1);
        assert!(!pool.contains(EntryKey::Matrix(scope)));

        pool.set_limit(None);
        let store = pool.spill_store().expect("spill configured");
        let back = store.load(scope).expect("spill file valid");
        for (a, b) in original.raw().iter().zip(back.raw()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Re-evicting an already-spilled matrix skips the rewrite.
        let mut log = PinLog::default();
        pool.insert(
            EntryKey::Matrix(scope),
            Payload::Matrix(Arc::new(back)),
            &mut log,
        );
        pool.finish_query(&mut log, &mut CacheReport::default());
        pool.set_limit(Some(0));
        assert_eq!(pool.counters().evictions, 2);
        assert_eq!(pool.counters().spills, 1);

        pool.clear();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn clear_drops_entries_and_spill_files() {
        let root =
            std::env::temp_dir().join(format!("fremo-pool-test-{}-clear", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let pool = BufferPool::new();
        pool.set_spill(Some(&root), 9002).unwrap();
        let scope = ScopeKey::Within(1);
        let mut log = PinLog::default();
        pool.insert(EntryKey::Matrix(scope), matrix_of(4, 1.0), &mut log);
        pool.finish_query(&mut log, &mut CacheReport::default());
        pool.set_limit(Some(0));
        assert_eq!(pool.counters().spills, 1);

        pool.set_limit(None);
        pool.clear();
        assert_eq!(pool.bytes(), 0);
        // The spill tier was cleared with the pool: nothing to rehydrate.
        assert!(pool
            .spill_store()
            .expect("still configured")
            .load(scope)
            .is_none());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for i in 0..64 {
            let k = EntryKey::Matrix(ScopeKey::Within(i));
            assert!(shard_index(&k) < SHARDS);
            assert_eq!(shard_index(&k), shard_index(&k));
            let t = EntryKey::Tables(ScopeKey::Between(i, i + 1), 5, true);
            assert!(shard_index(&t) < SHARDS);
        }
        // Matrix and table keys for the same scope need not collide.
        assert!(
            (0..64).any(|i| shard_index(&EntryKey::Matrix(ScopeKey::Within(i)))
                != shard_index(&EntryKey::Tables(ScopeKey::Within(i), 3, false)))
        );
    }
}
