//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The analyzer must never fire on text inside string literals or
//! comments (`"panic!"` as data is not a panic), and must be able to
//! *read* comments to check justification markers and suppressions. So
//! the lexer splits a source file into two streams: code tokens with
//! line numbers, and comments with line numbers. It is not a full
//! grammar — no keywords, no precedence — but it gets the hard
//! tokenization cases right: nested block comments, raw strings with
//! `#` fences, byte strings, char literals vs. lifetimes, and numeric
//! literals with type suffixes (`1.0f32` must surface its suffix for
//! the kernel-exactness lint).

/// What a code token is, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `for`, and `f32` all land here).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String/char/numeric literal. Numeric text is preserved so type
    /// suffixes are visible; string/char bodies are redacted.
    Literal,
    /// Lifetime such as `'a` (distinguished from `'a'` char literals).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
    pub text: String,
}

/// One comment with its 1-based starting line.
///
/// `doc` marks rustdoc comments (`///`, `//!`, `/**`, `/*!`). Doc
/// comments often quote code and lint syntax verbatim, so suppression
/// and justification markers are only honored in *plain* comments.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub doc: bool,
}

/// Lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let at = |i: usize| if i < n { b[i] } else { '\0' };
    let is_ident_start = |c: char| c.is_ascii_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            // Line comment; doc when `///` (but not `////`) or `//!`.
            let doc = (at(i + 2) == '/' && at(i + 3) != '/') || at(i + 2) == '!';
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
                doc,
            });
        } else if c == '/' && at(i + 1) == '*' {
            // Block comment, nested per Rust rules; attributed to its
            // starting line.
            let doc =
                (at(i + 2) == '*' && at(i + 3) != '*' && at(i + 3) != '/') || at(i + 2) == '!';
            let start_line = line;
            let start = i;
            let mut depth = 0usize;
            while i < n {
                if at(i) == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if at(i) == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i.min(n)].iter().collect(),
                doc,
            });
        } else if c == '"' {
            i = lex_string(&b, i, &mut line);
            out.toks.push(Tok {
                line,
                kind: TokKind::Literal,
                text: "\"…\"".into(),
            });
        } else if c == '\'' {
            // Lifetime or char literal. `'a'` is a char (closing quote
            // right after one symbol), `'a` / `'static` are lifetimes,
            // `'\n'` is an escaped char.
            if at(i + 1) == '\\' {
                i += 2; // opening quote + backslash
                if i < n {
                    i += 1; // escaped char (enough for \n \' \\ \u{..} heads)
                }
                while i < n && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal,
                    text: "'…'".into(),
                });
            } else if is_ident(at(i + 1)) && at(i + 2) != '\'' {
                let start = i;
                i += 1;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                });
            } else {
                // 'x' or unusual char like '('
                i += 2;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal,
                    text: "'…'".into(),
                });
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            // Raw/byte string prefixes: r"", r#""#, b"", br"", b'x'.
            let next = at(i);
            if (text == "r" || text == "br" || text == "b") && (next == '"' || next == '#') {
                if let Some(end) = lex_raw_string(&b, i, &mut line) {
                    i = end;
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Literal,
                        text: "r\"…\"".into(),
                    });
                    continue;
                }
            }
            if text == "b" && next == '\'' {
                // Byte char literal b'x' / b'\n'.
                i += 1; // opening quote
                if at(i) == '\\' {
                    i += 2;
                }
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal,
                    text: "b'…'".into(),
                });
                continue;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = b[i];
                let continues = is_ident(d)
                    || (d == '.' && at(i + 1).is_ascii_digit())
                    || ((d == '+' || d == '-')
                        && matches!(at(i - 1), 'e' | 'E')
                        && at(i + 1).is_ascii_digit());
                if !continues {
                    break;
                }
                i += 1;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Literal,
                text: b[start..i].iter().collect(),
            });
        } else {
            out.toks.push(Tok {
                line,
                kind: TokKind::Punct,
                text: c.to_string(),
            });
            i += 1;
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn lex_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a raw string body starting at the `#`/`"` right after the
/// `r`/`br` prefix. Returns `None` when this is not actually a raw
/// string (e.g. the ident `r` followed by an attribute's `#`).
fn lex_raw_string(b: &[char], mut i: usize, line: &mut u32) -> Option<usize> {
    let n = b.len();
    let mut fences = 0usize;
    while i < n && b[i] == '#' {
        fences += 1;
        i += 1;
    }
    if i >= n || b[i] != '"' {
        return None;
    }
    i += 1; // opening quote
    while i < n {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut k = 0usize;
            while k < fences && b.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == fences {
                return Some(i + 1 + fences);
            }
        }
        i += 1;
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code_words() {
        let src = "// panic! in a comment\n/* unwrap() in /* a nested */ block */\nlet s = \"panic!\";\nlet r = r\"unwrap()\";\n";
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn raw_string_with_fences() {
        let src = "let x = r##\"has \"quote\" and unwrap()\"##; call();";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "call"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; g(x, c, nl) }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn float_suffix_survives_in_literal_text() {
        let lexed = lex("let x = 1.0f32 + 2e-3f64;");
        let lits: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["1.0f32", "2e-3f64"]);
    }

    #[test]
    fn doc_comments_are_flagged_as_doc() {
        let lexed = lex("/// doc\n//! inner\n// plain\n/** block doc */\n/* plain block */\n");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 4);
    }
}
