//! Safety of the pruning machinery: no lower bound may ever exceed the true
//! DFD of a candidate it applies to (false negatives would make the
//! algorithms inexact). These tests exercise the bound tables directly
//! through the public `fremo_core` modules.

use fremo::motif::bounds::{BoundTables, RelaxedTables, TightTables};
use fremo::motif::domain::Domain;
use fremo::motif::group::{group_dfd_bounds, GroupMatrices};
use fremo::motif::{BoundSelection, MotifConfig};
use fremo::prelude::*;
use fremo::trajectory::DenseMatrix;
use proptest::prelude::*;

fn point() -> impl Strategy<Value = EuclideanPoint> {
    (-30.0..30.0_f64, -30.0..30.0_f64).prop_map(|(x, y)| EuclideanPoint::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subset_bounds_never_exceed_candidate_dfd(
        points in proptest::collection::vec(point(), 14..26),
        xi in 1usize..3,
    ) {
        let n = points.len();
        let domain = Domain::Within { n };
        let src = DenseMatrix::within(&points);
        let relaxed = BoundTables::build(&src, domain, xi, BoundSelection::all_relaxed());
        let tight = BoundTables::build(&src, domain, xi, BoundSelection::all_tight());

        for (i, j) in domain.subsets(xi) {
            let rb = relaxed.subset_bounds(&src, BoundSelection::all_relaxed(), i, j).combined();
            let tb = tight.subset_bounds(&src, BoundSelection::all_tight(), i, j).combined();
            for ie in (i + xi + 1)..j {
                for je in (j + xi + 1)..n {
                    let d = dfd(&points[i..=ie], &points[j..=je]);
                    prop_assert!(rb <= d + 1e-9,
                        "relaxed bound {rb} > dfd {d} for ({i},{ie},{j},{je})");
                    prop_assert!(tb <= d + 1e-9,
                        "tight bound {tb} > dfd {d} for ({i},{ie},{j},{je})");
                }
            }
        }
    }

    #[test]
    fn end_cross_bound_is_safe(
        points in proptest::collection::vec(point(), 14..22),
    ) {
        // For every DP cell (ie, je) of subset (i, j), the end-cross bound
        // must lower-bound candidates ending strictly beyond it.
        let xi = 1;
        let n = points.len();
        let domain = Domain::Within { n };
        let src = DenseMatrix::within(&points);
        for sel in [BoundSelection::all_relaxed(), BoundSelection::all_tight()] {
            let tables = BoundTables::build(&src, domain, xi, sel);
            for (i, j) in domain.subsets(xi) {
                for ie in (i + 1)..j {
                    for je in (j + 1)..n {
                        let bound = tables.end_cross(i, j, ie, je);
                        for ic in (ie + 1)..j {
                            for jc in (je + 1)..n {
                                if ic > i + xi && jc > j + xi {
                                    let d = dfd(&points[i..=ic], &points[j..=jc]);
                                    prop_assert!(bound <= d + 1e-9,
                                        "end-cross {bound} > dfd {d} for (i={i},j={j}) end ({ic},{jc}) via ({ie},{je}) tight={}",
                                        sel.tight);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn group_bounds_sandwich(
        points in proptest::collection::vec(point(), 16..26),
        tau in 2usize..5,
    ) {
        let xi = 1;
        let n = points.len();
        let domain = Domain::Within { n };
        let src = DenseMatrix::within(&points);
        let gm = GroupMatrices::build(&src, domain, tau);
        for u in 0..gm.grid.ga {
            for v in u..gm.grid.gb {
                let b = group_dfd_bounds(&gm, domain, xi, u, v, f64::INFINITY);
                let (alo, ahi) = gm.grid.range_a(u).unwrap();
                let (blo, bhi) = gm.grid.range_b(v).unwrap();
                let mut best = f64::INFINITY;
                for i in alo..=ahi {
                    for j in blo..=bhi {
                        for ie in (i + xi + 1)..j {
                            for je in (j + xi + 1)..n {
                                let d = dfd(&points[i..=ie], &points[j..=je]);
                                best = best.min(d);
                                prop_assert!(b.lower <= d + 1e-9,
                                    "GLB {} > dfd {d} in block ({u},{v})", b.lower);
                            }
                        }
                    }
                }
                if best.is_finite() {
                    prop_assert!(b.upper + 1e-9 >= best,
                        "GUB {} < best {best} in block ({u},{v})", b.upper);
                }
            }
        }
    }
}

#[test]
fn relaxed_bounds_never_exceed_tight_bounds() {
    // Lemma 2 on a real workload, at matched subsets.
    let t = fremo::trajectory::gen::Dataset::GeoLife.generate(160, 5);
    let n = t.len();
    let domain = Domain::Within { n };
    let src = DenseMatrix::within(t.points());
    let xi = 8;
    let relaxed = RelaxedTables::build(&src, domain, xi);
    let tight = TightTables::build(&src, domain, xi);
    for (i, j) in domain.subsets(xi) {
        assert!(
            relaxed.cross(i, j) <= tight.cross(i, j) + 1e-9,
            "cross at ({i},{j})"
        );
        let tb = tight.band(i, j);
        if tb.is_finite() {
            assert!(relaxed.band(i, j) <= tb + 1e-9, "band at ({i},{j})");
        }
    }
}

#[test]
fn disabling_bounds_never_changes_results_only_speed() {
    let t = fremo::trajectory::gen::Dataset::Baboon.generate(140, 6);
    let reference = Btm
        .discover(&t, &MotifConfig::new(8).with_bounds(BoundSelection::none()))
        .unwrap();
    for sel in [
        BoundSelection::all_relaxed(),
        BoundSelection::all_tight(),
        BoundSelection::cell_only(),
        BoundSelection::cell_cross(),
    ] {
        let m = Btm
            .discover(&t, &MotifConfig::new(8).with_bounds(sel))
            .unwrap();
        assert!(
            (m.distance - reference.distance).abs() < 1e-9,
            "{sel:?} changed the optimum"
        );
    }
}

#[test]
fn between_domain_bounds_are_safe() {
    // The cross/band ranges differ between the two domains (no overlap
    // constraint); fuzz the between-domain tables too.
    use fremo::trajectory::gen::planar;
    let a = planar::random_walk(18, 0.5, 41);
    let b = planar::random_walk(15, 0.5, 42);
    let xi = 2;
    let domain = Domain::Between {
        n: a.len(),
        m: b.len(),
    };
    let src = DenseMatrix::between(a.points(), b.points());
    for sel in [BoundSelection::all_relaxed(), BoundSelection::all_tight()] {
        let tables = BoundTables::build(&src, domain, xi, sel);
        for (i, j) in domain.subsets(xi) {
            let lb = tables.subset_bounds(&src, sel, i, j).combined();
            for ie in (i + xi + 1)..a.len() {
                for je in (j + xi + 1)..b.len() {
                    let d = dfd(&a.points()[i..=ie], &b.points()[j..=je]);
                    assert!(
                        lb <= d + 1e-9,
                        "tight={} bound {lb} > dfd {d} at ({i},{ie},{j},{je})",
                        sel.tight
                    );
                }
            }
        }
    }
}

#[test]
fn between_domain_group_bounds_are_safe() {
    use fremo::trajectory::gen::planar;
    let a = planar::random_walk(16, 0.5, 43);
    let b = planar::random_walk(14, 0.5, 44);
    let xi = 1;
    let domain = Domain::Between {
        n: a.len(),
        m: b.len(),
    };
    let src = DenseMatrix::between(a.points(), b.points());
    let gm = GroupMatrices::build(&src, domain, 4);
    for u in 0..gm.grid.ga {
        for v in 0..gm.grid.gb {
            let bounds = group_dfd_bounds(&gm, domain, xi, u, v, f64::INFINITY);
            let (alo, ahi) = gm.grid.range_a(u).unwrap();
            let (blo, bhi) = gm.grid.range_b(v).unwrap();
            let mut best = f64::INFINITY;
            for i in alo..=ahi {
                for j in blo..=bhi {
                    for ie in (i + xi + 1)..a.len() {
                        for je in (j + xi + 1)..b.len() {
                            let d = dfd(&a.points()[i..=ie], &b.points()[j..=je]);
                            best = best.min(d);
                            assert!(bounds.lower <= d + 1e-9, "block ({u},{v})");
                        }
                    }
                }
            }
            if best.is_finite() {
                assert!(
                    bounds.upper + 1e-9 >= best,
                    "block ({u},{v}): GUB too small"
                );
            }
        }
    }
}
