//! Derive macros for the vendored `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are pure markers, so the
//! derives emit a marker impl for the annotated type (handling the simple
//! generics the workspace uses). No serialization code is generated.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(type_name, generic_params)` from a struct/enum definition.
///
/// Returns the identifier following the `struct`/`enum` keyword and the
/// *names* of its generic type parameters (bounds stripped, lifetimes
/// skipped), e.g. `Trajectory` + `["P"]` for `struct Trajectory<P: Ord>`.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("serde shim derive: expected `struct` or `enum`");

    // Collect top-level generic type-parameter names from `<...>`, if any.
    let mut params = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        let mut skip_lifetime_name = false;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    expect_param = false; // bounds follow; skip to comma
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                    skip_lifetime_name = true;
                }
                TokenTree::Ident(_) if skip_lifetime_name => {
                    skip_lifetime_name = false;
                }
                TokenTree::Ident(id) if depth == 1 && expect_param && id.to_string() != "const" => {
                    params.push(id.to_string());
                    expect_param = false;
                }
                _ => {}
            }
        }
    }
    (name, params)
}

/// Derives the shim's marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let code = if params.is_empty() {
        format!("impl ::serde::Serialize for {name} {{}}")
    } else {
        let decl: Vec<String> = params
            .iter()
            .map(|p| format!("{p}: ::serde::Serialize"))
            .collect();
        let args = params.join(", ");
        format!(
            "impl<{}> ::serde::Serialize for {name}<{args}> {{}}",
            decl.join(", ")
        )
    };
    code.parse()
        .expect("serde shim derive: generated impl parses")
}

/// Derives the shim's marker `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let code = if params.is_empty() {
        format!("impl<'de_shim> ::serde::Deserialize<'de_shim> for {name} {{}}")
    } else {
        let decl: Vec<String> = params
            .iter()
            .map(|p| format!("{p}: ::serde::Deserialize<'de_shim>"))
            .collect();
        let args = params.join(", ");
        format!(
            "impl<'de_shim, {}> ::serde::Deserialize<'de_shim> for {name}<{args}> {{}}",
            decl.join(", ")
        )
    };
    code.parse()
        .expect("serde shim derive: generated impl parses")
}
