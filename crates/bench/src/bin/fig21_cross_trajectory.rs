//! Regenerates Figure 21 (two-trajectory variant).
use fremo_bench::experiments::{fig21_cross_trajectory, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig21_cross_trajectory::run(scale);
    print_all("Figure 21 (two-trajectory variant)", &tables);
}
