//! Regenerates Figure 3 (DTW vs DFD, non-uniform sampling).
use fremo_bench::experiments::{fig03_dtw_vs_dfd, print_all};
use fremo_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale} (set FREMO_SCALE=smoke|default|full)");
    let tables = fig03_dtw_vs_dfd::run(scale);
    print_all("Figure 3 (DTW vs DFD, non-uniform sampling)", &tables);
}
