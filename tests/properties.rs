//! Property-based tests (proptest) on the similarity measures and the
//! motif machinery's core invariants, including the parallel execution
//! layer's determinism and accounting.

use fremo::motif::ParallelBtm;
use fremo::prelude::*;
use fremo::similarity::{dfd_decision, dfd_linear, dfd_with_coupling, dtw, hausdorff};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = EuclideanPoint> {
    (-50.0..50.0_f64, -50.0..50.0_f64).prop_map(|(x, y)| EuclideanPoint::new(x, y))
}

fn seq(max: usize) -> impl Strategy<Value = Vec<EuclideanPoint>> {
    proptest::collection::vec(point(), 1..max)
}

/// Exponential reference DFD over all monotone couplings (tiny inputs).
fn dfd_reference(a: &[EuclideanPoint], b: &[EuclideanPoint]) -> f64 {
    fn rec(a: &[EuclideanPoint], b: &[EuclideanPoint], i: usize, j: usize) -> f64 {
        let d = a[i].distance(&b[j]);
        if i == 0 && j == 0 {
            return d;
        }
        let mut best = f64::INFINITY;
        if i > 0 {
            best = best.min(rec(a, b, i - 1, j));
        }
        if j > 0 {
            best = best.min(rec(a, b, i, j - 1));
        }
        if i > 0 && j > 0 {
            best = best.min(rec(a, b, i - 1, j - 1));
        }
        best.max(d)
    }
    rec(a, b, a.len() - 1, b.len() - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dfd_matches_exponential_reference(a in seq(7), b in seq(7)) {
        let fast = dfd(&a, &b);
        let slow = dfd_reference(&a, &b);
        prop_assert!((fast - slow).abs() < 1e-9, "fast={fast} slow={slow}");
    }

    #[test]
    fn dfd_is_symmetric(a in seq(20), b in seq(20)) {
        prop_assert!((dfd(&a, &b) - dfd(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dfd_triangle_inequality(a in seq(10), b in seq(10), c in seq(10)) {
        let ab = dfd(&a, &b);
        let bc = dfd(&b, &c);
        let ac = dfd(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn dfd_linear_equals_coupling_variant(a in seq(15), b in seq(15)) {
        let (v, path) = dfd_with_coupling(&a, &b);
        prop_assert!((dfd_linear(&a, &b) - v).abs() < 1e-12);
        // The coupling is monotone, complete, and achieves the value.
        prop_assert_eq!(path.first().copied(), Some((0usize, 0usize)));
        prop_assert_eq!(path.last().copied(), Some((a.len() - 1, b.len() - 1)));
        let worst = path
            .iter()
            .map(|&(i, j)| a[i].distance(&b[j]))
            .fold(0.0_f64, f64::max);
        prop_assert!((worst - v).abs() < 1e-9);
    }

    #[test]
    fn dfd_decision_is_consistent(a in seq(12), b in seq(12), slack in 0.0..2.0_f64) {
        let exact = dfd(&a, &b);
        prop_assert!(dfd_decision(&a, &b, exact + slack));
        if exact > 0.0 {
            prop_assert!(!dfd_decision(&a, &b, exact * 0.999 - 1e-12));
        }
    }

    #[test]
    fn dfd_lower_bounds(a in seq(12), b in seq(12)) {
        let v = dfd(&a, &b);
        // Endpoint matches are forced by any coupling.
        let endpoints = a[0].distance(&b[0]).max(a[a.len()-1].distance(&b[b.len()-1]));
        prop_assert!(v >= endpoints - 1e-9);
        // Hausdorff (orderless) never exceeds DFD (ordered).
        prop_assert!(hausdorff(&a, &b) <= v + 1e-9);
        // DTW's per-step cost is bounded by DFD, so DTW ≤ DFD × path length.
        let path_bound = v * (a.len() + b.len()) as f64;
        prop_assert!(dtw(&a, &b) <= path_bound + 1e-6);
    }

    #[test]
    fn dfd_invariant_under_duplication(a in seq(10), b in seq(10), idx in 0usize..10) {
        // Duplicating a point (zero-length dwell) never changes DFD: the
        // duplicate can couple to the same partners.
        let k = idx % a.len();
        let mut dup = a.clone();
        dup.insert(k, a[k]);
        prop_assert!((dfd(&dup, &b) - dfd(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn dfd_translation_invariance(a in seq(10), b in seq(10), dx in -10.0..10.0_f64, dy in -10.0..10.0_f64) {
        let shift = |s: &[EuclideanPoint]| -> Vec<EuclideanPoint> {
            s.iter().map(|p| EuclideanPoint::new(p.x + dx, p.y + dy)).collect()
        };
        prop_assert!((dfd(&shift(&a), &shift(&b)) - dfd(&a, &b)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btm_equals_brute_on_random_inputs(
        points in proptest::collection::vec(point(), 12..28),
        xi in 1usize..4,
    ) {
        let t: fremo::trajectory::Trajectory<EuclideanPoint> = points.into_iter().collect();
        let cfg = MotifConfig::new(xi).with_group_size(4);
        let brute = BruteDp.discover(&t, &cfg);
        let btm = Btm.discover(&t, &cfg);
        let gtm = Gtm.discover(&t, &cfg);
        let star = GtmStar.discover(&t, &cfg);
        match brute {
            None => {
                prop_assert!(btm.is_none() && gtm.is_none() && star.is_none());
            }
            Some(b) => {
                prop_assert!((btm.unwrap().distance - b.distance).abs() < 1e-9);
                prop_assert!((gtm.unwrap().distance - b.distance).abs() < 1e-9);
                prop_assert!((star.unwrap().distance - b.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_scan_is_deterministic_and_matches_serial(
        points in proptest::collection::vec(point(), 16..36),
        xi in 1usize..4,
        threads in 2usize..5,
    ) {
        // For random trajectories and ξ: at a fixed thread count the
        // parallel result is deterministic across repeated runs, and it
        // is bit-for-bit the serial result.
        let t: fremo::trajectory::Trajectory<EuclideanPoint> = points.into_iter().collect();
        let cfg = MotifConfig::new(xi);
        let serial = Btm.discover(&t, &cfg);
        let run1 = ParallelBtm::new(threads).discover(&t, &cfg);
        let run2 = ParallelBtm::new(threads).discover(&t, &cfg);
        match (serial, run1, run2) {
            (None, None, None) => {}
            (Some(s), Some(a), Some(b)) => {
                prop_assert_eq!(a.distance.to_bits(), s.distance.to_bits());
                prop_assert_eq!((a.first, a.second), (s.first, s.second));
                prop_assert_eq!(b.distance.to_bits(), s.distance.to_bits());
                prop_assert_eq!((b.first, b.second), (s.first, s.second));
            }
            (s, a, b) => prop_assert!(false, "mismatch: serial={s:?} run1={a:?} run2={b:?}"),
        }
    }

    #[test]
    fn parallel_accounting_sums_to_the_candidate_total(
        points in proptest::collection::vec(point(), 16..36),
        xi in 1usize..3,
        threads in 1usize..5,
        cap in 1u64..6,
    ) {
        let t: fremo::trajectory::Trajectory<EuclideanPoint> = points.into_iter().collect();
        let cfg = MotifConfig::new(xi);

        // Unbudgeted: every candidate pair is attributed (pruned by some
        // family or evaluated exactly) no matter the interleaving.
        let (_, stats) = ParallelBtm::new(threads).discover_with_stats(&t, &cfg);
        prop_assert_eq!(stats.pairs_accounted(), stats.pairs_total);
        prop_assert_eq!(
            stats.subsets_expanded + stats.subsets_skipped_sorted,
            stats.subsets_total
        );
        prop_assert_eq!(stats.threads_used, threads);

        // Budgeted via the engine: the cap is never over-run and the
        // skipped remainder settles into the budget counters.
        let engine = Engine::new();
        let id = engine.register(t);
        let q = Query::motif(id)
            .xi(xi)
            .algorithm(AlgorithmChoice::Btm)
            .threads(threads)
            .candidate_budget(cap)
            .build();
        let o = engine.execute(&q).unwrap();
        prop_assert!(o.stats.subsets_expanded <= cap);
        prop_assert_eq!(o.stats.pairs_accounted(), o.stats.pairs_total);
        prop_assert_eq!(
            o.stats.subsets_expanded
                + o.stats.subsets_skipped_sorted
                + o.stats.subsets_skipped_budget,
            o.stats.subsets_total
        );
        if o.truncated {
            prop_assert!(o.stats.subsets_skipped_budget > 0);
        }
    }

    #[test]
    fn subtrajectory_dfd_is_bounded_by_motif_reports(
        points in proptest::collection::vec(point(), 14..24),
    ) {
        // The motif value lower-bounds the DFD of EVERY valid candidate.
        let t: fremo::trajectory::Trajectory<EuclideanPoint> = points.into_iter().collect();
        let xi = 2;
        let cfg = MotifConfig::new(xi);
        if let Some(m) = Btm.discover(&t, &cfg) {
            let n = t.len();
            for i in 0..n {
                for ie in (i + xi + 1)..n {
                    for j in (ie + 1)..n {
                        for je in (j + xi + 1)..n {
                            let d = dfd(&t.points()[i..=ie], &t.points()[j..=je]);
                            prop_assert!(d >= m.distance - 1e-9,
                                "candidate ({i},{ie},{j},{je}) beats the motif: {d} < {}", m.distance);
                        }
                    }
                }
            }
        }
    }
}
