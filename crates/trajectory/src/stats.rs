//! Descriptive statistics over trajectories.
//!
//! Used by the CLI's `inspect` command and by the benchmark harness to
//! report workload characteristics alongside measured results (the paper
//! notes its datasets "have different characteristics, such as sampling
//! frequency and data distribution", Section 6.1 — we quantify ours).

use crate::point::GroundDistance;
use crate::trajectory::Trajectory;

/// Summary statistics of a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryStats {
    /// Number of points.
    pub len: usize,
    /// Total path length in ground-distance units (metres for geo data).
    pub path_length: f64,
    /// Mean consecutive-point step in ground-distance units.
    pub mean_step: f64,
    /// Maximum consecutive-point step.
    pub max_step: f64,
    /// Mean inter-sample time gap in seconds (`None` without timestamps).
    pub mean_dt: Option<f64>,
    /// Coefficient of variation of the time gaps — 0 means perfectly
    /// uniform sampling; GeoLife-like data is well above 0.3.
    pub dt_cv: Option<f64>,
    /// Duration covered in seconds (`None` without timestamps).
    pub duration: Option<f64>,
}

impl TrajectoryStats {
    /// Computes statistics for `t`.
    ///
    /// Degenerate inputs are handled gracefully: an empty or single-point
    /// trajectory reports zero path length and steps.
    #[must_use]
    pub fn compute<P: GroundDistance>(t: &Trajectory<P>) -> Self {
        let len = t.len();
        let mut path_length = 0.0;
        let mut max_step: f64 = 0.0;
        for w in t.points().windows(2) {
            let d = w[0].distance(&w[1]);
            path_length += d;
            max_step = max_step.max(d);
        }
        let steps = len.saturating_sub(1);
        let mean_step = if steps > 0 {
            path_length / steps as f64
        } else {
            0.0
        };

        let (mean_dt, dt_cv, duration) = match t.timestamps() {
            Some(ts) if ts.len() >= 2 => {
                let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
                let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
                let var =
                    gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
                let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
                (Some(mean), Some(cv), Some(ts[ts.len() - 1] - ts[0]))
            }
            _ => (None, None, None),
        };

        TrajectoryStats {
            len,
            path_length,
            mean_step,
            max_step,
            mean_dt,
            dt_cv,
            duration,
        }
    }
}

impl std::fmt::Display for TrajectoryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} path={:.1} mean_step={:.2} max_step={:.2}",
            self.len, self.path_length, self.mean_step, self.max_step
        )?;
        if let (Some(dt), Some(cv), Some(dur)) = (self.mean_dt, self.dt_cv, self.duration) {
            write!(f, " mean_dt={dt:.2}s dt_cv={cv:.2} duration={dur:.0}s")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::point::EuclideanPoint;

    #[test]
    fn stats_on_line() {
        let t = gen::planar::line((0.0, 0.0), (10.0, 0.0), 11);
        let s = TrajectoryStats::compute(&t);
        assert_eq!(s.len, 11);
        assert!((s.path_length - 10.0).abs() < 1e-9);
        assert!((s.mean_step - 1.0).abs() < 1e-9);
        assert!((s.max_step - 1.0).abs() < 1e-9);
        assert!(s.mean_dt.is_none());
    }

    #[test]
    fn stats_with_timestamps() {
        let t = Trajectory::with_timestamps(
            vec![
                EuclideanPoint::new(0.0, 0.0),
                EuclideanPoint::new(1.0, 0.0),
                EuclideanPoint::new(2.0, 0.0),
            ],
            vec![0.0, 1.0, 4.0],
        )
        .unwrap();
        let s = TrajectoryStats::compute(&t);
        assert_eq!(s.mean_dt, Some(2.0));
        assert_eq!(s.duration, Some(4.0));
        // gaps 1 and 3 ⇒ sd = 1, mean 2 ⇒ cv = 0.5
        assert!((s.dt_cv.unwrap() - 0.5).abs() < 1e-12);
        assert!(s.to_string().contains("dt_cv=0.50"));
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Trajectory<EuclideanPoint> = Trajectory::new(vec![]);
        let s = TrajectoryStats::compute(&empty);
        assert_eq!(s.len, 0);
        assert_eq!(s.path_length, 0.0);
        assert_eq!(s.mean_step, 0.0);

        let single = Trajectory::new(vec![EuclideanPoint::new(1.0, 1.0)]);
        let s = TrajectoryStats::compute(&single);
        assert_eq!(s.len, 1);
        assert_eq!(s.max_step, 0.0);
    }

    #[test]
    fn geolife_like_reports_nonuniform_sampling() {
        let t = gen::geolife_like(1500, 77);
        let s = TrajectoryStats::compute(&t);
        assert!(s.dt_cv.unwrap() > 0.3, "cv = {:?}", s.dt_cv);
    }
}
